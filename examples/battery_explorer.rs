//! Battery-model explorer: the physical effects the paper builds on.
//!
//! Walks through the §2–§3 phenomenology with the `battery` crate:
//!
//! 1. the **rate-capacity effect** — delivered charge shrinks at high
//!    loads (KiBaM) while an ideal battery always delivers `C`;
//! 2. a **Peukert fit** to the KiBaM's constant-load lifetimes;
//! 3. the **recovery effect** — a Fig. 2-style trajectory of the two
//!    wells under a slow square wave;
//! 4. KiBaM vs **modified KiBaM** (Rao et al.) under the same load.
//!
//! Run with: `cargo run --release --example battery_explorer`

use battery::ideal::IdealBattery;
use battery::kibam::Kibam;
use battery::lifetime::{discharge_trajectory, lifetime};
use battery::load::SquareWaveLoad;
use battery::modified::ModifiedKibam;
use battery::peukert::PeukertModel;
use units::{Charge, Current, Frequency, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = Charge::from_amp_seconds(7200.0);
    let kibam = Kibam::new(capacity, 0.625, Rate::per_second(4.5e-5))?;
    let ideal = IdealBattery::new(capacity)?;

    println!("-- rate-capacity effect (constant load) --");
    println!("I (A)   ideal (s)   KiBaM (s)   delivered (As)");
    let mut samples = Vec::new();
    for i in [0.05, 0.2, 0.48, 0.96, 2.0] {
        let current = Current::from_amps(i);
        let l_ideal = ideal.constant_load_lifetime(current)?;
        let l_kibam = kibam.constant_load_lifetime(current)?;
        let delivered = kibam.delivered_charge(current)?;
        println!(
            "{i:<7} {:9.0}   {:9.0}   {:12.0}",
            l_ideal.as_seconds(),
            l_kibam.as_seconds(),
            delivered.as_coulombs()
        );
        samples.push((current, l_kibam));
    }

    let peukert = PeukertModel::fit(&samples)?;
    println!(
        "\nPeukert fit over those points: L = {:.0}/I^{:.3}",
        peukert.a(),
        peukert.b()
    );

    println!("\n-- recovery effect (Fig. 2 workload: f = 0.001 Hz, 0.96 A) --");
    let wave = SquareWaveLoad::symmetric(Frequency::from_hertz(0.001), Current::from_amps(0.96))?;
    let traj = discharge_trajectory(
        &kibam,
        &wave,
        Time::from_seconds(13_000.0),
        Time::from_seconds(500.0),
    )?;
    println!("t (s)    y1 (As)   y2 (As)");
    for sample in traj.iter().step_by(2) {
        println!(
            "{:6.0}  {:8.0}  {:8.0}",
            sample.time.as_seconds(),
            sample.state.available.as_coulombs(),
            sample.state.bound.as_coulombs()
        );
    }
    let end = traj.last().expect("trajectory nonempty");
    println!(
        "battery empty at {:.0} s with {:.0} As stranded in the bound well",
        end.time.as_seconds(),
        end.state.bound.as_coulombs()
    );

    println!("\n-- modified KiBaM comparison (same parameters) --");
    let modified = ModifiedKibam::new(capacity, 0.625, Rate::per_second(4.5e-5))?;
    let horizon = Time::from_hours(20.0);
    let l_k = lifetime(&kibam, &wave, horizon)?.expect("depletes");
    let l_m = lifetime(&modified, &wave, horizon)?.expect("depletes");
    println!(
        "square-wave lifetime: KiBaM {:.0} s, modified {:.0} s \
         (recovery slows as the bound well drains)",
        l_k.as_seconds(),
        l_m.as_seconds()
    );
    Ok(())
}
