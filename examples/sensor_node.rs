//! Duty-cycled sensor node: how sensing frequency and timing regularity
//! shape the lifetime distribution.
//!
//! A sensor wakes, samples/transmits at 0.96 A, then idles — an on/off
//! workload (paper Fig. 3). Two knobs matter:
//!
//! * the duty-cycle *frequency* `f` (how often it wakes), and
//! * the *regularity* of the schedule, modelled by the Erlang stage count
//!   `K` (K = 1 is memoryless jitter; K → ∞ a crystal-driven timer).
//!
//! For the analytic KiBaM the mean lifetime barely moves with `f` at
//! these timescales, but the *distribution* tightens dramatically with
//! `K` — exactly the effect the paper discusses around Fig. 7. Each
//! configuration is one scenario solved by the simulation backend.
//!
//! Run with: `cargo run --release --example sensor_node`

use kibamrm::scenario::Scenario;
use kibamrm::solver::SimulationSolver;
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let current = Current::from_amps(0.96);
    let solver = SimulationSolver::new();

    let scenario = |workload: Workload, seed: u64| {
        Scenario::builder()
            .workload(workload)
            .capacity(Charge::from_amp_seconds(7200.0))
            .kibam(0.625, Rate::per_second(4.5e-5))
            .time_grid(Time::from_seconds(30_000.0), 100)
            .simulation(400, seed)
            .build()
    };

    println!("-- regularity sweep (f = 1 Hz, two-well battery) --");
    println!("K    mean (s)   10%..90% spread (s)");
    for k_stages in [1u32, 2, 4, 8] {
        let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), k_stages, current)?;
        let study = solver.study(&scenario(w, 42)?)?;
        let lo = study.lifetime_quantile(0.1).unwrap_or(f64::NAN);
        let hi = study.lifetime_quantile(0.9).unwrap_or(f64::NAN);
        println!(
            "{k_stages:<4} {:9.0}   {:6.0}",
            study.mean_observed_lifetime().unwrap_or(f64::NAN),
            hi - lo
        );
    }

    println!("\n-- frequency sweep (K = 1) --");
    println!("f (Hz)   mean (s)   note");
    for f in [0.01, 0.1, 1.0, 10.0] {
        let w = Workload::on_off_erlang(Frequency::from_hertz(f), 1, current)?;
        let study = solver.study(&scenario(w, 43)?)?;
        let note = if f < 0.05 {
            "slow cycles: deeper discharge, more recovery swing"
        } else {
            "fast cycles: battery sees the average current"
        };
        println!(
            "{f:<8} {:9.0}   {note}",
            study.mean_observed_lifetime().unwrap_or(f64::NAN)
        );
    }

    println!(
        "\nAll configurations drain ~0.48 A on average; an ideal battery \
         would last {:.0} s regardless.",
        7200.0 / 0.48
    );
    Ok(())
}
