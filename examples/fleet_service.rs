//! A device fleet querying one resident `LifetimeService`.
//!
//! Models the service's target workload: many devices sharing a handful
//! of physical configurations. Each device queries under its own name,
//! with a mix of
//!
//! * **repeat** queries — the exact configuration another device already
//!   asked about (the canonical key erases names, so these are cache
//!   hits);
//! * **rescaled** queries — the same structure run at a power-of-two
//!   rate scale (a different answer, but the warm group state shares the
//!   uniformisation work with its siblings);
//! * **fresh** queries — a configuration nobody asked about yet.
//!
//! Four worker threads drive the fleet concurrently; identical in-flight
//! queries collapse onto one solve (single-flight), and everything the
//! service does is bit-identical to solving each scenario independently.
//!
//! A second act demonstrates the per-request quality-of-service knobs
//! (`QueryOptions`): deadlines that expire before an exact solve
//! finishes, degraded answers with explicit error bounds, and the
//! `ServiceError::retryable` classification a fleet controller would
//! branch on.
//!
//! A third act puts the same fleet on a socket: the hardened HTTP front
//! (`kibamrm-net`) serves the same resident service on an ephemeral
//! port, with per-device token-bucket quotas. One device goes rogue and
//! hammers the endpoint; it is shed *by name* with `429 Too Many
//! Requests` + `Retry-After` while every polite device keeps getting
//! instant `200`s — fair shedding before the global admission bound
//! ever trips. The run ends by printing both ledgers, the service's
//! and the network front's.
//!
//! Run with: `cargo run --release --example fleet_service`

use kibamrm::scenario::Scenario;
use kibamrm::service::{Answer, DegradedSource, LifetimeService, QueryOptions, ServiceConfig};
use kibamrm::solver::SolverRegistry;
use kibamrm::workload::Workload;
use std::sync::Arc;
use std::time::Duration;
use units::{Charge, Current, Frequency, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The fleet's base configuration: the paper's Fig. 8 on/off workload
    // on a 7200 As two-well battery (coarse Δ keeps the example quick).
    let base = Scenario::builder()
        .name("fleet-base")
        .workload(Workload::on_off_erlang(
            Frequency::from_hertz(1.0),
            1,
            Current::from_amps(0.96),
        )?)
        .capacity(Charge::from_amp_seconds(7200.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .time_grid(Time::from_seconds(8000.0), 16)
        .delta(Charge::from_amp_seconds(300.0))
        .build()?;

    // The distinct physical configurations behind the whole fleet: the
    // base at four power-of-two duty scales, plus a finer-Δ variant.
    let mut configurations: Vec<Scenario> = [1.0, 0.5, 0.25, 0.125]
        .iter()
        .map(|&gamma| base.with_rate_scale(gamma))
        .collect::<Result<_, _>>()?;
    configurations.push(base.with_delta(Charge::from_amp_seconds(150.0)));

    // max_in_flight bounds *fresh solves*, not requests: joiners and
    // cache hits are always admitted. The default (2× the cores) can
    // shed on small machines when many distinct configurations arrive
    // at once; this fleet has 5, so admit that many concurrent solves.
    let service = Arc::new(LifetimeService::with_config(
        SolverRegistry::with_default_backends(),
        ServiceConfig::default().with_max_in_flight(configurations.len()),
    ));

    // 40 devices, 4 worker threads. Device d asks about configuration
    // d % 5 — so each configuration is solved once and hit repeatedly,
    // under 40 different device names.
    let devices = 40;
    let workers = 4;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (service, configurations) = (Arc::clone(&service), configurations.clone());
            scope.spawn(move || {
                for device in (w..devices).step_by(workers) {
                    let scenario = configurations[device % configurations.len()]
                        .with_name(format!("device-{device:02}"));
                    match service.query(&scenario) {
                        Ok(dist) => {
                            // Slow-duty rescales may outlive the query
                            // horizon: no median inside the grid then.
                            let median = dist.median().map_or_else(
                                || "beyond the horizon".to_string(),
                                |t| format!("{:.0} s", t.as_seconds()),
                            );
                            println!("device-{device:02}: median lifetime {median}");
                        }
                        Err(e) => println!("device-{device:02}: {e}"),
                    }
                }
            });
        }
    });

    // ---- Act two: deadlines, degradation and retry classification ----
    //
    // A fleet controller rarely wants to wait for a cold exact solve on
    // an interactive path. `query_with` takes per-request QoS knobs: a
    // deadline, permission to degrade, and a retry policy for transient
    // faults.
    println!("\ndeadline queries:");

    // A resident configuration answers exactly within any deadline — a
    // cache hit needs no solve.
    let resident = configurations[0].with_name("controller-repeat");
    let opts = QueryOptions::new()
        .with_deadline(Duration::from_millis(1))
        .allow_degraded();
    let median_of = |dist: &kibamrm::LifetimeDistribution| {
        dist.median().map_or_else(
            || "beyond the horizon".to_string(),
            |t| format!("{:.0} s", t.as_seconds()),
        )
    };
    match service.query_with(&resident, &opts)? {
        Answer::Exact(dist) => println!(
            "  resident config: exact answer within 1 ms (median {})",
            median_of(&dist)
        ),
        Answer::Degraded { .. } => println!("  resident config: unexpectedly degraded"),
    }

    // A *fresh* Δ-variant cannot be solved exactly in 1 ms — the solve
    // is cancelled cooperatively and the service falls back to the
    // degradation ladder: a resident same-family curve (free, bound =
    // one discretisation level) or a fast Monte Carlo estimate (bound =
    // its Wilson half-width). The bound is always explicit.
    let fresh = base.with_delta(Charge::from_amp_seconds(75.0));
    match service.query_with(&fresh, &opts)? {
        Answer::Exact(_) => println!("  fresh Δ-variant: solved exactly (fast machine!)"),
        Answer::Degraded {
            dist,
            bound,
            source,
        } => {
            let source = match source {
                DegradedSource::CachedFamily { delta: Some(d) } => {
                    format!("family curve at Δ = {:.0} As", d.as_amp_seconds())
                }
                DegradedSource::CachedFamily { delta: None } => "exact family curve".into(),
                DegradedSource::FastSimulation { runs } => {
                    format!("fast Monte Carlo ({runs} runs)")
                }
            };
            println!(
                "  fresh Δ-variant: degraded answer from {source}, \
                 sup-error ≤ {bound:.4} (median {})",
                median_of(&dist)
            );
        }
    }

    // Without `allow_degraded` the expiry surfaces as a typed error; the
    // `retryable` classification tells the controller what to do next —
    // here: nothing, the request's own budget was spent.
    let strict = QueryOptions::new().with_deadline(Duration::ZERO);
    if let Err(e) = service.query_with(&base.with_delta(Charge::from_amp_seconds(60.0)), &strict) {
        println!("  strict deadline: {e} (retryable: {})", e.retryable());
    }

    let stats = service.stats();
    println!("\nservice ledger after the fleet run:");
    println!(
        "  requests answered  {}",
        stats.hits + stats.joined + stats.misses
    );
    println!("  cache hits         {}", stats.hits);
    println!("  single-flight joins {}", stats.joined);
    println!("  fresh solves       {}", stats.misses);
    println!("  shed               {}", stats.shed);
    println!(
        "  warm group states  {} ({} hits / {} misses)",
        stats.warm_entries, stats.warm_hits, stats.warm_misses
    );
    println!(
        "  resident results   {} entries, {} bytes",
        stats.cached_entries, stats.result_cache_bytes
    );
    println!("  hit rate           {:.3}", stats.hit_rate());
    println!(
        "  dependability      {} deadline-expired, {} degraded-served, \
         {} retries, {} breaker-sheds",
        stats.deadline_expired, stats.degraded_served, stats.retries, stats.breaker_open
    );

    // ---- Act three: the fleet over HTTP, with a noisy neighbour ----
    //
    // The same service goes on a socket behind the hardened front.
    // Quotas are keyed by the `x-device-id` header (the whole fleet sits
    // behind one NAT address, so per-IP keying would lump every device
    // into one bucket): 1 request/second sustained, bursts of 3.
    println!("\nfleet over HTTP:");
    let server = kibamrm_net::Server::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        kibamrm_net::NetConfig {
            quota_rate: 1.0,
            quota_burst: 3.0,
            quota_key_header: Some("x-device-id".to_string()),
            ..kibamrm_net::NetConfig::default()
        },
    )?;
    let addr = server.local_addr()?;
    let control = server.control();
    let run = std::thread::spawn(move || server.run());
    println!("  listening on {addr}");

    // Every device asks once over the wire — all resident, all instant
    // 200s, each under its own quota bucket.
    let timeout = Duration::from_secs(10);
    let mut fleet_ok = 0;
    for device in 0..devices {
        let body = configurations[device % configurations.len()]
            .with_name(format!("device-{device:02}"))
            .to_config_string()?;
        let response = kibamrm_net::client::request(
            addr,
            "POST",
            "/query",
            &[("x-device-id", &format!("device-{device:02}"))],
            body.as_bytes(),
            timeout,
        )?;
        if response.status == 200 {
            fleet_ok += 1;
        }
    }
    println!("  polite fleet: {fleet_ok}/{devices} devices answered 200");

    // A rogue device joins and hammers: 12 requests back to back. Its
    // burst of 3 is admitted, the rest are shed by name with a typed
    // 429 + Retry-After — and the polite devices are untouched.
    let rogue_body = configurations[13 % configurations.len()]
        .with_name("device-99")
        .to_config_string()?;
    let (mut rogue_ok, mut rogue_shed) = (0, 0);
    let mut retry_after = String::new();
    for _ in 0..12 {
        let response = kibamrm_net::client::request(
            addr,
            "POST",
            "/query",
            &[("x-device-id", "device-99")],
            rogue_body.as_bytes(),
            timeout,
        )?;
        match response.status {
            200 => rogue_ok += 1,
            429 => {
                rogue_shed += 1;
                if let Some(after) = response.header("retry-after") {
                    retry_after = after.to_string();
                }
            }
            other => println!("  rogue device: unexpected status {other}"),
        }
    }
    println!(
        "  noisy neighbour: {rogue_ok} admitted (its burst), {rogue_shed} shed \
         with 429 + Retry-After: {retry_after}s"
    );
    let polite_again = kibamrm_net::client::request(
        addr,
        "POST",
        "/query",
        &[("x-device-id", "device-07")],
        configurations[7 % configurations.len()]
            .with_name("device-07")
            .to_config_string()?
            .as_bytes(),
        timeout,
    )?;
    println!(
        "  polite device-07 during the storm: {} (fair shedding is per device, \
         not per address)",
        polite_again.status
    );

    let net = control.net_stats();
    println!("\nnetwork ledger after the storm:");
    println!(
        "  connections        {} accepted, {} shed at the cap",
        net.accepted, net.connections_shed
    );
    println!(
        "  requests           {} answered, {} ok",
        net.requests, net.ok
    );
    println!("  quota refusals     {}", net.quota_refused);
    println!("  parse rejections   {}", net.rejected_bad_request);
    println!("  timeouts           {}", net.timeouts);

    // A graceful exit: stop accepting, finish in-flight work, report.
    control.shutdown();
    let report = run.join().expect("server thread");
    println!(
        "  drain              {} connections left at the deadline",
        report.remaining_connections
    );
    Ok(())
}
