//! Cell-phone workload shaping: does buffering transmissions extend
//! battery life?
//!
//! The paper's motivating scenario (§4.3, Fig. 11): a wireless device can
//! either send data as it arrives (*simple* model) or buffer it and send
//! in bursts, sleeping in between (*burst* model). Both spend the same
//! steady-state fraction of time sending (¼) — a Peukert-style model
//! would predict identical lifetimes — yet the burst model's battery
//! lasts longer.
//!
//! The two scenarios differ only in their workload, so they form a
//! two-element grid solved in one `sweep` call.
//!
//! Run with: `cargo run --release --example cell_phone`

use kibamrm::scenario::Scenario;
use kibamrm::solver::SolverRegistry;
use kibamrm::workload::Workload;
use markov::steady_state::stationary_gth;
use units::{Charge, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Δ = 10 mAh keeps this example quick; the paper's Fig. 11 uses 5 mAh.
    let base = Scenario::builder()
        .name("simple")
        .workload(Workload::simple_model()?)
        .capacity(Charge::from_milliamp_hours(800.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .time_grid(Time::from_hours(30.0), 120)
        .delta(Charge::from_milliamp_hours(10.0))
        .build()?;
    let grid = [
        base.clone(),
        base.with_name("burst")
            .with_workload(Workload::burst_model()?)?,
    ];

    // Only the Markovian approximation applies at c = 0.625, so auto()
    // resolves to it for both scenarios.
    let registry = SolverRegistry::with_default_backends();
    let results = registry.sweep(&grid);

    println!("model        P[send]  P[sleep]  mean life   P[empty @ 20 h]");
    let mut dists = Vec::new();
    for (scenario, result) in grid.iter().zip(results) {
        let workload = scenario.workload();
        let pi = stationary_gth(workload.ctmc())?;
        let p_send: f64 = workload.send_states().iter().map(|&i| pi[i]).sum();
        let p_sleep = workload
            .ctmc()
            .find_state("sleep")
            .map(|i| pi[i])
            .unwrap_or(0.0);

        let dist = result?;
        println!(
            "{:<12} {p_send:7.3}  {p_sleep:8.3}  {:7.2} h   {:14.3}",
            scenario.name(),
            dist.mean().as_hours(),
            dist.cdf(Time::from_hours(20.0))
        );
        dists.push(dist);
    }

    // The burst curve must sit to the right of the simple curve: at any
    // fixed time it is less likely to be empty.
    let (simple, burst) = (&dists[0], &dists[1]);
    let dominated = simple
        .points()
        .iter()
        .zip(burst.points())
        .filter(|((_, ps), (_, pb))| pb <= ps)
        .count();
    println!(
        "\nburst model no worse than simple at {dominated}/{} grid points \
         (sup gap {:.3})",
        simple.points().len(),
        simple.max_difference(burst)?
    );
    println!("(paper: ~95% vs ~89% empty at t = 20 h — buffering wins)");
    Ok(())
}
