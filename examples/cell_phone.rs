//! Cell-phone workload shaping: does buffering transmissions extend
//! battery life?
//!
//! The paper's motivating scenario (§4.3, Fig. 11): a wireless device can
//! either send data as it arrives (*simple* model) or buffer it and send
//! in bursts, sleeping in between (*burst* model). Both spend the same
//! steady-state fraction of time sending (¼) — a Peukert-style model
//! would predict identical lifetimes — yet the burst model's battery
//! lasts longer.
//!
//! Run with: `cargo run --release --example cell_phone`

use kibamrm::analysis::{mean_lifetime_from_curve, time_grid};
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::workload::Workload;
use markov::steady_state::stationary_gth;
use units::{Charge, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = Charge::from_milliamp_hours(800.0);
    let c = 0.625;
    let k = Rate::per_second(4.5e-5);
    // Δ = 10 mAh keeps this example quick; the paper's Fig. 11 uses 5 mAh.
    let delta = Charge::from_milliamp_hours(10.0);

    let times = time_grid(Time::from_hours(30.0), 120);

    println!("model        P[send]  P[sleep]  mean life   P[empty @ 20 h]");
    let mut results = Vec::new();
    for (name, workload) in [
        ("simple", Workload::simple_model()?),
        ("burst", Workload::burst_model()?),
    ] {
        let pi = stationary_gth(workload.ctmc())?;
        let p_send: f64 = workload.send_states().iter().map(|&i| pi[i]).sum();
        let p_sleep = workload
            .ctmc()
            .find_state("sleep")
            .map(|i| pi[i])
            .unwrap_or(0.0);

        let model = KibamRm::new(workload, capacity, c, k)?;
        let disc = DiscretisedModel::build(&model, &DiscretisationOptions::with_delta(delta))?;
        let curve = disc.empty_probability_curve(&times)?;
        let mean = mean_lifetime_from_curve(&curve.points);
        let at_20h = curve
            .points
            .iter()
            .find(|(t, _)| (*t - 20.0 * 3600.0).abs() < 1.0)
            .map(|(_, p)| *p)
            .unwrap_or(f64::NAN);
        println!(
            "{name:<12} {p_send:7.3}  {p_sleep:8.3}  {:7.2} h   {at_20h:14.3}",
            mean.as_hours()
        );
        results.push((name, curve.points));
    }

    // The burst curve must sit to the right of the simple curve: at any
    // fixed time it is less likely to be empty.
    let (simple, burst) = (&results[0].1, &results[1].1);
    let dominated = simple
        .iter()
        .zip(burst)
        .filter(|((_, ps), (_, pb))| pb <= ps)
        .count();
    println!(
        "\nburst model no worse than simple at {dominated}/{} grid points",
        simple.len()
    );
    println!("(paper: ~95% vs ~89% empty at t = 20 h — buffering wins)");
    Ok(())
}
