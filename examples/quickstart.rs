//! Quickstart: compute a battery lifetime distribution in ~20 lines.
//!
//! Builds the paper's simple cell-phone workload (idle/send/sleep) on an
//! 800 mAh KiBaM battery, computes `Pr[battery empty at t]` with the
//! Markovian approximation, and cross-checks a few points against
//! stochastic simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::simulate::lifetime_study;
use kibamrm::workload::Workload;
use units::{Charge, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The workload: a CTMC over operating modes with per-mode current.
    let workload = Workload::simple_model()?;
    println!("workload: {} states", workload.n_states());

    // 2. The battery: 800 mAh, 62.5 % directly available, KiBaM recovery.
    let model = KibamRm::new(
        workload,
        Charge::from_milliamp_hours(800.0),
        0.625,
        Rate::per_second(4.5e-5),
    )?;

    // 3. The paper's algorithm: discretise the charge wells (Δ = 10 mAh
    //    here; smaller Δ = finer approximation) and solve the derived
    //    CTMC transiently.
    let opts = DiscretisationOptions::with_delta(Charge::from_milliamp_hours(10.0));
    let disc = DiscretisedModel::build(&model, &opts)?;
    let stats = disc.stats();
    println!(
        "derived CTMC: {} states, {} generator non-zeros",
        stats.states, stats.generator_nonzeros
    );

    let times: Vec<Time> = (0..=30).map(|h| Time::from_hours(h as f64)).collect();
    let curve = disc.empty_probability_curve(&times)?;
    println!("uniformisation iterations: {}", curve.iterations);

    // 4. Cross-check against stochastic simulation (300 runs).
    let study = lifetime_study(&model, Time::from_hours(30.0), 300, 7)?;

    println!("\n  t (h)   Pr[empty] (approx)   Pr[empty] (simulated)");
    for (t, p) in &curve.points {
        let hours = t / 3600.0;
        if hours as usize % 5 == 0 {
            let sim = study.empty_probability(*t);
            println!("  {hours:5.0}   {p:18.4}   {sim:21.4}");
        }
    }

    println!(
        "\nmean lifetime (simulated): {:.1} h",
        study.mean_observed_lifetime() / 3600.0
    );
    Ok(())
}
