//! Quickstart: compute a battery lifetime distribution in ~20 lines.
//!
//! The pipeline is Scenario → Solver → Distribution:
//!
//! 1. describe the scenario once — workload, battery, query grid;
//! 2. let the `SolverRegistry` pick the best method (Sericola's exact
//!    algorithm when `c = 1`, the paper's Markovian approximation
//!    otherwise — simulation on request);
//! 3. work with the returned `LifetimeDistribution` directly: CDF
//!    values, quantiles, mean lifetime.
//!
//! Run with: `cargo run --release --example quickstart`

use kibamrm::scenario::Scenario;
use kibamrm::solver::{LifetimeSolver, SimulationSolver, SolverRegistry};
use kibamrm::workload::Workload;
use units::{Charge, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The scenario: the paper's idle/send/sleep cell-phone workload
    //    on an 800 mAh KiBaM battery, queried hourly for 30 h.
    //    Δ = 10 mAh trades a little accuracy for speed; shrink it for
    //    finer approximations.
    let scenario = Scenario::builder()
        .name("quickstart")
        .workload(Workload::simple_model()?)
        .capacity(Charge::from_milliamp_hours(800.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .time_grid(Time::from_hours(30.0), 30)
        .delta(Charge::from_milliamp_hours(10.0))
        .simulation(300, 7)
        .build()?;

    // 2. Solve it. auto() picks the discretisation backend (c < 1 rules
    //    out the exact method).
    let registry = SolverRegistry::with_default_backends();
    let chosen = registry.auto(&scenario)?;
    println!("auto-selected backend: {}", chosen.name());
    let dist = registry.solve(&scenario)?;
    let d = dist.diagnostics();
    println!(
        "derived CTMC: {} states, {} generator non-zeros, {} iterations",
        d.states.unwrap_or(0),
        d.generator_nonzeros.unwrap_or(0),
        d.iterations.unwrap_or(0),
    );

    // 3. Cross-check a few points against stochastic simulation — the
    //    same scenario, a different solver.
    let sim = SimulationSolver::new().solve(&scenario)?;

    println!("\n  t (h)   Pr[empty] (approx)   Pr[empty] (simulated)");
    for hours in (0..=30).step_by(5) {
        let t = Time::from_hours(hours as f64);
        println!("  {hours:5}   {:18.4}   {:21.4}", dist.cdf(t), sim.cdf(t));
    }

    println!(
        "\nmax |approx − simulated| = {:.4}",
        dist.max_difference(&sim)?
    );
    println!(
        "median lifetime: {:.1} h (approx) vs {:.1} h (simulated)",
        dist.median().map(|t| t.as_hours()).unwrap_or(f64::NAN),
        sim.median().map(|t| t.as_hours()).unwrap_or(f64::NAN),
    );
    println!("mean lifetime (approx): {:.1} h", dist.mean().as_hours());
    Ok(())
}
