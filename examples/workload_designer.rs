//! Designing and validating a custom workload end to end.
//!
//! Shows the full API surface a downstream user touches when modelling
//! their own device:
//!
//! 1. build a custom workload with [`kibamrm::builder::WorkloadBuilder`];
//! 2. sanity-check it with steady-state analysis and CSRL-style
//!    time-bounded reachability;
//! 3. compress time exactly to make the numerics cheap;
//! 4. cross-validate approximation vs simulation (vs exact where
//!    applicable) with [`kibamrm::analysis::compare_methods`];
//! 5. inspect expected well contents over time.
//!
//! Run with: `cargo run --release --example workload_designer`

use kibamrm::analysis::{compare_methods, time_grid};
use kibamrm::builder::WorkloadBuilder;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use markov::reachability::time_bounded_reachability;
use markov::steady_state::stationary_gth;
use markov::transient::TransientOptions;
use units::{Charge, Current, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A GPS tracker: deep sleep, periodic fixes, occasional uplink.
    let workload = WorkloadBuilder::new()
        .state("sleep", Current::from_milliamps(0.1))
        .state("fix", Current::from_milliamps(45.0))
        .state("uplink", Current::from_milliamps(220.0))
        .transition("sleep", "fix", Rate::per_hour(6.0)) // fix every 10 min
        .transition("fix", "sleep", Rate::per_hour(120.0)) // 30 s per fix
        .transition("fix", "uplink", Rate::per_hour(24.0)) // every 5th fix uplinks
        .transition("uplink", "sleep", Rate::per_hour(360.0)) // 10 s bursts
        .initial("sleep")
        .build()?;

    let pi = stationary_gth(workload.ctmc())?;
    println!("steady state: sleep {:.4}, fix {:.4}, uplink {:.4}", pi[0], pi[1], pi[2]);
    let mean_ma = pi[0] * 0.1 + pi[1] * 45.0 + pi[2] * 220.0;
    println!("mean draw: {mean_ma:.2} mA");

    // 2. How quickly does the tracker first reach the uplink state?
    let reach = time_bounded_reachability(
        workload.ctmc(),
        &[false, false, true],
        workload.initial(),
        &[3600.0, 4.0 * 3600.0, 12.0 * 3600.0],
        &TransientOptions::default(),
    )?;
    for (t, p) in &reach {
        println!("Pr[first uplink within {:>4.0} h] = {p:.3}", t / 3600.0);
    }

    // 3. A 1200 mAh battery would last weeks — compress time 24× so an
    //    hour of compressed analysis equals a day of real operation.
    let real = KibamRm::new(
        workload,
        Charge::from_milliamp_hours(1200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )?;
    let compressed = real.time_compressed(24.0)?;
    println!(
        "\ncompressed battery: {:.1} mAh (exact rescaling, lifetimes ×1/24)",
        compressed.capacity().as_milliamp_hours()
    );

    // 4. Cross-validate the approximation on the compressed model.
    let disc = DiscretisedModel::build(
        &compressed,
        &DiscretisationOptions::with_delta(Charge::from_milliamp_hours(1.25)),
    )?;
    let times = time_grid(Time::from_hours(30.0), 60);
    let cmp = compare_methods(&compressed, &disc, &times, 400, 99)?;
    println!(
        "approximation vs simulation ({} runs): sup distance {:.3}",
        cmp.runs, cmp.approx_vs_sim
    );

    // 5. Expected well contents at a few checkpoints.
    println!("\nt (compressed h)   E[available] mAh   E[bound] mAh");
    let checkpoints = [4.0, 12.0, 20.0, 28.0];
    let curves = disc.expected_charge_curves(
        &checkpoints.map(Time::from_hours),
    )?;
    for (t, y1, y2) in &curves {
        println!(
            "{:>16.0}   {:>16.1}   {:>12.1}",
            t.as_hours(),
            y1.as_milliamp_hours(),
            y2.as_milliamp_hours()
        );
    }
    println!(
        "\n(equivalent real-time horizon: {:.0} days)",
        30.0 * 24.0 / 24.0
    );
    Ok(())
}
