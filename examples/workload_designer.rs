//! Designing and validating a custom workload end to end.
//!
//! Shows the full API surface a downstream user touches when modelling
//! their own device:
//!
//! 1. build a custom workload with [`kibamrm::builder::WorkloadBuilder`];
//! 2. sanity-check it with steady-state analysis and CSRL-style
//!    time-bounded reachability;
//! 3. compress time exactly to make the numerics cheap;
//! 4. describe the question once as a [`kibamrm::scenario::Scenario`],
//!    serialise it to its config text, and cross-validate every
//!    applicable solver with `SolverRegistry::cross_validate`;
//! 5. inspect expected well contents over time.
//!
//! Run with: `cargo run --release --example workload_designer`

use kibamrm::builder::WorkloadBuilder;
use kibamrm::scenario::Scenario;
use kibamrm::solver::{DiscretisationSolver, SolverRegistry};
use markov::reachability::time_bounded_reachability;
use markov::steady_state::stationary_gth;
use markov::transient::TransientOptions;
use units::{Charge, Current, Rate, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A GPS tracker: deep sleep, periodic fixes, occasional uplink.
    let workload = WorkloadBuilder::new()
        .state("sleep", Current::from_milliamps(0.1))
        .state("fix", Current::from_milliamps(45.0))
        .state("uplink", Current::from_milliamps(220.0))
        .transition("sleep", "fix", Rate::per_hour(6.0)) // fix every 10 min
        .transition("fix", "sleep", Rate::per_hour(120.0)) // 30 s per fix
        .transition("fix", "uplink", Rate::per_hour(24.0)) // every 5th fix uplinks
        .transition("uplink", "sleep", Rate::per_hour(360.0)) // 10 s bursts
        .initial("sleep")
        .build()?;

    let pi = stationary_gth(workload.ctmc())?;
    println!(
        "steady state: sleep {:.4}, fix {:.4}, uplink {:.4}",
        pi[0], pi[1], pi[2]
    );
    let mean_ma = pi[0] * 0.1 + pi[1] * 45.0 + pi[2] * 220.0;
    println!("mean draw: {mean_ma:.2} mA");

    // 2. How quickly does the tracker first reach the uplink state?
    let reach = time_bounded_reachability(
        workload.ctmc(),
        &[false, false, true],
        workload.initial(),
        &[3600.0, 4.0 * 3600.0, 12.0 * 3600.0],
        &TransientOptions::default(),
    )?;
    for (t, p) in &reach {
        println!("Pr[first uplink within {:>4.0} h] = {p:.3}", t / 3600.0);
    }

    // 3. A 1200 mAh battery would last weeks — compress time 24× so an
    //    hour of compressed analysis equals a day of real operation.
    //    (Scenario validation happens in build(); the compression uses
    //    the model layer's exact rescaling.)
    let real = kibamrm::model::KibamRm::new(
        workload,
        Charge::from_milliamp_hours(1200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )?;
    let compressed = real.time_compressed(24.0)?;
    println!(
        "\ncompressed battery: {:.1} mAh (exact rescaling, lifetimes ×1/24)",
        compressed.capacity().as_milliamp_hours()
    );

    // 4. One scenario, every applicable method. The config text is what
    //    you would store in a fleet-management database.
    let scenario = Scenario::builder()
        .name("gps-tracker-24x")
        .workload(compressed.workload().clone())
        .capacity(compressed.capacity())
        .kibam(compressed.c(), compressed.k())
        .time_grid(Time::from_hours(30.0), 60)
        .delta(Charge::from_milliamp_hours(1.25))
        .simulation(400, 99)
        .build()?;
    println!("\nscenario config:\n{}", scenario.to_config_string()?);

    let cv = SolverRegistry::with_default_backends().cross_validate(&scenario)?;
    for (a, b, d) in &cv.pairwise {
        println!("sup |{a} − {b}| = {d:.3}");
    }
    println!(
        "max disagreement across methods: {:.3}",
        cv.max_disagreement()
    );

    // 5. Expected well contents at a few checkpoints (the derived chain
    //    behind the discretisation backend answers more than the CDF).
    println!("\nt (compressed h)   E[available] mAh   E[bound] mAh");
    let disc = DiscretisationSolver::new().discretise(&scenario)?;
    let checkpoints = [4.0, 12.0, 20.0, 28.0];
    let curves = disc.expected_charge_curves(&checkpoints.map(Time::from_hours))?;
    for (t, y1, y2) in &curves {
        println!(
            "{:>16.0}   {:>16.1}   {:>12.1}",
            t.as_hours(),
            y1.as_milliamp_hours(),
            y2.as_milliamp_hours()
        );
    }
    println!(
        "\n(equivalent real-time horizon: {:.0} days)",
        30.0 * 24.0 / 24.0
    );
    Ok(())
}
