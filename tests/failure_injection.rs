//! Failure injection across crate boundaries: malformed models must
//! surface as typed errors from the public API — never panics.

use kibamrm::analysis::exact_linear_curve;
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::simulate::lifetime_study;
use kibamrm::workload::Workload;
use kibamrm::KibamRmError;
use markov::ctmc::CtmcBuilder;
use units::{Charge, Current, Frequency, Rate, Time};

fn valid_model() -> KibamRm {
    KibamRm::new(
        Workload::simple_model().unwrap(),
        Charge::from_milliamp_hours(800.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap()
}

#[test]
fn bad_battery_parameters() {
    let w = Workload::simple_model().unwrap();
    for (cap, c, k) in [
        (0.0, 0.625, 4.5e-5),
        (-1.0, 0.625, 4.5e-5),
        (800.0, 0.0, 4.5e-5),
        (800.0, 1.5, 4.5e-5),
        (800.0, 0.625, -1.0),
        (f64::NAN, 0.625, 4.5e-5),
    ] {
        let r = KibamRm::new(
            w.clone(),
            Charge::from_milliamp_hours(cap),
            c,
            Rate::per_second(k),
        );
        assert!(
            matches!(r, Err(KibamRmError::InvalidBattery(_))),
            "({cap}, {c}, {k}) accepted"
        );
    }
}

#[test]
fn bad_workload_definitions() {
    // Mismatched currents.
    let mut b = CtmcBuilder::new(2);
    b.rate(0, 1, 1.0).unwrap();
    b.rate(1, 0, 1.0).unwrap();
    let chain = b.build().unwrap();
    assert!(matches!(
        Workload::new(chain.clone(), vec![Current::ZERO], vec![1.0, 0.0]),
        Err(KibamRmError::InvalidWorkload(_))
    ));
    // Negative current.
    assert!(Workload::new(
        chain.clone(),
        vec![Current::from_amps(-0.1), Current::ZERO],
        vec![1.0, 0.0],
    )
    .is_err());
    // Non-distribution initial vector.
    assert!(Workload::new(chain, vec![Current::ZERO; 2], vec![0.9, 0.9]).is_err());
    // Degenerate Erlang / frequency parameters.
    assert!(Workload::on_off_erlang(Frequency::from_hertz(-1.0), 1, Current::ZERO).is_err());
    assert!(Workload::on_off_erlang(Frequency::from_hertz(1.0), 0, Current::ZERO).is_err());
}

#[test]
fn bad_discretisation_steps() {
    let model = valid_model();
    // Δ not dividing the wells (u1 = 500 mAh, u2 = 300 mAh).
    for delta_mah in [7.0, 0.0, -5.0, f64::INFINITY] {
        let r = DiscretisedModel::build(
            &model,
            &DiscretisationOptions::with_delta(Charge::from_milliamp_hours(delta_mah)),
        );
        assert!(
            matches!(r, Err(KibamRmError::InvalidDiscretisation(_))),
            "Δ = {delta_mah} accepted"
        );
    }
    // A Δ dividing u1 but not u2 is also rejected: 250 mAh divides 500
    // but not 300.
    assert!(DiscretisedModel::build(
        &model,
        &DiscretisationOptions::with_delta(Charge::from_milliamp_hours(250.0)),
    )
    .is_err());
}

#[test]
fn bad_query_times() {
    let model = valid_model();
    let disc = DiscretisedModel::build(
        &model,
        &DiscretisationOptions::with_delta(Charge::from_milliamp_hours(100.0)),
    )
    .unwrap();
    assert!(disc.empty_probability_curve(&[]).is_err());
    assert!(disc.empty_probability_at(Time::from_seconds(-1.0)).is_err());
    assert!(disc
        .empty_probability_curve(&[Time::from_seconds(f64::NAN)])
        .is_err());
}

#[test]
fn exact_method_guards() {
    // Two-well model: the exact method must refuse.
    let model = valid_model();
    assert!(matches!(
        exact_linear_curve(&model, &[Time::from_hours(1.0)]),
        Err(KibamRmError::InvalidBattery(_))
    ));
}

#[test]
fn simulation_with_unreachable_depletion() {
    // A tiny horizon yields all-censored studies: a typed error, not a
    // panic or a bogus curve.
    let model = valid_model();
    let r = lifetime_study(&model, Time::from_seconds(1.0), 5, 1);
    assert!(r.is_err());
}

#[test]
fn errors_format_and_chain() {
    let err = DiscretisedModel::build(
        &valid_model(),
        &DiscretisationOptions::with_delta(Charge::from_milliamp_hours(7.0)),
    )
    .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("discretisation"), "{text}");
    // And the error suggests what to do.
    assert!(text.contains("Δ") || text.contains("quanta"), "{text}");
}
