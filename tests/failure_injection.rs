//! Failure injection across crate boundaries: malformed models must
//! surface as typed errors from the public API — never panics. The
//! solver facade must refuse bad scenarios the same way the layers
//! underneath refuse bad models.

use kibamrm::scenario::Scenario;
use kibamrm::solver::{
    DiscretisationSolver, LifetimeSolver, SericolaSolver, SimulationSolver, SolverRegistry,
};
use kibamrm::workload::Workload;
use kibamrm::KibamRmError;
use markov::ctmc::CtmcBuilder;
use units::{Charge, Current, Frequency, Rate, Time};

fn valid_scenario() -> Scenario {
    Scenario::builder()
        .name("valid")
        .workload(Workload::simple_model().unwrap())
        .capacity(Charge::from_milliamp_hours(800.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .times((1..=10).map(|h| Time::from_hours(3.0 * h as f64)).collect())
        .build()
        .unwrap()
}

#[test]
fn bad_battery_parameters() {
    let w = Workload::simple_model().unwrap();
    for (cap, c, k) in [
        (0.0, 0.625, 4.5e-5),
        (-1.0, 0.625, 4.5e-5),
        (800.0, 0.0, 4.5e-5),
        (800.0, 1.5, 4.5e-5),
        (800.0, 0.625, -1.0),
        (f64::NAN, 0.625, 4.5e-5),
    ] {
        let r = Scenario::builder()
            .workload(w.clone())
            .capacity(Charge::from_milliamp_hours(cap))
            .kibam(c, Rate::per_second(k))
            .times(vec![Time::from_hours(1.0)])
            .build();
        assert!(
            matches!(r, Err(KibamRmError::InvalidBattery(_))),
            "({cap}, {c}, {k}) accepted"
        );
    }
}

#[test]
fn bad_workload_definitions() {
    // Mismatched currents.
    let mut b = CtmcBuilder::new(2);
    b.rate(0, 1, 1.0).unwrap();
    b.rate(1, 0, 1.0).unwrap();
    let chain = b.build().unwrap();
    assert!(matches!(
        Workload::new(chain.clone(), vec![Current::ZERO], vec![1.0, 0.0]),
        Err(KibamRmError::InvalidWorkload(_))
    ));
    // Negative current.
    assert!(Workload::new(
        chain.clone(),
        vec![Current::from_amps(-0.1), Current::ZERO],
        vec![1.0, 0.0],
    )
    .is_err());
    // Non-distribution initial vector.
    assert!(Workload::new(chain, vec![Current::ZERO; 2], vec![0.9, 0.9]).is_err());
    // Degenerate Erlang / frequency parameters.
    assert!(Workload::on_off_erlang(Frequency::from_hertz(-1.0), 1, Current::ZERO).is_err());
    assert!(Workload::on_off_erlang(Frequency::from_hertz(1.0), 0, Current::ZERO).is_err());
}

#[test]
fn bad_discretisation_steps() {
    let scenario = valid_scenario();
    let solver = DiscretisationSolver::new();
    // Δ not dividing the wells (u1 = 500 mAh, u2 = 300 mAh). Zero /
    // negative / non-finite Δ never make it past the builder; a
    // non-dividing Δ only fails at solve time.
    let r = solver.solve(&scenario.with_delta(Charge::from_milliamp_hours(7.0)));
    assert!(
        matches!(r, Err(KibamRmError::InvalidDiscretisation(_))),
        "Δ = 7 accepted"
    );
    for delta_mah in [0.0, -5.0, f64::INFINITY] {
        let r = Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .kibam(0.625, Rate::per_second(4.5e-5))
            .times(vec![Time::from_hours(1.0)])
            .delta(Charge::from_milliamp_hours(delta_mah))
            .build();
        assert!(
            matches!(r, Err(KibamRmError::InvalidDiscretisation(_))),
            "Δ = {delta_mah} accepted"
        );
    }
    // A Δ dividing u1 but not u2 is also rejected: 250 mAh divides 500
    // but not 300.
    assert!(solver
        .solve(&scenario.with_delta(Charge::from_milliamp_hours(250.0)))
        .is_err());
}

#[test]
fn bad_query_times() {
    // Bad grids are stopped at scenario construction, shielding every
    // solver at once.
    let build = |times: Vec<Time>| {
        Scenario::builder()
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(800.0))
            .kibam(0.625, Rate::per_second(4.5e-5))
            .times(times)
            .build()
    };
    assert!(build(vec![]).is_err());
    assert!(build(vec![Time::from_seconds(-1.0)]).is_err());
    assert!(build(vec![Time::from_seconds(f64::NAN)]).is_err());
    assert!(build(vec![Time::from_seconds(5.0), Time::from_seconds(5.0)]).is_err());
    assert!(build(vec![Time::from_seconds(9.0), Time::from_seconds(3.0)]).is_err());
}

#[test]
fn exact_method_guards() {
    // Two-well scenario: the exact backend must refuse both in
    // capability introspection and at solve time.
    let scenario = valid_scenario();
    let solver = SericolaSolver::new();
    assert!(!solver.supports(&scenario));
    assert!(matches!(
        solver.solve(&scenario),
        Err(KibamRmError::InvalidBattery(_))
    ));
}

#[test]
fn simulation_with_unreachable_depletion() {
    // A query grid ending long before any depletion yields an
    // all-censored study: the valid all-zero curve (with an honest
    // replication count), not an error — one long-lived scenario must
    // not abort a sweep (regression for the old StatsError::Empty
    // abort).
    let scenario = valid_scenario()
        .with_times(vec![Time::from_seconds(1.0)])
        .unwrap()
        .with_simulation(5, 1);
    let dist = SimulationSolver::new().solve(&scenario).unwrap();
    assert!(dist.points().iter().all(|&(_, p)| p == 0.0));
    assert_eq!(dist.diagnostics().runs, Some(5));
    // And an explicit horizon *shorter* than the grid is clamped up, not
    // silently applied (a short horizon would flatline the CDF tail).
    let full = valid_scenario().with_simulation(5, 1);
    let r = SimulationSolver::new()
        .with_horizon(Time::from_seconds(1.0))
        .solve(&full);
    assert!(
        r.is_ok(),
        "short horizon must be clamped to the grid, not applied"
    );
}

#[test]
fn registry_surfaces_selection_failures() {
    // An empty registry gives a diagnosable error, not a panic.
    let registry = SolverRegistry::empty();
    let err = registry.solve(&valid_scenario());
    assert!(err.is_err());
    let text = err.err().map(|e| e.to_string()).unwrap_or_default();
    assert!(text.contains("no registered solver"), "{text}");
    // A sweep over a failing grid reports per-scenario errors in place.
    let registry = SolverRegistry::with_default_backends();
    let bad = valid_scenario().with_delta(Charge::from_milliamp_hours(7.0));
    let results = registry.sweep(&[bad]);
    assert_eq!(results.len(), 1);
    assert!(results[0].is_err());
}

#[test]
fn errors_format_and_chain() {
    let err = DiscretisationSolver::new()
        .solve(&valid_scenario().with_delta(Charge::from_milliamp_hours(7.0)))
        .expect_err("non-dividing Δ must fail");
    let text = err.to_string();
    assert!(text.contains("discretisation"), "{text}");
    // And the error suggests what to do.
    assert!(text.contains("Δ") || text.contains("quanta"), "{text}");
}
