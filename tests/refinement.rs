//! Δ-refinement behaviour of the Markovian approximation (the paper's
//! central methodological claim: "for decreasing stepsize ∆ the curves
//! from the approximation algorithm approach the simulation curve"),
//! plus property-based checks of the discretised chain's invariants.
//! Curves are computed through the solver facade; the structural checks
//! reach the derived chain via `DiscretisationSolver::discretise`.

use kibamrm::scenario::Scenario;
use kibamrm::solver::{DiscretisationSolver, LifetimeSolver, SericolaSolver};
use kibamrm::workload::Workload;
use proptest::prelude::*;
use units::{Charge, Current, Frequency, Rate, Time};

fn simple_linear(capacity_mah: f64) -> Scenario {
    Scenario::builder()
        .name("simple-linear")
        .workload(Workload::simple_model().unwrap())
        .capacity(Charge::from_milliamp_hours(capacity_mah))
        .linear()
        .times((4..=26).map(|h| Time::from_hours(h as f64)).collect())
        .build()
        .unwrap()
}

/// Refinement against the exact curve: the sup-distance must shrink
/// (not necessarily monotonically per point, but over a 4× refinement it
/// must improve clearly).
#[test]
fn refinement_converges_to_exact() {
    let scenario = simple_linear(500.0);
    let exact = SericolaSolver::new().solve(&scenario).unwrap();
    let sup_for = |delta_mah: f64| {
        let dist = DiscretisationSolver::new()
            .solve(&scenario.with_delta(Charge::from_milliamp_hours(delta_mah)))
            .unwrap();
        exact.max_difference(&dist).unwrap()
    };
    let coarse = sup_for(50.0);
    let medium = sup_for(20.0);
    let fine = sup_for(5.0);
    assert!(medium < coarse, "coarse {coarse} vs medium {medium}");
    assert!(fine < medium, "medium {medium} vs fine {fine}");
    assert!(fine < 0.05, "fine-Δ error still {fine}");
}

/// The approximation error scales roughly like O(√Δ)–O(Δ) for smooth
/// CDFs; a 10× refinement should cut the sup error by at least 2×.
#[test]
fn refinement_rate_reasonable() {
    let scenario = simple_linear(500.0);
    let exact = SericolaSolver::new().solve(&scenario).unwrap();
    let sup_for = |delta_mah: f64| {
        let dist = DiscretisationSolver::new()
            .solve(&scenario.with_delta(Charge::from_milliamp_hours(delta_mah)))
            .unwrap();
        exact.max_difference(&dist).unwrap()
    };
    let e25 = sup_for(25.0);
    let e2_5 = sup_for(2.5);
    assert!(e2_5 < e25 / 2.0, "Δ=25: {e25}, Δ=2.5: {e2_5}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any valid (c, k, Δ) combination on a small capacity, the
    /// derived chain satisfies its structural invariants.
    #[test]
    fn discretised_chain_invariants(
        c_times_8 in 1u32..=8,          // c ∈ {0.125, …, 1.0}
        k_exp in -6.0f64..-3.0,
        quanta in 2u32..12,
    ) {
        let c = c_times_8 as f64 / 8.0;
        let capacity = 80.0; // As
        // Δ chosen so it divides both wells exactly: both cC and (1−c)C
        // are multiples of capacity/8.
        let delta = capacity / (8.0 * quanta as f64);
        let w = Workload::on_off_erlang(
            Frequency::from_hertz(0.5), 1, Current::from_amps(0.5)).unwrap();
        let scenario = Scenario::builder()
            .name("invariants")
            .workload(w)
            .capacity(Charge::from_amp_seconds(capacity))
            .kibam(c, Rate::per_second(10f64.powf(k_exp)))
            .times((0..=6).map(|i| Time::from_seconds(i as f64 * 100.0)).collect())
            .delta(Charge::from_amp_seconds(delta))
            .build()
            .unwrap();
        let solver = DiscretisationSolver::new();
        let disc = solver.discretise(&scenario).unwrap();

        // Invariant 1: state count = N · (J1+1) · (J2+1).
        let expect_j1 = (c * capacity / delta).round() as usize + 1;
        let expect_j2 = if c >= 1.0 { 1 } else { ((1.0 - c) * capacity / delta).round() as usize + 1 };
        prop_assert_eq!(disc.j1_levels(), expect_j1);
        prop_assert_eq!(disc.j2_levels(), expect_j2);
        prop_assert_eq!(disc.stats().states, 2 * expect_j1 * expect_j2);

        // Invariant 2: all j1 = 0 states absorbing.
        for j2 in 0..disc.j2_levels() {
            for i in 0..2 {
                let s = disc.state_index(i, 0, j2).unwrap();
                prop_assert!(disc.chain().is_absorbing(s));
            }
        }

        // Invariant 3: the solved curve is a CDF in t, and the solver's
        // diagnostics describe the same chain.
        let dist = solver.solve(&scenario).unwrap();
        let mut prev = -1e-12;
        for &(_, p) in dist.points() {
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev - 1e-9);
            prev = p;
        }
        prop_assert_eq!(dist.diagnostics().states, Some(disc.stats().states));

        // Invariant 4: initial mass sits on the full-battery states.
        let total: f64 = disc.alpha().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    /// Coarse vs fine Δ on random capacities: the median crossing time of
    /// the fine curve is never wildly different (sanity against indexing
    /// bugs that would shift the distribution).
    #[test]
    fn median_stability_under_refinement(capacity in 40.0f64..120.0) {
        let w = Workload::on_off_erlang(
            Frequency::from_hertz(0.5), 1, Current::from_amps(0.5)).unwrap();
        let scenario = Scenario::builder()
            .name("median-stability")
            .workload(w)
            .capacity(Charge::from_amp_seconds(capacity))
            .linear()
            .times((1..=400).map(|i| Time::from_seconds(i as f64 * 2.0)).collect())
            .build()
            .unwrap();
        let median_for = |parts: f64| {
            let dist = DiscretisationSolver::new()
                .solve(&scenario.with_delta(Charge::from_amp_seconds(capacity / parts)))
                .unwrap();
            dist.median().map(|t| t.as_seconds()).unwrap_or(800.0)
        };
        // Deterministic estimate: capacity / (0.5 A) · 2 (50% duty).
        let expect = capacity / 0.5 * 2.0;
        let coarse = median_for(8.0);
        let fine = median_for(64.0);
        prop_assert!((coarse - expect).abs() < 0.35 * expect,
            "coarse median {coarse} vs {expect}");
        prop_assert!((fine - expect).abs() < 0.2 * expect,
            "fine median {fine} vs {expect}");
    }
}
