//! Anchor values stated verbatim in the paper, asserted end-to-end.
//!
//! Every number here appears in the text of Cloth, Jongerden & Haverkort
//! (DSN'07); the experiment index in DESIGN.md maps each to its section.
//! Derived-chain sizes and iteration counts come out of the solver
//! facade's diagnostics.

use kibamrm::scenario::Scenario;
use kibamrm::solver::{DiscretisationSolver, LifetimeSolver};
use kibamrm::workload::Workload;
use markov::steady_state::stationary_gth;
use markov::transient::TransientOptions;
use units::{Charge, Current, Frequency, Rate, Time};

fn on_off(c: f64, k: f64, delta_as: f64, t: Time) -> Scenario {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    Scenario::builder()
        .name("paper-anchor")
        .workload(w)
        .capacity(Charge::from_amp_seconds(7200.0))
        .kibam(c, Rate::per_second(k))
        .times(vec![t])
        .delta(Charge::from_amp_seconds(delta_as))
        .build()
        .unwrap()
}

/// The paper's iteration accounting: ν = max exit rate, no steady-state
/// early exit.
fn accounting_solver() -> DiscretisationSolver {
    let transient = TransientOptions {
        uniformisation_factor: 1.0,
        steady_state_tolerance: 0.0,
        ..TransientOptions::default()
    };
    DiscretisationSolver::new().with_transient(transient)
}

/// §6.1: "the CTMC for ∆ = 5 has 2882 states".
#[test]
fn states_2882_at_delta_5() {
    let scenario = on_off(1.0, 0.0, 5.0, Time::from_seconds(17_000.0));
    let disc = DiscretisationSolver::new().discretise(&scenario).unwrap();
    assert_eq!(disc.stats().states, 2882);
}

/// §6.1: "To compute the transient state probabilities for t = 17000
/// seconds more than 36000 iterations are needed" (c = 1, Δ = 5).
#[test]
fn iterations_exceed_36000_at_t_17000() {
    let scenario = on_off(1.0, 0.0, 5.0, Time::from_seconds(17_000.0));
    let dist = accounting_solver().solve(&scenario).unwrap();
    let iterations = dist
        .diagnostics()
        .iterations
        .expect("discretisation reports iterations");
    assert!(
        iterations > 36_000,
        "iterations = {iterations} (paper: > 36000)"
    );
    // And not absurdly more: the right truncation point of Poisson(νt)
    // with ν ≈ 2.192 is νt + O(√νt) ≈ 38000.
    assert!(iterations < 40_000, "iterations = {iterations}");
}

/// §6.1: the two-well Δ = 5 chain has "about 3.2·10⁶ non-zeroes in the
/// generator matrix Q*" and needs "more than 2.3·10⁴ iterations" for
/// t = 10⁴ s. (Marked #[ignore]: ≈ 1 GB of triplet traffic and minutes of
/// CPU; run with `cargo test -- --ignored` or the bench harness.)
#[test]
#[ignore = "heavyweight: ~10^6 states; run explicitly or via bench-harness complexity"]
fn two_well_delta_5_nonzeros_and_iterations() {
    let scenario = on_off(0.625, 4.5e-5, 5.0, Time::from_seconds(10_000.0));
    let dist = accounting_solver().solve(&scenario).unwrap();
    let nnz = dist.diagnostics().generator_nonzeros.expect("reported");
    assert!(
        (2_900_000..3_700_000).contains(&nnz),
        "generator non-zeros = {nnz} (paper: about 3.2e6)"
    );
    let iterations = dist.diagnostics().iterations.expect("reported");
    assert!(iterations > 23_000, "iterations = {iterations}");
}

/// §6.1: consumed energy in 7500 on-seconds is 7500 s · 0.96 A = 7200 As
/// = C, so the on/off lifetime concentrates near 15000 s; "for pure
/// deterministic on- and off-times, the analytical KiBaM also yields a
/// lifetime of 15000 seconds".
#[test]
fn deterministic_square_wave_lifetime_is_15000_s() {
    use battery::kibam::Kibam;
    use battery::lifetime::lifetime;
    use battery::load::SquareWaveLoad;
    let b = Kibam::new(Charge::from_amp_seconds(7200.0), 1.0, Rate::per_second(0.0)).unwrap();
    let wave =
        SquareWaveLoad::symmetric(Frequency::from_hertz(1.0), Current::from_amps(0.96)).unwrap();
    let l = lifetime(&b, &wave, Time::from_hours(10.0))
        .unwrap()
        .unwrap();
    assert!((l.as_seconds() - 15_000.0).abs() < 1.0, "lifetime {l}");
}

/// §4.3: the simple model's parameters imply "theoretically the device
/// can be 4 hours in send mode or 100 hours in idle mode" on 800 mAh.
#[test]
fn simple_model_theoretical_extremes() {
    let w = Workload::simple_model().unwrap();
    let cap = Charge::from_milliamp_hours(800.0);
    let send_idx = w.ctmc().find_state("send").unwrap();
    let idle_idx = w.ctmc().find_state("idle").unwrap();
    let send_hours = (cap / w.current(send_idx)).as_hours();
    let idle_hours = (cap / w.current(idle_idx)).as_hours();
    assert!((send_hours - 4.0).abs() < 1e-9);
    assert!((idle_hours - 100.0).abs() < 1e-9);
}

/// §4.3: simple-model steady state (computed here by GTH) and the burst
/// model calibration λ_burst = 182/h ⇒ P[send] identical (¼) and
/// P[sleep] strictly larger in the burst model.
#[test]
fn workload_steady_state_calibration() {
    let simple = Workload::simple_model().unwrap();
    let pi_s = stationary_gth(simple.ctmc()).unwrap();
    let p_send_simple: f64 = simple.send_states().iter().map(|&i| pi_s[i]).sum();
    assert!((p_send_simple - 0.25).abs() < 1e-12);

    let burst = Workload::burst_model().unwrap();
    let pi_b = stationary_gth(burst.ctmc()).unwrap();
    let p_send_burst: f64 = burst.send_states().iter().map(|&i| pi_b[i]).sum();
    assert!(
        (p_send_burst - p_send_simple).abs() < 1e-12,
        "burst P[send] = {p_send_burst}"
    );
    let p_sleep_simple = pi_s[simple.ctmc().find_state("sleep").unwrap()];
    let p_sleep_burst = pi_b[burst.ctmc().find_state("sleep").unwrap()];
    assert!(
        p_sleep_burst > p_sleep_simple,
        "{p_sleep_burst} vs {p_sleep_simple}"
    );
}

/// §4.3: the on/off workload's transition rate is λ = 2·f·K so the mean
/// on (and off) time is 1/(2f) regardless of K.
#[test]
fn erlang_rates_scale_with_k() {
    for k in [1u32, 3, 10] {
        let w = Workload::on_off_erlang(Frequency::from_hertz(0.2), k, Current::from_amps(1.0))
            .unwrap();
        let expected_rate = 2.0 * 0.2 * k as f64;
        assert!(
            (w.ctmc().exit_rate(0) - expected_rate).abs() < 1e-12,
            "K = {k}"
        );
        // Mean cycle time = 2K/λ = 1/f.
        let mean_cycle = 2.0 * k as f64 / expected_rate;
        assert!((mean_cycle - 5.0).abs() < 1e-12);
    }
}

/// Fig. 2's initial condition: y₁(0) = c·C = 4500 As, y₂(0) = 2700 As.
#[test]
fn figure2_initial_wells() {
    use battery::kibam::Kibam;
    let b = Kibam::new(
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let s = b.full_state();
    assert!((s.available.as_coulombs() - 4500.0).abs() < 1e-9);
    assert!((s.bound.as_coulombs() - 2700.0).abs() < 1e-9);
}
