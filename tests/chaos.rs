//! Chaos tests: the resident service under deterministic fault
//! injection. A [`kibamrm::chaos::FaultInjectingSolver`] wraps the
//! backend with seeded error / panic / delay faults while worker threads
//! hammer the service; the invariants under test are the dependability
//! claims of the service layer itself:
//!
//! * the service never wedges — every request returns an answer, a
//!   typed error, or propagates the injected panic (and the test run
//!   itself terminates);
//! * no flight leaks — after the storm drains, `in_flight` is zero and
//!   fresh queries are admitted normally;
//! * no poisoned results — anything the cache serves afterwards is
//!   bit-identical to the unwrapped backend's exact answer;
//! * the stats ledger stays consistent across thread counts 1–8.

use kibamrm::chaos::{ChaosConfig, FaultInjectingSolver};
use kibamrm::distribution::LifetimeDistribution;
use kibamrm::scenario::Scenario;
use kibamrm::service::{
    Answer, LifetimeService, QueryOptions, RetryPolicy, ServiceConfig, ServiceError,
};
use kibamrm::solver::{Capability, LifetimeSolver, SolverRegistry};
use kibamrm::workload::Workload;
use kibamrm::KibamRmError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use units::{Charge, Current, Frequency, Time};

/// A cheap exact backend with scenario-distinguishable answers.
struct Inner {
    solves: Arc<AtomicUsize>,
}

impl LifetimeSolver for Inner {
    fn name(&self) -> &'static str {
        "inner"
    }
    fn capability(&self, _s: &Scenario) -> Capability {
        Capability::Exact
    }
    fn solve(&self, s: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
        self.solves.fetch_add(1, Ordering::SeqCst);
        let n = s.times().len() as f64;
        let bias = s.capacity().as_amp_seconds() % 1.0 / 10.0;
        let points = s
            .times()
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, ((i as f64 + bias) / n).clamp(0.0, 1.0)))
            .collect();
        LifetimeDistribution::new("inner", points, Default::default())
    }
}

fn pool_scenario(i: usize) -> Scenario {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    Scenario::builder()
        .name("chaos")
        .workload(w)
        .capacity(Charge::from_amp_seconds(60.0 + i as f64))
        .linear()
        .times(
            (1..=8)
                .map(|k| Time::from_seconds(k as f64 * 20.0))
                .collect(),
        )
        .delta(Charge::from_amp_seconds(0.5))
        .simulation(40, 11)
        .build()
        .unwrap()
}

/// Builds a service whose only backend injects the given fault mixture,
/// plus a handle onto the unwrapped backend's solve counter.
fn chaotic_service(config: ChaosConfig, service_config: ServiceConfig) -> Arc<LifetimeService> {
    let chaos = FaultInjectingSolver::new(
        Box::new(Inner {
            solves: Arc::new(AtomicUsize::new(0)),
        }),
        config,
    );
    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(chaos));
    Arc::new(LifetimeService::with_config(registry, service_config))
}

/// One worker's tally of how its requests ended.
#[derive(Default, Debug, Clone, Copy)]
struct Tally {
    ok: usize,
    typed_errors: usize,
    panics: usize,
}

/// Runs `threads` workers, each issuing `per_thread` queries round-robin
/// over a small scenario pool, catching injected panics. Returns the
/// merged tally.
fn storm(
    service: &Arc<LifetimeService>,
    threads: usize,
    per_thread: usize,
    opts: QueryOptions,
    check: fn(&Answer),
) -> Tally {
    let barrier = Arc::new(Barrier::new(threads));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let (service, barrier, opts) = (Arc::clone(service), Arc::clone(&barrier), opts);
            std::thread::spawn(move || {
                barrier.wait();
                let mut tally = Tally::default();
                for i in 0..per_thread {
                    let s = pool_scenario((t + i) % 6);
                    match catch_unwind(AssertUnwindSafe(|| service.query_with(&s, &opts))) {
                        Ok(Ok(answer)) => {
                            check(&answer);
                            tally.ok += 1;
                        }
                        Ok(Err(e)) => {
                            // Every failure is a *typed* service error
                            // with a printable message.
                            assert!(!e.to_string().is_empty());
                            tally.typed_errors += 1;
                        }
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<String>()
                                .cloned()
                                .unwrap_or_default();
                            assert!(
                                msg.contains("chaos"),
                                "only injected panics may escape, got {msg:?}"
                            );
                            tally.panics += 1;
                        }
                    }
                }
                tally
            })
        })
        .collect();
    let mut merged = Tally::default();
    for w in workers {
        let t = w.join().expect("worker threads never die unexpectedly");
        merged.ok += t.ok;
        merged.typed_errors += t.typed_errors;
        merged.panics += t.panics;
    }
    merged
}

/// After a storm the service must be fully drained and healthy: no
/// leaked flights, and every pool scenario answerable — with answers
/// bit-identical to the unwrapped backend (nothing poisoned was cached).
fn assert_drained_and_unpoisoned(service: &Arc<LifetimeService>, total_requests: usize) {
    let stats = service.stats();
    assert_eq!(stats.in_flight, 0, "a flight leaked: {stats:?}");
    assert!(
        stats.hits + stats.misses + stats.joined <= total_requests as u64,
        "admission ledger overcounts: {stats:?}"
    );
    let reference = Inner {
        solves: Arc::new(AtomicUsize::new(0)),
    };
    for i in 0..6 {
        let s = pool_scenario(i);
        let exact = reference.solve(&s).unwrap();
        // Chaos may still inject on a re-solve; retry until the answer
        // comes back (bounded — the fault sequence has gaps).
        let mut answer = None;
        for _ in 0..64 {
            if let Ok(Ok(a)) = catch_unwind(AssertUnwindSafe(|| service.query(&s))) {
                answer = Some(a);
                break;
            }
        }
        let answer = answer.expect("service must stay answerable after the storm");
        assert_eq!(
            answer.points(),
            exact.points(),
            "cached or fresh answer differs from the exact backend: poisoned result"
        );
    }
    assert_eq!(service.stats().in_flight, 0);
}

#[test]
fn chaos_storm_never_wedges_across_thread_counts() {
    for threads in 1..=8usize {
        let config = ChaosConfig::passthrough(0xC0FFEE ^ threads as u64)
            .with_error_rate(0.2)
            .with_panic_rate(0.1)
            .with_delay(0.2, Duration::from_millis(1));
        // Breaker off: this test wants raw fault traffic, not shedding.
        let service = chaotic_service(
            config,
            ServiceConfig::default()
                .with_max_in_flight(64)
                .with_breaker(0, Duration::ZERO),
        );
        let per_thread = 24;
        let tally = storm(
            &service,
            threads,
            per_thread,
            QueryOptions::new(),
            |answer| assert!(!answer.is_degraded(), "nothing asked for degradation"),
        );
        let total = threads * per_thread;
        assert_eq!(
            tally.ok + tally.typed_errors + tally.panics,
            total,
            "every request must be accounted for ({threads} threads)"
        );
        assert!(
            tally.ok > 0,
            "some requests must succeed ({threads} threads)"
        );
        assert_drained_and_unpoisoned(&service, total + 6 * 64);
    }
}

#[test]
fn chaos_with_retries_heals_transient_faults() {
    let config = ChaosConfig::passthrough(42).with_error_rate(0.5);
    let service = chaotic_service(
        config,
        ServiceConfig::default().with_breaker(0, Duration::ZERO),
    );
    let opts = QueryOptions::new().with_retry(
        RetryPolicy::retries(6).with_backoff(Duration::from_micros(100), Duration::from_millis(1)),
    );
    let tally = storm(&service, 2, 24, opts, |answer| {
        assert!(!answer.is_degraded());
    });
    let stats = service.stats();
    assert!(
        stats.retries > 0,
        "a 50 % transient fault rate must trigger retries: {stats:?}"
    );
    assert!(
        tally.ok * 10 >= 48 * 9,
        "six retries against 50 % faults heal almost everything, got {tally:?}"
    );
    assert_drained_and_unpoisoned(&service, 48 + 6 * 64);
}

#[test]
fn chaos_breaker_sheds_instead_of_hammering_a_dead_backend() {
    // Everything fails: the breaker must trip and convert most traffic
    // into fast CircuitOpen sheds instead of full failing solves.
    let config = ChaosConfig::passthrough(7).with_error_rate(1.0);
    let service = chaotic_service(
        config,
        ServiceConfig::default().with_breaker(3, Duration::from_secs(30)),
    );
    let mut circuit_open = 0;
    for i in 0..32 {
        match service.query(&pool_scenario(i % 6)) {
            Err(ServiceError::CircuitOpen { backend }) => {
                assert_eq!(backend, "inner", "sheds name the wrapped backend");
                circuit_open += 1;
            }
            Err(ServiceError::Solve(_)) => {}
            other => panic!("a dead backend cannot answer: {other:?}"),
        }
    }
    let stats = service.stats();
    assert_eq!(
        stats.errors, 3,
        "the breaker admits exactly `threshold` solves"
    );
    assert_eq!(circuit_open, 29, "everything after the trip sheds fast");
    assert_eq!(stats.breaker_open, 29);
    assert_eq!(stats.in_flight, 0);
}

#[test]
fn chaos_deadlines_degrade_instead_of_failing() {
    // Heavy injected delay + a tight deadline: exact solves time out,
    // but degraded answers (fast Monte Carlo — the cache starts cold)
    // keep the service useful, each with an explicit bound.
    let config = ChaosConfig::passthrough(13).with_delay(1.0, Duration::from_millis(40));
    let service = chaotic_service(
        config,
        ServiceConfig::default()
            .with_breaker(0, Duration::ZERO)
            .with_degraded_fallback(Duration::from_millis(250), 64),
    );
    let opts = QueryOptions::new()
        .with_deadline(Duration::from_millis(4))
        .allow_degraded();
    let mut degraded = 0;
    for i in 0..12 {
        match service.query_with(&pool_scenario(i % 6), &opts) {
            Ok(answer) => {
                if answer.is_degraded() {
                    degraded += 1;
                    let bound = answer.bound().expect("degraded answers carry a bound");
                    assert!(
                        bound.is_finite() && (0.0..=1.0).contains(&bound),
                        "bound {bound} is not a probability error bound"
                    );
                }
            }
            Err(e) => assert!(
                matches!(
                    e,
                    ServiceError::DeadlineExceeded { .. } | ServiceError::Solve(_)
                ),
                "unexpected error under deadline chaos: {e}"
            ),
        }
    }
    let stats = service.stats();
    assert!(degraded > 0, "some requests must degrade: {stats:?}");
    assert_eq!(stats.degraded_served, degraded);
    assert!(stats.deadline_expired >= stats.degraded_served);
    assert_eq!(stats.in_flight, 0);
}
