//! Concurrency properties of the resident query service
//! (`kibamrm::service::LifetimeService`): N identical concurrent
//! requests cost exactly one solve and every caller sees bit-identical
//! points, across thread counts 1–8; and the service's answers are
//! bit-identical to independent `SolverRegistry::solve` calls — the
//! cross-request cache is an optimisation, never an approximation.

use kibamrm::distribution::LifetimeDistribution;
use kibamrm::scenario::Scenario;
use kibamrm::service::{LifetimeService, ServiceConfig};
use kibamrm::solver::{Capability, LifetimeSolver, SolverOptions, SolverRegistry};
use kibamrm::workload::Workload;
use kibamrm::KibamRmError;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use units::{Charge, Current, Frequency, Rate, Time};

/// An exact backend that counts its solves and answers a deterministic
/// curve derived from the scenario (so different scenarios have
/// distinguishable answers).
struct CountingSolver {
    solves: Arc<AtomicUsize>,
}

impl LifetimeSolver for CountingSolver {
    fn name(&self) -> &'static str {
        "counting"
    }
    fn capability(&self, _scenario: &Scenario) -> Capability {
        Capability::Exact
    }
    fn solve(&self, scenario: &Scenario) -> Result<LifetimeDistribution, KibamRmError> {
        self.solves.fetch_add(1, Ordering::SeqCst);
        let n = scenario.times().len() as f64;
        let bias = scenario.capacity().as_amp_seconds() % 1.0 / 10.0;
        let points = scenario
            .times()
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, ((i as f64 + bias) / n).clamp(0.0, 1.0)))
            .collect();
        LifetimeDistribution::new("counting", points, Default::default())
    }
}

fn counting_service() -> (Arc<LifetimeService>, Arc<AtomicUsize>) {
    let solves = Arc::new(AtomicUsize::new(0));
    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(CountingSolver {
        solves: Arc::clone(&solves),
    }));
    (Arc::new(LifetimeService::new(registry)), solves)
}

fn query_scenario(capacity_as: f64) -> Scenario {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(0.5), 1, Current::from_amps(0.5)).unwrap();
    Scenario::builder()
        .name("service-prop")
        .workload(w)
        .capacity(Charge::from_amp_seconds(capacity_as))
        .linear()
        .times(
            (1..=10)
                .map(|i| Time::from_seconds(i as f64 * 40.0))
                .collect(),
        )
        .delta(Charge::from_amp_seconds(1.0))
        .simulation(40, 11)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N concurrent identical requests (released together through a
    /// barrier) solve exactly once; every thread's answer is
    /// bit-identical; the admission counters account for every request.
    #[test]
    fn identical_concurrent_requests_solve_once(
        threads in 1usize..=8,
        capacity in 50.0f64..150.0,
    ) {
        let (service, solves) = counting_service();
        let scenario = query_scenario(capacity);
        let barrier = Arc::new(Barrier::new(threads));
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let (service, scenario, barrier) =
                    (Arc::clone(&service), scenario.clone(), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    service.query(&scenario)
                })
            })
            .collect();
        let answers: Vec<LifetimeDistribution> = workers
            .into_iter()
            .map(|w| w.join().unwrap().expect("no query may fail"))
            .collect();

        prop_assert!(solves.load(Ordering::SeqCst) == 1,
            "{} identical requests must share one solve", threads);
        let reference = &answers[0];
        for a in &answers[1..] {
            prop_assert_eq!(a.points(), reference.points());
        }
        let stats = service.stats();
        prop_assert_eq!(stats.misses, 1);
        // Every request is a hit, a join or the one miss; none are shed.
        prop_assert_eq!(stats.hits + stats.joined + stats.misses, threads as u64);
        prop_assert_eq!(stats.shed, 0);
        prop_assert_eq!(stats.in_flight, 0);
    }

    /// Against the real backends: whatever mix of cached / fresh /
    /// rate-rescaled queries the service serves, every answer is
    /// bit-identical to an independent registry solve of the same
    /// scenario under the same thread budget.
    #[test]
    fn service_answers_match_fresh_solves_bitwise(
        quanta in 4u32..=10,
        gamma_pow in 0u32..=2,
    ) {
        let options = SolverOptions::sequential();
        let registry = SolverRegistry::with_default_backends().with_options(options);
        let service = LifetimeService::with_config(
            SolverRegistry::with_default_backends(),
            ServiceConfig::default().with_options(options),
        );
        let base = Scenario::builder()
            .name("service-bits")
            .workload(Workload::on_off_erlang(
                Frequency::from_hertz(0.5), 1, Current::from_amps(0.5)).unwrap())
            .capacity(Charge::from_amp_seconds(60.0))
            .kibam(0.5, Rate::per_second(1e-4))
            .times((1..=6).map(|i| Time::from_seconds(i as f64 * 60.0)).collect())
            .delta(Charge::from_amp_seconds(30.0 / quanta as f64))
            .build()
            .unwrap();
        let rescaled = base.with_rate_scale(0.5f64.powi(gamma_pow as i32)).unwrap();
        // Query order exercises fresh → warm-group → cached paths.
        for s in [&base, &rescaled, &base] {
            let served = service.query(s).expect("service solve");
            let fresh = registry.solve(s).expect("fresh solve");
            prop_assert!(served.points() == fresh.points(),
                "served and fresh answers must be the same bits");
        }
        let sup = service.query(&rescaled).unwrap()
            .max_difference(&registry.solve(&rescaled).unwrap())
            .unwrap();
        prop_assert!(sup == 0.0, "sup-distance is {}, must be exactly 0", sup);
    }

    /// Under seeded fault injection (transient errors and panics from a
    /// `FaultInjectingSolver`-wrapped backend) and any thread count 1–8,
    /// the service stays dependable: every request ends in an answer, a
    /// typed error or the injected panic; no flight leaks; anything the
    /// cache serves afterwards is bit-identical to the exact backend.
    #[test]
    fn service_survives_fault_injection(
        threads in 1usize..=8,
        seed in 0u64..1024,
        error_pct in 0u32..=40,
        panic_pct in 0u32..=20,
    ) {
        use kibamrm::chaos::{ChaosConfig, FaultInjectingSolver};
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let solves = Arc::new(AtomicUsize::new(0));
        let chaos = FaultInjectingSolver::new(
            Box::new(CountingSolver { solves: Arc::clone(&solves) }),
            ChaosConfig::passthrough(seed)
                .with_error_rate(error_pct as f64 / 100.0)
                .with_panic_rate(panic_pct as f64 / 100.0),
        );
        let mut registry = SolverRegistry::empty();
        registry.register(Box::new(chaos));
        // Breaker off: this property wants raw fault traffic (the
        // breaker's own behaviour is covered by the chaos suite).
        let service = Arc::new(LifetimeService::with_config(
            registry,
            ServiceConfig::default().with_breaker(0, std::time::Duration::ZERO),
        ));

        let per_thread = 8usize;
        let barrier = Arc::new(Barrier::new(threads));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let (service, barrier) = (Arc::clone(&service), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut accounted = 0usize;
                    for i in 0..per_thread {
                        let s = query_scenario(50.0 + ((t + i) % 4) as f64);
                        match catch_unwind(AssertUnwindSafe(|| service.query(&s))) {
                            Ok(Ok(_)) | Ok(Err(_)) | Err(_) => accounted += 1,
                        }
                    }
                    accounted
                })
            })
            .collect();
        let accounted: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        prop_assert_eq!(accounted, threads * per_thread);

        let stats = service.stats();
        prop_assert_eq!(stats.in_flight, 0);
        // Nothing poisoned was cached: whatever the service now serves
        // for each scenario matches the exact backend bit for bit.
        let exact_backend = CountingSolver { solves: Arc::new(AtomicUsize::new(0)) };
        for cap in 0..4 {
            let s = query_scenario(50.0 + cap as f64);
            let exact = exact_backend.solve(&s).unwrap();
            let mut served = None;
            for _ in 0..64 {
                if let Ok(Ok(a)) = catch_unwind(AssertUnwindSafe(|| service.query(&s))) {
                    served = Some(a);
                    break;
                }
            }
            let served = served.expect("service stays answerable after the faults");
            prop_assert_eq!(served.points(), exact.points());
        }
    }
}

/// The single-flight guarantee holds repeatedly on one resident service:
/// wave after wave of concurrent identical queries (distinct per wave)
/// never cost more than one solve per wave.
#[test]
fn repeated_waves_keep_solving_once() {
    let (service, solves) = counting_service();
    for wave in 0..5u64 {
        let scenario = query_scenario(70.0 + wave as f64);
        let barrier = Arc::new(Barrier::new(4));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let (service, scenario, barrier) =
                    (Arc::clone(&service), scenario.clone(), Arc::clone(&barrier));
                std::thread::spawn(move || {
                    barrier.wait();
                    service.query(&scenario).expect("query succeeds")
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            solves.load(Ordering::SeqCst),
            wave as usize + 1,
            "wave {wave} must add exactly one solve"
        );
    }
    assert_eq!(service.stats().misses, 5);
}
