//! The snapshot corruption matrix, run against **committed fixtures**
//! (`tests/fixtures/snapshot_*.snap`): a valid snapshot written by the
//! current format, plus three damaged variants — truncated, bit-flipped
//! and version-skewed. Every damaged variant must produce a logged
//! cold start (typed error, `snapshot_rejected` counted, never a
//! panic), and after any load outcome the service's answers must stay
//! bit-identical to fresh solves — corruption can cost warmth, never
//! correctness.
//!
//! The fixtures are real bytes on disk, not bytes built in the test,
//! so format drift is caught: if the encoder changes shape, the valid
//! fixture stops loading and this suite fails until the fixtures are
//! regenerated (run the `#[ignore]`d `regenerate_fixtures` test) and
//! the version is bumped.

use kibamrm::scenario::Scenario;
use kibamrm::service::LifetimeService;
use kibamrm::snapshot;
use kibamrm::solver::SolverRegistry;
use kibamrm::workload::Workload;
use kibamrm::SnapshotError;
use std::path::PathBuf;
use units::{Charge, Current, Frequency, Rate, Time};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name)
}

/// The two scenarios the valid fixture holds (kibam + discretisation:
/// deterministic, fast, exercised by the default backends).
fn fixture_scenarios() -> Vec<Scenario> {
    [60.0, 80.0]
        .iter()
        .map(|&capacity| {
            Scenario::builder()
                .name("snapshot-fixture")
                .workload(
                    Workload::on_off_erlang(Frequency::from_hertz(0.5), 1, Current::from_amps(0.5))
                        .unwrap(),
                )
                .capacity(Charge::from_amp_seconds(capacity))
                .kibam(0.5, Rate::per_second(1e-4))
                .times(
                    (1..=6)
                        .map(|i| Time::from_seconds(i as f64 * 60.0))
                        .collect(),
                )
                .delta(Charge::from_amp_seconds(2.5))
                .build()
                .unwrap()
        })
        .collect()
}

fn default_service() -> LifetimeService {
    LifetimeService::new(SolverRegistry::with_default_backends())
}

/// Regenerates every fixture from the current format. Run explicitly
/// (`cargo test -p integration --test snapshot_robustness -- --ignored`)
/// after an intentional format change, and commit the result.
#[test]
#[ignore = "writes the committed fixtures; run after intentional format changes"]
fn regenerate_fixtures() {
    let service = default_service();
    for scenario in fixture_scenarios() {
        service.query(&scenario).unwrap();
    }
    let valid = fixture("snapshot_valid.snap");
    std::fs::create_dir_all(valid.parent().unwrap()).unwrap();
    let report = service.save_snapshot(&valid).unwrap();
    assert_eq!(report.entries, 2);
    let bytes = std::fs::read(&valid).unwrap();

    // Truncation: the tail of the payload is gone (a torn write that
    // atomic rename prevents, simulated here directly).
    std::fs::write(
        fixture("snapshot_truncated.snap"),
        &bytes[..bytes.len() - 7],
    )
    .unwrap();

    // A single flipped bit deep inside the payload (disk rot).
    let mut flipped = bytes.clone();
    let at = bytes.len() / 2;
    flipped[at] ^= 0x20;
    std::fs::write(fixture("snapshot_bitflip.snap"), &flipped).unwrap();

    // A future format version (byte 8 is the low version byte).
    let mut skewed = bytes.clone();
    skewed[8] = 99;
    std::fs::write(fixture("snapshot_version_skew.snap"), &skewed).unwrap();
}

#[test]
fn valid_fixture_revives_answers_bit_identical_to_fresh_solves() {
    let warm = default_service();
    let report = warm.load_snapshot(&fixture("snapshot_valid.snap"));
    assert_eq!(
        (report.loaded, report.rejected),
        (2, 0),
        "committed valid fixture failed to load: {:?} — format drift? \
         regenerate the fixtures and bump the snapshot version",
        report.error
    );

    let fresh = default_service();
    for scenario in fixture_scenarios() {
        let from_snapshot = warm.query(&scenario).unwrap();
        let solved = fresh.query(&scenario).unwrap();
        assert_eq!(
            from_snapshot.points(),
            solved.points(),
            "a revived curve must be bit-identical to a fresh solve"
        );
    }
    let stats = warm.stats();
    assert_eq!(stats.hits, 2, "both queries must come from the snapshot");
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.snapshot_loaded, 2);
}

#[test]
fn every_damaged_fixture_is_a_counted_cold_start_with_correct_answers() {
    let cases = [
        ("snapshot_truncated.snap", "truncation"),
        ("snapshot_bitflip.snap", "bit flip"),
        ("snapshot_version_skew.snap", "version skew"),
    ];
    for (name, label) in cases {
        let service = default_service();
        let report = service.load_snapshot(&fixture(name));
        assert!(report.is_cold(), "{label} must cold-start");
        assert_eq!(report.loaded, 0, "{label} must revive nothing");
        assert_eq!(report.rejected, 1, "{label} rejects the file wholesale");
        assert!(report.error.is_some(), "{label} must carry a typed error");
        let stats = service.stats();
        assert_eq!(
            stats.snapshot_rejected, 1,
            "{label} must land in the ledger"
        );
        assert_eq!(stats.snapshot_loaded, 0);

        // Cold but correct: the service answers exactly as a fresh one.
        let scenario = &fixture_scenarios()[0];
        let answer = service.query(scenario).unwrap();
        let reference = default_service().query(scenario).unwrap();
        assert_eq!(answer.points(), reference.points(), "{label}");
    }
}

#[test]
fn damaged_fixtures_decode_to_the_expected_typed_errors() {
    let truncated = std::fs::read(fixture("snapshot_truncated.snap")).unwrap();
    assert!(matches!(
        snapshot::decode(&truncated),
        Err(SnapshotError::Corrupt(_))
    ));

    let flipped = std::fs::read(fixture("snapshot_bitflip.snap")).unwrap();
    match snapshot::decode(&flipped) {
        Err(SnapshotError::Corrupt(msg)) => {
            assert!(
                msg.contains("checksum"),
                "a payload flip fails the checksum, got {msg:?}"
            );
        }
        other => panic!("bit flip must be Corrupt, got {other:?}"),
    }

    let skewed = std::fs::read(fixture("snapshot_version_skew.snap")).unwrap();
    assert!(matches!(
        snapshot::decode(&skewed),
        Err(SnapshotError::VersionSkew { found: 99 })
    ));

    let valid = std::fs::read(fixture("snapshot_valid.snap")).unwrap();
    assert_eq!(snapshot::decode(&valid).unwrap().len(), 2);
}
