//! Shape assertions for every figure of the evaluation section, run at
//! reduced fidelity (coarser Δ than the paper where the full setting is
//! expensive; the bench harness regenerates the exact settings). All
//! lifetime curves are computed through the solver facade.

use battery::kibam::Kibam;
use battery::lifetime::{discharge_trajectory, lifetime};
use battery::load::SquareWaveLoad;
use kibamrm::scenario::Scenario;
use kibamrm::solver::{DiscretisationSolver, LifetimeSolver, SericolaSolver, SolverRegistry};
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

/// Fig. 2: the available charge dips during on-phases and recovers during
/// off-phases; the battery dies during the 12th cycle or so.
#[test]
fn fig2_well_evolution_shape() {
    let b = Kibam::new(
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let wave =
        SquareWaveLoad::symmetric(Frequency::from_hertz(0.001), Current::from_amps(0.96)).unwrap();
    let traj = discharge_trajectory(
        &b,
        &wave,
        Time::from_seconds(12_500.0),
        Time::from_seconds(50.0),
    )
    .unwrap();
    let at = |s: f64| {
        traj.iter()
            .min_by(|a, b| {
                (a.time.as_seconds() - s)
                    .abs()
                    .partial_cmp(&(b.time.as_seconds() - s).abs())
                    .unwrap()
            })
            .unwrap()
    };
    // Sawtooth: y1 lower at the end of an on-phase (t = 500) than at the
    // end of the following off-phase (t = 1000).
    assert!(at(500.0).state.available < at(950.0).state.available);
    // Bound well decreases monotonically across cycle boundaries.
    assert!(at(1000.0).state.bound > at(2000.0).state.bound);
    assert!(at(2000.0).state.bound > at(6000.0).state.bound);
    // Depletion between 10000 s and 12500 s, as plotted.
    let end = traj.last().unwrap();
    assert!(end.time.as_seconds() > 10_000.0 && end.time.as_seconds() < 12_500.0);
    assert!(end.state.available.as_coulombs().abs() < 1e-4);
}

/// Table 1's computable shape: the KiBaM lifetime under fast square waves
/// is frequency-independent (203 = 203 in the paper) because both
/// frequencies are far above the well-relaxation rate.
#[test]
fn table1_kibam_frequency_independence() {
    let b = Kibam::new(
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let horizon = Time::from_hours(10.0);
    let l1 = {
        let w = SquareWaveLoad::symmetric(Frequency::from_hertz(1.0), Current::from_amps(0.96))
            .unwrap();
        lifetime(&b, &w, horizon).unwrap().unwrap()
    };
    let l02 = {
        let w = SquareWaveLoad::symmetric(Frequency::from_hertz(0.2), Current::from_amps(0.96))
            .unwrap();
        lifetime(&b, &w, horizon).unwrap().unwrap()
    };
    let rel = (l1.as_seconds() - l02.as_seconds()).abs() / l1.as_seconds();
    assert!(rel < 0.005, "1 Hz: {l1} vs 0.2 Hz: {l02}");
    // And both beat the continuous load by roughly 2× (intermittency).
    let cont = b.constant_load_lifetime(Current::from_amps(0.96)).unwrap();
    let ratio = l1.as_seconds() / cont.as_seconds();
    assert!((1.9..2.4).contains(&ratio), "ratio {ratio}");
}

fn on_off_scenario(capacity_as: f64, c: f64, k: f64, delta_as: f64) -> Scenario {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    Scenario::builder()
        .name(format!("onoff-C{capacity_as}-c{c}"))
        .workload(w)
        .capacity(Charge::from_amp_seconds(capacity_as))
        .kibam(c, Rate::per_second(k))
        .times(
            (0..=10)
                .map(|i| Time::from_seconds(8_000.0 + i as f64 * 1000.0))
                .collect(),
        )
        .delta(Charge::from_amp_seconds(delta_as))
        .build()
        .unwrap()
}

/// Fig. 7: coarser Δ smears the nearly deterministic CDF; refinement
/// moves every curve toward the simulation's sharp step. We assert the
/// slope around the centre grows monotonically as Δ shrinks.
#[test]
fn fig7_sharpening_with_delta() {
    let base = on_off_scenario(7200.0, 1.0, 0.0, 200.0)
        .with_times(vec![
            Time::from_seconds(13_000.0),
            Time::from_seconds(17_000.0),
        ])
        .unwrap();
    let solver = DiscretisationSolver::new();
    let mut widths = Vec::new();
    for delta in [200.0, 100.0, 50.0] {
        let dist = solver
            .solve(&base.with_delta(Charge::from_amp_seconds(delta)))
            .unwrap();
        // Mass accumulated across the central window: larger = sharper.
        widths.push(dist.points()[1].1 - dist.points()[0].1);
    }
    assert!(
        widths[0] < widths[1] && widths[1] < widths[2],
        "central mass not increasing with refinement: {widths:?}"
    );
}

/// Fig. 9: the three initial-capacity scenarios are stochastically
/// ordered: (C=4500, c=1) dies first, (C=7200, c=0.625) second,
/// (C=7200, c=1) last. One sweep call evaluates the whole grid.
#[test]
fn fig9_ordering() {
    let grid = [
        on_off_scenario(4500.0, 1.0, 0.0, 25.0),
        on_off_scenario(7200.0, 0.625, 4.5e-5, 25.0),
        on_off_scenario(7200.0, 1.0, 0.0, 25.0),
    ];
    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(DiscretisationSolver::new()));
    let results = registry.sweep(&grid);
    let [small, two_well, full]: [_; 3] = results
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .unwrap()
        .try_into()
        .unwrap();
    for i in 0..small.points().len() {
        let t = small.points()[i].0;
        assert!(
            small.points()[i].1 >= two_well.points()[i].1 - 1e-9,
            "t = {t}: small {} < two-well {}",
            small.points()[i].1,
            two_well.points()[i].1
        );
        assert!(
            two_well.points()[i].1 >= full.points()[i].1 - 1e-9,
            "t = {t}: two-well {} < full {}",
            two_well.points()[i].1,
            full.points()[i].1
        );
    }
}

/// Fig. 10's three anchor statements: `C=500,c=1` ⇒ > 99 % dead by ~17 h;
/// `C=800,c=0.625` ⇒ dead by ~23 h; `C=800,c=1` ⇒ dead by ~25 h; and the
/// middle curve family sits between the outer two. The `c = 1` scenarios
/// go through `auto()` (which must pick Sericola); the two-well scenario
/// through the discretisation backend.
#[test]
fn fig10_anchor_probabilities() {
    let mk = |cap: f64, c: f64, k: f64| {
        Scenario::builder()
            .name("fig10")
            .workload(Workload::simple_model().unwrap())
            .capacity(Charge::from_milliamp_hours(cap))
            .kibam(c, Rate::per_second(k))
            .times((4..=26).map(|h| Time::from_hours(h as f64)).collect())
            .delta(Charge::from_milliamp_hours(4.0))
            .build()
            .unwrap()
    };
    let registry = SolverRegistry::with_default_backends();

    let s500 = mk(500.0, 1.0, 0.0);
    assert_eq!(registry.auto(&s500).unwrap().name(), "sericola");
    let left_dist = registry.solve(&s500).unwrap();
    let p17 = left_dist.cdf(Time::from_hours(17.0));
    assert!(p17 > 0.99, "C=500, c=1 at 17 h: {p17}");

    let s800 = mk(800.0, 0.625, 4.5e-5);
    assert_eq!(registry.auto(&s800).unwrap().name(), "discretisation");
    let middle_dist = registry.solve(&s800).unwrap();
    let p23 = middle_dist.cdf(Time::from_hours(23.0));
    assert!(p23 > 0.97, "C=800, c=0.625 at 23 h: {p23}");

    let right_dist = SericolaSolver::new().solve(&mk(800.0, 1.0, 0.0)).unwrap();
    assert!(right_dist.cdf(Time::from_hours(25.0)) > 0.97);

    // Ordering at 18 h: left ≥ middle ≥ right.
    let t = Time::from_hours(18.0);
    let (left, middle, right) = (left_dist.cdf(t), middle_dist.cdf(t), right_dist.cdf(t));
    assert!(
        left >= middle - 0.02 && middle >= right - 0.02,
        "{left} {middle} {right}"
    );
}

/// Fig. 11: the burst model outlives the simple model; at 20 h the paper
/// reports ≈ 95 % (simple) vs ≈ 89 % (burst).
#[test]
fn fig11_burst_beats_simple() {
    let base = Scenario::builder()
        .name("simple")
        .workload(Workload::simple_model().unwrap())
        .capacity(Charge::from_milliamp_hours(800.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .times((15..=25).map(|h| Time::from_hours(h as f64)).collect())
        .delta(Charge::from_milliamp_hours(10.0))
        .build()
        .unwrap();
    let grid = [
        base.clone(),
        base.with_name("burst")
            .with_workload(Workload::burst_model().unwrap())
            .unwrap(),
    ];
    let mut registry = SolverRegistry::empty();
    registry.register(Box::new(DiscretisationSolver::new()));
    let results = registry.sweep(&grid);
    let t20 = Time::from_hours(20.0);
    let p_simple = results[0].as_ref().unwrap().cdf(t20);
    let p_burst = results[1].as_ref().unwrap().cdf(t20);
    assert!(p_burst < p_simple, "burst {p_burst} vs simple {p_simple}");
    assert!(
        (0.85..1.0).contains(&p_simple),
        "simple at 20 h: {p_simple}"
    );
    assert!((0.75..0.99).contains(&p_burst), "burst at 20 h: {p_burst}");
    // The gap the paper shows is ~6 percentage points.
    assert!(
        (0.01..0.15).contains(&(p_simple - p_burst)),
        "gap {}",
        p_simple - p_burst
    );
}
