//! Triple cross-validation: the paper's three computational methods —
//! Markovian approximation (§5), stochastic simulation (§6) and the exact
//! Sericola algorithm (`c = 1`) — must agree with each other wherever
//! more than one applies. All methods are reached through the unified
//! `Scenario` → `LifetimeSolver` → `LifetimeDistribution` pipeline.

use kibamrm::scenario::Scenario;
use kibamrm::solver::{
    DiscretisationSolver, LifetimeSolver, SericolaSolver, SimulationSolver, SolverRegistry,
};
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

fn simple_linear() -> Scenario {
    Scenario::builder()
        .name("simple-linear")
        .workload(Workload::simple_model().unwrap())
        .capacity(Charge::from_milliamp_hours(500.0))
        .linear()
        .times((2..=28).map(|h| Time::from_hours(h as f64)).collect())
        .delta(Charge::from_milliamp_hours(2.0))
        .simulation(2000, 77)
        .build()
        .unwrap()
}

/// Simple model, c = 1 (Fig. 10 leftmost family): discretisation at a
/// fine Δ against the exact algorithm. The paper reports "good
/// approximations" for this model class.
#[test]
fn discretisation_matches_exact_simple_model() {
    let scenario = simple_linear();
    let exact = SericolaSolver::new().solve(&scenario).unwrap();
    let approx = DiscretisationSolver::new().solve(&scenario).unwrap();
    let diff = exact.max_difference(&approx).unwrap();
    assert!(diff < 0.03, "max |exact − approx| = {diff} at Δ = 2 mAh");
}

/// Same configuration against simulation (the grid starts later so every
/// sampled point has depletion mass).
#[test]
fn simulation_matches_exact_simple_model() {
    let scenario = simple_linear()
        .with_times((5..=28).map(|h| Time::from_hours(h as f64)).collect())
        .unwrap();
    let exact = SericolaSolver::new().solve(&scenario).unwrap();
    let sim = SimulationSolver::new()
        .with_horizon(Time::from_hours(30.0))
        .solve(&scenario)
        .unwrap();
    for ((t, p), (_, s)) in exact.points().iter().zip(sim.points()) {
        // 2000 runs ⇒ σ ≤ 0.011; allow 4σ.
        assert!((p - s).abs() < 0.045, "t = {t}: exact {p} vs sim {s}");
    }
}

/// Two-well simple model (no exact method): discretisation at Δ = 2 mAh
/// against simulation — the paper's Fig. 10 middle family, where it
/// reports the algorithm "gave good results".
#[test]
fn discretisation_matches_simulation_two_wells() {
    let scenario = Scenario::builder()
        .name("simple-two-wells")
        .workload(Workload::simple_model().unwrap())
        .capacity(Charge::from_milliamp_hours(800.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .times((5..=28).map(|h| Time::from_hours(h as f64)).collect())
        .delta(Charge::from_milliamp_hours(2.0))
        .simulation(1500, 78)
        .build()
        .unwrap();
    // Sericola must rule itself out; cross_validate runs the other two.
    let registry = SolverRegistry::with_default_backends();
    let cv = registry.cross_validate(&scenario).unwrap();
    assert!(cv.result("sericola").is_none());
    let approx = cv.result("discretisation").unwrap();
    let sim = cv.result("simulation").unwrap();
    for ((t, p), (_, s)) in approx.points().iter().zip(sim.points()) {
        assert!(
            (p - s).abs() < 0.06,
            "t = {}: approx {p} vs sim {s}",
            t.as_hours()
        );
    }
    assert!(cv.max_disagreement() < 0.06, "{}", cv.max_disagreement());
}

/// The KiBaMRM simulator's special case c = 1, k = 0 must agree with the
/// plain accumulated-consumption view: mean consumed charge matches the
/// MRM expectation, and simulation agrees with the exact CDF point.
#[test]
fn simulator_consumption_consistency() {
    use markov::mrm::MarkovRewardModel;
    let scenario = simple_linear();
    let w = scenario.workload();
    let mrm = MarkovRewardModel::new(w.ctmc().clone(), w.currents_amps()).unwrap();
    // Mean consumed charge at t = 12 h.
    let t = Time::from_hours(12.0);
    let mean_consumed = mrm
        .expected_accumulated_reward(w.initial(), t.as_seconds(), 1e-10)
        .unwrap();
    // Steady-state mean current: 0.5·8 + 0.25·200 + 0.25·0 = 54 mA; the
    // transient mean differs only slightly after 12 h.
    let expected = 0.054 * t.as_seconds();
    assert!(
        (mean_consumed - expected).abs() < 0.03 * expected,
        "consumed {mean_consumed} As vs steady-state estimate {expected} As"
    );
    // And Monte Carlo agrees on the battery-empty probability at the
    // matching capacity threshold.
    let quick = scenario.with_simulation(1000, 79);
    let exact = SericolaSolver::new().solve(&quick).unwrap().cdf(t);
    let sim = SimulationSolver::new()
        .with_horizon(Time::from_hours(30.0))
        .solve(&quick)
        .unwrap()
        .cdf(t);
    assert!((exact - sim).abs() < 0.05, "exact {exact} vs sim {sim}");
}

/// The satellite statistical cross-validation (fixed seed, so the check
/// is deterministic): the sup distance between the simulated curve and
/// the discretisation stays within the study's own Wilson confidence
/// band (3× the largest half-width, plus the discretisation's certified
/// distance from the exact curve — the two error sources compose
/// additively).
#[test]
fn simulation_stays_within_its_wilson_band_of_the_discretisation() {
    let scenario = simple_linear().with_simulation(2000, 81);
    let solver = SimulationSolver::new();
    let sim = solver.solve(&scenario).unwrap();
    let study = solver.streaming_study(&scenario).unwrap();
    assert_eq!(study.total_runs(), 2000);
    let disc = DiscretisationSolver::new().solve(&scenario).unwrap();
    let exact = SericolaSolver::new().solve(&scenario).unwrap();
    let disc_error = exact.max_difference(&disc).unwrap();

    // Pointwise: each simulated point sits within 3 Wilson half-widths
    // (≈ 3σ) of the discretised curve once its deterministic error is
    // granted.
    let mut sup = 0.0f64;
    for (i, ((t, p_sim), (_, p_disc))) in sim.points().iter().zip(disc.points()).enumerate() {
        let band = 3.0 * study.confidence_half_width(i) + disc_error;
        let gap = (p_sim - p_disc).abs();
        sup = sup.max(gap);
        assert!(
            gap <= band,
            "t = {t}: |sim − disc| = {gap} exceeds the band {band}"
        );
    }
    // And the sup distance respects the global band.
    let global_band = 3.0 * study.max_half_width() + disc_error;
    assert!(sup <= global_band, "sup {sup} vs band {global_band}");
    // The band is meaningful: it is not vacuously ≥ 1.
    assert!(global_band < 0.15, "band too loose to validate anything");
}

/// On/off model with two wells: simulation against a fine discretisation
/// (Fig. 8's message — the approximation approaches simulation from the
/// pessimistic side as Δ shrinks). Compare medians rather than pointwise
/// values: the approximation of a near-deterministic CDF is smeared
/// (paper's own observation on Figs. 7–8), but its centre must be right.
#[test]
fn on_off_two_wells_methods_agree_roughly() {
    let w =
        Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96)).unwrap();
    let scenario = Scenario::builder()
        .name("onoff-two-wells")
        .workload(w)
        .capacity(Charge::from_amp_seconds(7200.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .times(
            (0..=100)
                .map(|i| Time::from_seconds(10_000.0 + i as f64 * 100.0))
                .collect(),
        )
        .delta(Charge::from_amp_seconds(25.0))
        .simulation(800, 80)
        .build()
        .unwrap();
    let approx = DiscretisationSolver::new().solve(&scenario).unwrap();
    let median_approx = approx.median().expect("median reached").as_seconds();
    let study = SimulationSolver::new()
        .with_horizon(Time::from_seconds(25_000.0))
        .study(&scenario)
        .unwrap();
    let median_sim = study.lifetime_quantile(0.5).unwrap();
    let rel = (median_approx - median_sim).abs() / median_sim;
    assert!(
        rel < 0.05,
        "median: approx {median_approx} vs sim {median_sim} (rel {rel})"
    );
}
