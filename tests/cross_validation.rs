//! Triple cross-validation: the paper's three computational methods —
//! Markovian approximation (§5), stochastic simulation (§6) and the exact
//! Sericola algorithm (`c = 1`) — must agree with each other wherever
//! more than one applies.

use kibamrm::analysis::{exact_linear_curve, max_curve_difference};
use kibamrm::discretise::{DiscretisationOptions, DiscretisedModel};
use kibamrm::model::KibamRm;
use kibamrm::simulate::lifetime_study;
use kibamrm::workload::Workload;
use units::{Charge, Current, Frequency, Rate, Time};

fn simple_linear() -> KibamRm {
    KibamRm::new(
        Workload::simple_model().unwrap(),
        Charge::from_milliamp_hours(500.0),
        1.0,
        Rate::per_second(0.0),
    )
    .unwrap()
}

/// Simple model, c = 1 (Fig. 10 leftmost family): discretisation at a
/// fine Δ against the exact algorithm. The paper reports "good
/// approximations" for this model class.
#[test]
fn discretisation_matches_exact_simple_model() {
    let model = simple_linear();
    let times: Vec<Time> = (2..=28).map(|h| Time::from_hours(h as f64)).collect();
    let exact = exact_linear_curve(&model, &times).unwrap();

    let opts = DiscretisationOptions::with_delta(Charge::from_milliamp_hours(2.0));
    let disc = DiscretisedModel::build(&model, &opts).unwrap();
    let approx = disc.empty_probability_curve(&times).unwrap();

    let diff = max_curve_difference(&exact, &approx.points).unwrap();
    assert!(diff < 0.03, "max |exact − approx| = {diff} at Δ = 2 mAh");
}

/// Same configuration against simulation.
#[test]
fn simulation_matches_exact_simple_model() {
    let model = simple_linear();
    let horizon = Time::from_hours(30.0);
    let study = lifetime_study(&model, horizon, 2000, 77).unwrap();
    let times: Vec<Time> = (5..=28).map(|h| Time::from_hours(h as f64)).collect();
    let exact = exact_linear_curve(&model, &times).unwrap();
    for (t, p) in &exact {
        let sim = study.empty_probability(*t);
        // 2000 runs ⇒ σ ≤ 0.011; allow 4σ.
        assert!((p - sim).abs() < 0.045, "t = {t}: exact {p} vs sim {sim}");
    }
}

/// Two-well simple model (no exact method): discretisation at Δ = 2 mAh
/// against simulation — the paper's Fig. 10 middle family, where it
/// reports the algorithm "gave good results".
#[test]
fn discretisation_matches_simulation_two_wells() {
    let model = KibamRm::new(
        Workload::simple_model().unwrap(),
        Charge::from_milliamp_hours(800.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let horizon = Time::from_hours(30.0);
    let study = lifetime_study(&model, horizon, 1500, 78).unwrap();
    let opts = DiscretisationOptions::with_delta(Charge::from_milliamp_hours(2.0));
    let disc = DiscretisedModel::build(&model, &opts).unwrap();
    let times: Vec<Time> = (5..=28).map(|h| Time::from_hours(h as f64)).collect();
    let curve = disc.empty_probability_curve(&times).unwrap();
    for (t, p) in &curve.points {
        let sim = study.empty_probability(*t);
        assert!(
            (p - sim).abs() < 0.06,
            "t = {} h: approx {p} vs sim {sim}",
            t / 3600.0
        );
    }
}

/// The KiBaMRM simulator's special case c = 1, k = 0 must agree with the
/// plain accumulated-consumption view: mean lifetime ≈ the time at which
/// mean consumed charge reaches C (checked through the MRM expectation).
#[test]
fn simulator_consumption_consistency() {
    use markov::mrm::MarkovRewardModel;
    let model = simple_linear();
    let w = model.workload();
    let mrm = MarkovRewardModel::new(w.ctmc().clone(), w.currents_amps()).unwrap();
    // Mean consumed charge at t = 12 h.
    let t = Time::from_hours(12.0);
    let mean_consumed = mrm
        .expected_accumulated_reward(w.initial(), t.as_seconds(), 1e-10)
        .unwrap();
    // Steady-state mean current: 0.5·8 + 0.25·200 + 0.25·0 = 54 mA; the
    // transient mean differs only slightly after 12 h.
    let expected = 0.054 * t.as_seconds();
    assert!(
        (mean_consumed - expected).abs() < 0.03 * expected,
        "consumed {mean_consumed} As vs steady-state estimate {expected} As"
    );
    // And Monte Carlo agrees on the battery-empty probability at the
    // matching capacity threshold.
    let study = lifetime_study(&model, Time::from_hours(30.0), 1000, 79).unwrap();
    let exact = exact_linear_curve(&model, &[t]).unwrap()[0].1;
    let sim = study.empty_probability(t.as_seconds());
    assert!((exact - sim).abs() < 0.05, "exact {exact} vs sim {sim}");
}

/// On/off model with two wells: simulation against a fine discretisation
/// (Fig. 8's message — the approximation approaches simulation from the
/// pessimistic side as Δ shrinks).
#[test]
fn on_off_two_wells_methods_agree_roughly() {
    let w = Workload::on_off_erlang(Frequency::from_hertz(1.0), 1, Current::from_amps(0.96))
        .unwrap();
    let model = KibamRm::new(
        w,
        Charge::from_amp_seconds(7200.0),
        0.625,
        Rate::per_second(4.5e-5),
    )
    .unwrap();
    let study = lifetime_study(&model, Time::from_seconds(25_000.0), 800, 80).unwrap();
    let opts = DiscretisationOptions::with_delta(Charge::from_amp_seconds(25.0));
    let disc = DiscretisedModel::build(&model, &opts).unwrap();
    // Compare medians rather than pointwise values: the approximation of
    // a near-deterministic CDF is smeared (paper's own observation on
    // Figs. 7–8), but its centre must be right.
    let times: Vec<Time> =
        (0..=100).map(|i| Time::from_seconds(10_000.0 + i as f64 * 100.0)).collect();
    let curve = disc.empty_probability_curve(&times).unwrap();
    let median_approx = curve
        .points
        .iter()
        .find(|(_, p)| *p >= 0.5)
        .map(|(t, _)| *t)
        .expect("median reached");
    let median_sim = study.lifetime_quantile(0.5).unwrap();
    let rel = (median_approx - median_sim).abs() / median_sim;
    assert!(
        rel < 0.05,
        "median: approx {median_approx} vs sim {median_sim} (rel {rel})"
    );
}
