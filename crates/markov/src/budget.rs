//! Cooperative cancellation for the long-running engines.
//!
//! A [`Budget`] is a shared token — an atomic cancel flag plus an
//! optional wall-clock deadline — that the iteration-granular hot loops
//! check cooperatively: the uniformisation sweep in [`crate::transient`]
//! once per matrix–vector product, and the Monte Carlo batch loop in the
//! `sim` crate once per batch checkpoint. When a check fails the engine
//! abandons the remaining work and surfaces
//! [`MarkovError::DeadlineExceeded`] carrying the work it completed, so
//! callers can report progress or fall back to a degraded answer.
//!
//! Cancellation is *cooperative*: an engine is interrupted only at its
//! check points, never mid-product, so a cancelled solve leaves every
//! shared structure (e.g. [`crate::transient::CurveCache`]) in the same
//! consistent state a shorter solve would have — re-running the same
//! solve to completion is bit-identical to never having cancelled.
//!
//! The default token is [`Budget::unlimited`], whose check compiles down
//! to a single branch on a `None` — the uncancelled hot path pays no
//! atomic load, no clock read, and performs exactly the same floating
//! point work in the same order as an unbudgeted engine.

use crate::MarkovError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shared state behind an active budget.
#[derive(Debug)]
struct BudgetState {
    /// Set by [`Budget::cancel`]; checked first (cheapest).
    cancelled: AtomicBool,
    /// Wall-clock point after which every check fails.
    deadline: Option<Instant>,
    /// Deterministic test mode: number of further checks allowed to
    /// pass. `u64::MAX` disables the counter (the production setting).
    checks_left: AtomicU64,
}

/// A shared cancellation token with an optional deadline, checked at
/// iteration granularity by the long-running engines.
///
/// `Clone` is O(1) and shares the underlying state: clone a budget into
/// a worker, keep the original, and [`cancel`](Budget::cancel) from
/// either side.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    state: Option<Arc<BudgetState>>,
}

impl Budget {
    /// A budget that never expires. Checks against it are a single
    /// branch — this is the token every non-budgeted entry point uses,
    /// keeping the uncancelled hot path overhead-free.
    pub fn unlimited() -> Self {
        Budget { state: None }
    }

    /// A cancellable budget with no deadline: fails only after
    /// [`cancel`](Budget::cancel) is called (from any clone).
    pub fn cancellable() -> Self {
        Budget {
            state: Some(Arc::new(BudgetState {
                cancelled: AtomicBool::new(false),
                deadline: None,
                checks_left: AtomicU64::new(u64::MAX),
            })),
        }
    }

    /// A budget that expires `timeout` from now (and is additionally
    /// cancellable).
    pub fn with_deadline(timeout: Duration) -> Self {
        Budget::with_deadline_at(Instant::now() + timeout)
    }

    /// A budget that expires at `deadline` (and is additionally
    /// cancellable). Sharing one instant across retry attempts keeps
    /// the *request's* deadline fixed while individual attempts come
    /// and go.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Budget {
            state: Some(Arc::new(BudgetState {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                checks_left: AtomicU64::new(u64::MAX),
            })),
        }
    }

    /// Deterministic test budget: the first `k` checks pass, every
    /// later one fails. This is how the cancellation-correctness tests
    /// interrupt a solve at exactly iteration `k` without racing a
    /// clock.
    pub fn cancelled_after_checks(k: u64) -> Self {
        Budget {
            state: Some(Arc::new(BudgetState {
                cancelled: AtomicBool::new(false),
                deadline: None,
                checks_left: AtomicU64::new(k),
            })),
        }
    }

    /// Whether this is the no-op [`unlimited`](Budget::unlimited) token.
    pub fn is_unlimited(&self) -> bool {
        self.state.is_none()
    }

    /// Requests cancellation: every subsequent check on any clone of
    /// this budget fails. No-op on an unlimited budget.
    pub fn cancel(&self) {
        if let Some(state) = &self.state {
            state.cancelled.store(true, Ordering::Release);
        }
    }

    /// The configured deadline, when one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.state.as_ref().and_then(|s| s.deadline)
    }

    /// Whether the budget is already exhausted, without consuming a
    /// deterministic check. Callers use this to fail fast before
    /// starting any work at all.
    pub fn is_exhausted(&self) -> bool {
        let Some(state) = &self.state else {
            return false;
        };
        if state.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if state.checks_left.load(Ordering::Relaxed) == 0 {
            return true;
        }
        state.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// One cooperative check point. Returns
    /// [`MarkovError::DeadlineExceeded`] — reporting `completed` units
    /// of work done so far — when the budget is cancelled, past its
    /// deadline, or out of deterministic checks.
    ///
    /// # Errors
    ///
    /// [`MarkovError::DeadlineExceeded`] as described above.
    #[inline]
    pub fn check(&self, completed: usize) -> Result<(), MarkovError> {
        let Some(state) = &self.state else {
            return Ok(());
        };
        self.check_active(state, completed)
    }

    /// The slow path of [`check`](Budget::check), kept out of line so
    /// the unlimited fast path stays a single branch.
    #[cold]
    fn check_active(&self, state: &BudgetState, completed: usize) -> Result<(), MarkovError> {
        if state.cancelled.load(Ordering::Acquire) {
            return Err(MarkovError::DeadlineExceeded { completed });
        }
        // Deterministic counter: decrement one permit per check; a
        // budget out of permits stays exhausted (saturating at zero).
        if state
            .checks_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
                left.checked_sub(1)
            })
            .is_err()
        {
            return Err(MarkovError::DeadlineExceeded { completed });
        }
        if state.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(MarkovError::DeadlineExceeded { completed });
        }
        Ok(())
    }
}

// Budgets cross thread boundaries by design: the service hands one to a
// solve running on another thread and cancels it from the caller's.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Budget>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fails() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.is_exhausted());
        for i in 0..1000 {
            assert!(b.check(i).is_ok());
        }
        b.cancel(); // no-op
        assert!(b.check(0).is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let b = Budget::cancellable();
        let clone = b.clone();
        assert!(b.check(0).is_ok());
        clone.cancel();
        assert!(b.is_exhausted());
        assert_eq!(
            b.check(7),
            Err(MarkovError::DeadlineExceeded { completed: 7 })
        );
    }

    #[test]
    fn deterministic_checks_expire_exactly_at_k() {
        let b = Budget::cancelled_after_checks(3);
        for i in 0..3 {
            assert!(b.check(i).is_ok(), "check {i} should pass");
        }
        assert!(b.is_exhausted());
        assert_eq!(
            b.check(3),
            Err(MarkovError::DeadlineExceeded { completed: 3 })
        );
        // Stays exhausted (no counter wrap-around).
        assert!(b.check(4).is_err());
    }

    #[test]
    fn expired_deadline_fails_immediately() {
        let b = Budget::with_deadline_at(Instant::now() - Duration::from_millis(1));
        assert!(b.is_exhausted());
        assert_eq!(
            b.check(0),
            Err(MarkovError::DeadlineExceeded { completed: 0 })
        );
    }

    #[test]
    fn future_deadline_passes_until_reached() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!b.is_exhausted());
        assert!(b.check(0).is_ok());
        assert!(b.deadline().is_some());
    }

    #[test]
    fn is_exhausted_does_not_consume_checks() {
        let b = Budget::cancelled_after_checks(1);
        for _ in 0..10 {
            assert!(!b.is_exhausted());
        }
        assert!(b.check(0).is_ok());
        assert!(b.is_exhausted());
    }
}
