//! Transient analysis by uniformisation.
//!
//! The paper's algorithm (§5) reduces the battery-lifetime distribution to
//! transient state probabilities of a derived CTMC:
//! `π(t) = Σ_n ψ(n; νt) · α Pⁿ` with `P = I + Q/ν`. Two engines are
//! provided:
//!
//! * [`transient_distribution`] — the full distribution at one time point;
//! * [`measure_curve`] — a whole curve `t ↦ m·π(t)` for a fixed linear
//!   functional `m` (e.g. the indicator of the battery-empty states).
//!
//! The curve engine exploits that the iterates `v_n = α Pⁿ` do **not**
//! depend on `t`: one sweep of sparse matrix–vector products up to the
//! largest right truncation point serves every requested time point, after
//! which each point only needs its own Poisson weights. It also detects
//! stationarity of the iterate sequence (all interesting chains here are
//! absorbing) and stops multiplying once `v_n` has converged.
//!
//! Both engines run on the zero-respawn hot path: `Pᵀ` is emitted
//! directly from the generator ([`Ctmc::uniformised_transposed`], no
//! `uniformised()` + `transpose()` round-trip), the worker pool is
//! spawned **once per call** and fed nnz-balanced row blocks
//! ([`crate::pool::SpmvPool`]), the curve engine's per-iteration measure
//! is folded into the product (fused SpMV+dot), and Poisson windows for
//! the individual time points reuse one Fox–Glynn workspace
//! ([`crate::foxglynn::FoxGlynnCache`]).

use crate::ctmc::Ctmc;
use crate::foxglynn::FoxGlynnCache;
use crate::pool::SpmvPool;
use crate::MarkovError;

/// Options for the uniformisation engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Poisson truncation error bound (total over both tails).
    pub epsilon: f64,
    /// Uniformisation rate is `factor · max_i q_i`; must be ≥ 1. Values
    /// slightly above 1 keep self-loop probability on the fastest states,
    /// damping periodicity.
    pub uniformisation_factor: f64,
    /// Consecutive-iterate sup-norm threshold for steady-state detection;
    /// set to 0 to disable.
    pub steady_state_tolerance: f64,
    /// Worker threads for the sparse matrix–vector products. The workers
    /// are spawned once per solve (persistent pool), not per product;
    /// `<= 1` keeps everything on the calling thread.
    pub threads: usize,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            epsilon: 1e-10,
            uniformisation_factor: 1.02,
            steady_state_tolerance: 1e-14,
            threads: 1,
        }
    }
}

/// Result of [`transient_distribution_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSolution {
    /// `π(t)`, the state distribution at the requested time.
    pub distribution: Vec<f64>,
    /// Number of matrix–vector products performed.
    pub iterations: usize,
    /// The uniformisation rate ν that was used.
    pub nu: f64,
}

/// A computed curve `t ↦ m·π(t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSolution {
    /// `(t, value)` pairs in the caller's requested order.
    pub points: Vec<(f64, f64)>,
    /// Number of matrix–vector products performed (the paper's
    /// "iterations").
    pub iterations: usize,
    /// Iteration at which the iterate sequence was detected stationary,
    /// when steady-state detection fired.
    pub converged_at: Option<usize>,
    /// The uniformisation rate ν.
    pub nu: f64,
}

/// Computes `π(t)` from initial distribution `alpha` with default options.
///
/// # Errors
///
/// Propagates validation errors for `alpha`, negative `t`, or Fox–Glynn
/// failures.
pub fn transient_distribution(
    ctmc: &Ctmc,
    alpha: &[f64],
    t: f64,
    epsilon: f64,
) -> Result<TransientSolution, MarkovError> {
    let opts = TransientOptions {
        epsilon,
        ..Default::default()
    };
    transient_distribution_with(ctmc, alpha, t, &opts)
}

/// Computes `π(t)` with explicit [`TransientOptions`].
///
/// # Errors
///
/// [`MarkovError::InvalidDistribution`] for a bad `alpha`;
/// [`MarkovError::InvalidArgument`] for negative/non-finite `t`.
pub fn transient_distribution_with(
    ctmc: &Ctmc,
    alpha: &[f64],
    t: f64,
    opts: &TransientOptions,
) -> Result<TransientSolution, MarkovError> {
    ctmc.check_distribution(alpha)?;
    if !t.is_finite() || t < 0.0 {
        return Err(MarkovError::InvalidArgument(format!(
            "time must be finite and non-negative, got {t}"
        )));
    }
    // Pᵀ straight from the generator: no P temporary, no transpose copy.
    let (pt, nu) = ctmc.uniformised_transposed(opts.uniformisation_factor)?;
    if nu == 0.0 || t == 0.0 {
        return Ok(TransientSolution {
            distribution: alpha.to_vec(),
            iterations: 0,
            nu,
        });
    }
    let mut fg = FoxGlynnCache::new();
    fg.compute(nu * t, opts.epsilon)?;

    // One pool for the whole solve: workers spawn here, are fed one
    // nnz-balanced row block per iteration, and exit on drop.
    let pool = SpmvPool::new(effective_threads(opts.threads, &pt));
    let partition = pt.nnz_partition(pool.threads());

    let n_states = ctmc.n_states();
    let mut v = alpha.to_vec();
    let mut next = vec![0.0; n_states];
    let mut out = vec![0.0; n_states];
    let mut iterations = 0;
    if fg.left() == 0 {
        accumulate(&mut out, &v, fg.weight(0));
    }
    for n in 1..=fg.right() {
        // Fused product + steady-state sup-norm: no separate O(n)
        // convergence sweep over the iterate.
        let sup = pool.mul_vec_sup(&pt, &partition, &v, &mut next)?;
        std::mem::swap(&mut v, &mut next);
        iterations += 1;
        let wn = fg.weight(n);
        if wn > 0.0 {
            accumulate(&mut out, &v, wn);
        }
        if opts.steady_state_tolerance > 0.0 && sup < opts.steady_state_tolerance {
            // Iterates are stationary: the remaining Poisson mass applies
            // to the converged vector.
            let remaining: f64 = (n + 1..=fg.right()).map(|m| fg.weight(m)).sum();
            accumulate(&mut out, &v, remaining);
            break;
        }
    }
    Ok(TransientSolution {
        distribution: out,
        iterations,
        nu,
    })
}

/// Computes the curve `t ↦ Σ_i measure[i]·π_i(t)` over all `times` with a
/// single sweep of matrix–vector products.
///
/// `measure` is any linear functional on the state space: the indicator of
/// the battery-empty states yields `Pr[battery empty at t]`, a reward
/// vector yields expected instantaneous reward, etc.
///
/// # Errors
///
/// [`MarkovError::InvalidDistribution`] for a bad `alpha`;
/// [`MarkovError::InvalidArgument`] for an empty/mismatched `measure` or
/// negative times.
pub fn measure_curve(
    ctmc: &Ctmc,
    alpha: &[f64],
    times: &[f64],
    measure: &[f64],
    opts: &TransientOptions,
) -> Result<CurveSolution, MarkovError> {
    ctmc.check_distribution(alpha)?;
    if measure.len() != ctmc.n_states() {
        return Err(MarkovError::InvalidArgument(format!(
            "measure has {} entries but chain has {} states",
            measure.len(),
            ctmc.n_states()
        )));
    }
    if times.is_empty() {
        return Err(MarkovError::InvalidArgument(
            "no time points requested".into(),
        ));
    }
    if times.iter().any(|&t| !t.is_finite() || t < 0.0) {
        return Err(MarkovError::InvalidArgument(
            "times must be finite and ≥ 0".into(),
        ));
    }

    // Pᵀ straight from the generator: no P temporary, no transpose copy.
    let (pt, nu) = ctmc.uniformised_transposed(opts.uniformisation_factor)?;
    let t_max = times.iter().cloned().fold(0.0, f64::max);
    if nu == 0.0 || t_max == 0.0 {
        let value = dot(alpha, measure);
        return Ok(CurveSolution {
            points: times.iter().map(|&t| (t, value)).collect(),
            iterations: 0,
            converged_at: None,
            nu,
        });
    }
    // One Fox–Glynn workspace serves every window: sized once at
    // λ_max = ν·t_max (whose right point bounds all smaller windows),
    // then re-filled per time point with no further allocation.
    let mut fg = FoxGlynnCache::new();
    fg.compute(nu * t_max, opts.epsilon)?;
    let n_max = fg.right();

    // One pool for the whole sweep: workers spawn here — not once per
    // product — and each owns an nnz-balanced row block.
    let pool = SpmvPool::new(effective_threads(opts.threads, &pt));
    let partition = pt.nnz_partition(pool.threads());

    // Sweep: cache s_n = measure·v_n for n = 0..=n_max (or until the
    // iterates converge). The fused kernel returns measure·v_{n+1} from
    // the same pass that computes v_{n+1}.
    let mut s = Vec::with_capacity(n_max + 1);
    let mut v = alpha.to_vec();
    let mut next = vec![0.0; ctmc.n_states()];
    s.push(dot(&v, measure));
    let mut converged_at = None;
    let mut iterations = 0;
    for n in 1..=n_max {
        // One fully fused pass: v_{n+1} = Pᵀ·v_n, s_{n+1} = measure·v_{n+1}
        // and the steady-state sup-norm |v_{n+1} − v_n|_∞, with no
        // separate dot or convergence sweep over the iterate.
        let (s_n, sup) = pool.mul_vec_dot_sup(&pt, &partition, &v, &mut next, measure)?;
        std::mem::swap(&mut v, &mut next);
        iterations += 1;
        s.push(s_n);
        if opts.steady_state_tolerance > 0.0 && sup < opts.steady_state_tolerance {
            converged_at = Some(n);
            break;
        }
    }
    let s_last = *s.last().expect("at least one cached value");

    // Each time point mixes the cached scalars with its own Poisson
    // window, derived into the shared workspace.
    let mut points = Vec::with_capacity(times.len());
    for &t in times {
        if t == 0.0 {
            points.push((t, s[0]));
            continue;
        }
        fg.compute(nu * t, opts.epsilon)?;
        let mut value = 0.0;
        for (i, &wi) in fg.weights().iter().enumerate() {
            let n = fg.left() + i;
            value += wi * s.get(n).copied().unwrap_or(s_last);
        }
        points.push((t, value));
    }
    Ok(CurveSolution {
        points,
        iterations,
        converged_at,
        nu,
    })
}

/// Caps the worker count at something useful for the matrix: tiny chains
/// never leave the calling thread (pool setup would dominate), matching
/// the old spawn-path threshold.
fn effective_threads(threads: usize, matrix: &crate::sparse::CsrMatrix) -> usize {
    if matrix.rows() < crate::sparse::PARALLEL_SPMV_MIN_ROWS {
        1
    } else {
        threads
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn accumulate(out: &mut [f64], v: &[f64], w: f64) {
    for (o, &x) in out.iter_mut().zip(v) {
        *o += w * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    /// Two-state chain with closed-form transient solution.
    fn two_state(a: f64, b: f64) -> Ctmc {
        let mut builder = CtmcBuilder::new(2);
        builder.rate(0, 1, a).unwrap();
        builder.rate(1, 0, b).unwrap();
        builder.build().unwrap()
    }

    fn closed_form_p00(a: f64, b: f64, t: f64) -> f64 {
        (b + a * (-(a + b) * t).exp()) / (a + b)
    }

    #[test]
    fn matches_two_state_closed_form() {
        let (a, b) = (2.0, 3.0);
        let chain = two_state(a, b);
        for &t in &[0.0, 0.1, 0.5, 1.0, 5.0] {
            let sol = transient_distribution(&chain, &[1.0, 0.0], t, 1e-13).unwrap();
            let expect = closed_form_p00(a, b, t);
            assert!(
                (sol.distribution[0] - expect).abs() < 1e-10,
                "t = {t}: {} vs {expect}",
                sol.distribution[0]
            );
            let total: f64 = sol.distribution.iter().sum();
            assert!((total - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn matches_dense_matrix_exponential() {
        // 4-state random-ish generator vs e^{Qt}.
        let mut b = CtmcBuilder::new(4);
        let rates = [
            (0, 1, 1.2),
            (0, 3, 0.4),
            (1, 2, 2.3),
            (1, 0, 0.3),
            (2, 3, 1.7),
            (2, 1, 0.5),
            (3, 0, 0.9),
        ];
        for (f, t, r) in rates {
            b.rate(f, t, r).unwrap();
        }
        let chain = b.build().unwrap();
        let t = 0.8;
        let expm = chain.generator_dense().scale(t).expm().unwrap();
        let alpha = [0.25, 0.25, 0.25, 0.25];
        let sol = transient_distribution(&chain, &alpha, t, 1e-13).unwrap();
        let expect = expm.vecmul(&alpha).unwrap();
        for i in 0..4 {
            assert!((sol.distribution[i] - expect[i]).abs() < 1e-9, "state {i}");
        }
    }

    #[test]
    fn absorbing_chain_accumulates_mass() {
        // 0 → 1 (absorbing) at rate 1: π₁(t) = 1 − e^{-t}.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let chain = b.build().unwrap();
        for &t in &[0.5, 1.0, 3.0, 10.0] {
            let sol = transient_distribution(&chain, &[1.0, 0.0], t, 1e-13).unwrap();
            assert!((sol.distribution[1] - (1.0 - (-t).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn all_absorbing_chain_is_constant() {
        let chain = CtmcBuilder::new(3).build().unwrap();
        let sol = transient_distribution(&chain, &[0.2, 0.3, 0.5], 7.0, 1e-12).unwrap();
        assert_eq!(sol.distribution, vec![0.2, 0.3, 0.5]);
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.nu, 0.0);
    }

    #[test]
    fn zero_time_returns_alpha() {
        let chain = two_state(1.0, 1.0);
        let sol = transient_distribution(&chain, &[0.4, 0.6], 0.0, 1e-12).unwrap();
        assert_eq!(sol.distribution, vec![0.4, 0.6]);
    }

    #[test]
    fn input_validation() {
        let chain = two_state(1.0, 1.0);
        assert!(transient_distribution(&chain, &[0.4, 0.4], 1.0, 1e-12).is_err());
        assert!(transient_distribution(&chain, &[1.0, 0.0], -1.0, 1e-12).is_err());
        assert!(transient_distribution(&chain, &[1.0, 0.0], f64::NAN, 1e-12).is_err());
    }

    #[test]
    fn curve_matches_pointwise_solutions() {
        let chain = two_state(2.0, 3.0);
        let times = [0.0, 0.2, 0.5, 1.3, 4.0];
        let measure = [1.0, 0.0]; // Pr[in state 0]
        let curve = measure_curve(
            &chain,
            &[1.0, 0.0],
            &times,
            &measure,
            &TransientOptions::default(),
        )
        .unwrap();
        for (t, value) in &curve.points {
            let expect = closed_form_p00(2.0, 3.0, *t);
            assert!(
                (value - expect).abs() < 1e-9,
                "t = {t}: {value} vs {expect}"
            );
        }
        // One sweep serves all points: iterations bounded by the largest t.
        let single = transient_distribution(&chain, &[1.0, 0.0], 4.0, 1e-10).unwrap();
        assert!(curve.iterations <= single.iterations + 5);
    }

    #[test]
    fn curve_validation_errors() {
        let chain = two_state(1.0, 1.0);
        let opts = TransientOptions::default();
        assert!(measure_curve(&chain, &[1.0, 0.0], &[], &[1.0, 0.0], &opts).is_err());
        assert!(measure_curve(&chain, &[1.0, 0.0], &[1.0], &[1.0], &opts).is_err());
        assert!(measure_curve(&chain, &[1.0, 0.0], &[-1.0], &[1.0, 0.0], &opts).is_err());
        assert!(measure_curve(&chain, &[0.9, 0.0], &[1.0], &[1.0, 0.0], &opts).is_err());
    }

    #[test]
    fn steady_state_detection_saves_iterations() {
        // Strongly absorbing chain: everything is absorbed long before
        // t = 1000, so the sweep should stop early.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 5.0).unwrap();
        let chain = b.build().unwrap();
        let opts = TransientOptions {
            steady_state_tolerance: 1e-13,
            ..Default::default()
        };
        let curve = measure_curve(&chain, &[1.0, 0.0], &[1000.0], &[0.0, 1.0], &opts).unwrap();
        assert!(curve.converged_at.is_some());
        // νt ≈ 5100, but convergence must kick in within a few dozen steps.
        assert!(curve.iterations < 200, "iterations = {}", curve.iterations);
        assert!((curve.points[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn curve_handles_unsorted_times() {
        let chain = two_state(2.0, 3.0);
        let times = [1.0, 0.1, 0.5];
        let curve = measure_curve(
            &chain,
            &[1.0, 0.0],
            &times,
            &[1.0, 0.0],
            &TransientOptions::default(),
        )
        .unwrap();
        assert_eq!(curve.points.len(), 3);
        for (i, (t, v)) in curve.points.iter().enumerate() {
            assert_eq!(*t, times[i]);
            assert!((v - closed_form_p00(2.0, 3.0, *t)).abs() < 1e-9);
        }
    }

    #[test]
    fn distribution_stays_stochastic_under_uniformisation_factor_one() {
        let chain = two_state(1.0, 1.0);
        let opts = TransientOptions {
            uniformisation_factor: 1.0,
            ..Default::default()
        };
        let sol = transient_distribution_with(&chain, &[1.0, 0.0], 2.5, &opts).unwrap();
        let total: f64 = sol.distribution.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert!((sol.distribution[0] - closed_form_p00(1.0, 1.0, 2.5)).abs() < 1e-9);
    }
}
