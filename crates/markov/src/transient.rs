//! Transient analysis by uniformisation.
//!
//! The paper's algorithm (§5) reduces the battery-lifetime distribution to
//! transient state probabilities of a derived CTMC:
//! `π(t) = Σ_n ψ(n; νt) · α Pⁿ` with `P = I + Q/ν`. Two engines are
//! provided:
//!
//! * [`transient_distribution`] — the full distribution at one time point;
//! * [`measure_curve`] — a whole curve `t ↦ m·π(t)` for a fixed linear
//!   functional `m` (e.g. the indicator of the battery-empty states).
//!
//! The curve engine exploits that the iterates `v_n = α Pⁿ` do **not**
//! depend on `t`: one sweep of sparse matrix–vector products up to the
//! largest right truncation point serves every requested time point, after
//! which each point only needs its own Poisson weights. It also detects
//! stationarity of the iterate sequence (all interesting chains here are
//! absorbing) and stops multiplying once `v_n` has converged.
//!
//! Both engines run on the zero-respawn hot path: `Pᵀ` is emitted
//! directly from the generator — in **banded (DIA) form** when the chain
//! is a lattice ([`Ctmc::uniformised_transposed_auto`]), generic CSR
//! otherwise — the worker pool is spawned **once per call** and fed row
//! blocks ([`crate::pool::SpmvPool`], which dispatches on the matrix
//! representation), the curve engine's per-iteration measure is folded
//! into the product (fused SpMV+dot), and Poisson windows for the
//! individual time points reuse one Fox–Glynn workspace
//! ([`crate::foxglynn::FoxGlynnCache`]), recomputed only when the time
//! point actually changes (the requested times are visited in sorted
//! order, so duplicates are free).
//!
//! # The active window
//!
//! On banded chains the engines additionally track the contiguous
//! support interval of the iterate. `v_0 = α` is a point mass at the
//! full-charge state; each product can widen the support by at most the
//! extreme diagonal offsets ([`crate::banded::BandedMatrix::grow_window`]), and the
//! tiny probabilities at the window edges are trimmed with **explicit
//! deficit accounting**: the total trimmed mass is capped so that,
//! together with the Fox–Glynn truncation (which gets the other half of
//! the ε budget), the result stays within the requested tolerance.
//! Early iterations therefore touch `O(bandwidth · |support|)` entries
//! instead of all of them — for fine-`Δ` grids the overwhelming
//! majority of the state space is never visited.

use crate::banded::TransitionMatrix;
use crate::budget::Budget;
use crate::ctmc::Ctmc;
use crate::foxglynn::FoxGlynnCache;
use crate::pool::SpmvPool;
use crate::sparse::PanelColumn;
use crate::MarkovError;
use std::ops::Range;

/// Which storage format the transient engines iterate with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Representation {
    /// Probe the chain's structure and pick banded when profitable
    /// (the default; lattice chains go banded, unstructured ones CSR).
    #[default]
    Auto,
    /// Force generic CSR (the pre-banded engine, kept as the reference
    /// and for benchmark baselines).
    Csr,
    /// Force banded storage even when the profitability heuristic says
    /// otherwise (benchmarks; dense/unstructured chains pay for it).
    Banded,
}

/// Options for the uniformisation engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Total truncation error bound: covers the Poisson tails, and —
    /// when the active window is on — the trimmed window mass too (the
    /// budget is split evenly between the two sources).
    pub epsilon: f64,
    /// Uniformisation rate is `factor · max_i q_i`; must be ≥ 1. Values
    /// slightly above 1 keep self-loop probability on the fastest states,
    /// damping periodicity.
    pub uniformisation_factor: f64,
    /// Consecutive-iterate sup-norm threshold for steady-state detection;
    /// set to 0 to disable.
    pub steady_state_tolerance: f64,
    /// Worker threads for the sparse matrix–vector products. The workers
    /// are spawned once per solve (persistent pool), not per product;
    /// `<= 1` keeps everything on the calling thread.
    pub threads: usize,
    /// Storage format selection for the iteration matrix.
    pub representation: Representation,
    /// Restrict each product to the live support interval of the iterate
    /// (banded representation only; ignored for CSR). Costs half the ε
    /// budget, saves the untouched bulk of the state space.
    pub active_window: bool,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            epsilon: 1e-10,
            uniformisation_factor: 1.02,
            steady_state_tolerance: 1e-14,
            threads: 1,
            representation: Representation::Auto,
            active_window: true,
        }
    }
}

/// Result of [`transient_distribution_with`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSolution {
    /// `π(t)`, the state distribution at the requested time.
    pub distribution: Vec<f64>,
    /// Number of matrix–vector products performed.
    pub iterations: usize,
    /// The uniformisation rate ν that was used.
    pub nu: f64,
    /// Matrix slots touched across all products (the work metric the
    /// active window shrinks).
    pub touched_entries: u64,
    /// Probability mass trimmed at the window edges (0 without the
    /// active window); bounded by half of `epsilon`.
    pub window_deficit: f64,
}

/// A computed curve `t ↦ m·π(t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSolution {
    /// `(t, value)` pairs in the caller's requested order.
    pub points: Vec<(f64, f64)>,
    /// Number of matrix–vector products performed (the paper's
    /// "iterations").
    pub iterations: usize,
    /// Iteration at which the iterate sequence was detected stationary,
    /// when steady-state detection fired.
    pub converged_at: Option<usize>,
    /// The uniformisation rate ν.
    pub nu: f64,
    /// Matrix slots touched across all products (the work metric the
    /// active window shrinks).
    pub touched_entries: u64,
    /// Probability mass trimmed at the window edges (0 without the
    /// active window); bounded so the curve error stays within ε.
    pub window_deficit: f64,
}

/// Computes `π(t)` from initial distribution `alpha` with default options.
///
/// # Errors
///
/// Propagates validation errors for `alpha`, negative `t`, or Fox–Glynn
/// failures.
pub fn transient_distribution(
    ctmc: &Ctmc,
    alpha: &[f64],
    t: f64,
    epsilon: f64,
) -> Result<TransientSolution, MarkovError> {
    let opts = TransientOptions {
        epsilon,
        ..Default::default()
    };
    transient_distribution_with(ctmc, alpha, t, &opts)
}

/// Builds the iteration matrix `Pᵀ` in the representation the options
/// ask for.
fn build_transposed(
    ctmc: &Ctmc,
    opts: &TransientOptions,
) -> Result<(TransitionMatrix, f64), MarkovError> {
    match opts.representation {
        Representation::Auto => ctmc.uniformised_transposed_auto(opts.uniformisation_factor),
        Representation::Csr => {
            let (pt, nu) = ctmc.uniformised_transposed(opts.uniformisation_factor)?;
            Ok((TransitionMatrix::Csr(pt), nu))
        }
        Representation::Banded => {
            let (pt, nu) = ctmc.uniformised_transposed_banded(opts.uniformisation_factor)?;
            Ok((TransitionMatrix::Banded(pt), nu))
        }
    }
}

/// How the ε budget is split: the Fox–Glynn share and the total mass the
/// window trimming may discard. Without an active window the Poisson
/// tails keep the whole budget, exactly as before.
fn split_epsilon(epsilon: f64, windowed: bool) -> (f64, f64) {
    if windowed {
        (epsilon / 2.0, epsilon / 2.0)
    } else {
        (epsilon, 0.0)
    }
}

/// Computes `π(t)` with explicit [`TransientOptions`].
///
/// # Errors
///
/// [`MarkovError::InvalidDistribution`] for a bad `alpha`;
/// [`MarkovError::InvalidArgument`] for negative/non-finite `t`.
pub fn transient_distribution_with(
    ctmc: &Ctmc,
    alpha: &[f64],
    t: f64,
    opts: &TransientOptions,
) -> Result<TransientSolution, MarkovError> {
    transient_distribution_budgeted(ctmc, alpha, t, opts, &Budget::unlimited())
}

/// [`transient_distribution_with`] under a cooperative [`Budget`]: the
/// token is checked once per matrix–vector product, and an exhausted
/// budget aborts the sweep with [`MarkovError::DeadlineExceeded`]
/// carrying the iterations completed. With [`Budget::unlimited`] the
/// check is a single branch and the solve is identical to the
/// unbudgeted entry point, bit for bit.
///
/// # Errors
///
/// As for [`transient_distribution_with`], plus
/// [`MarkovError::DeadlineExceeded`] when the budget expires.
pub fn transient_distribution_budgeted(
    ctmc: &Ctmc,
    alpha: &[f64],
    t: f64,
    opts: &TransientOptions,
    budget: &Budget,
) -> Result<TransientSolution, MarkovError> {
    ctmc.check_distribution(alpha)?;
    if !t.is_finite() || t < 0.0 {
        return Err(MarkovError::InvalidArgument(format!(
            "time must be finite and non-negative, got {t}"
        )));
    }
    // Pᵀ straight from the generator: banded for lattice chains, CSR
    // otherwise — never a P temporary, never a transpose copy.
    let (pt, nu) = build_transposed(ctmc, opts)?;
    if nu == 0.0 || t == 0.0 {
        return Ok(TransientSolution {
            distribution: alpha.to_vec(),
            iterations: 0,
            nu,
            touched_entries: 0,
            window_deficit: 0.0,
        });
    }
    let windowed = opts.active_window && pt.as_banded().is_some();
    let (fg_epsilon, trim_budget) = split_epsilon(opts.epsilon, windowed);
    let mut fg = FoxGlynnCache::new();
    fg.compute(nu * t, fg_epsilon)?;

    // One pool for the whole solve: workers spawn here, are fed one
    // row block per iteration, and exit on drop.
    let pool = SpmvPool::new(effective_threads(opts.threads, pt.rows()));

    let n_states = ctmc.n_states();
    let mut v = alpha.to_vec();
    let mut next = vec![0.0; n_states];
    let mut out = vec![0.0; n_states];
    let mut iterations = 0;
    let mut touched: u64 = 0;
    let mut deficit = 0.0;
    if fg.left() == 0 {
        accumulate(&mut out, &v, fg.weight(0), &(0..n_states));
    }
    if let Some(band) = if windowed { pt.as_banded() } else { None } {
        // Active-window sweep: restrict every product to the live rows.
        let allowance = trim_budget / (fg.right() as f64 + 1.0);
        let mut v_win = support_range(&v);
        let mut next_win = 0..0;
        for n in 1..=fg.right() {
            budget.check(iterations)?;
            let grown = band.grow_window(&v_win);
            zero_outside(&mut next, &next_win, &grown);
            let sup = pool.mul_vec_sup_window(band, &v, &mut next, grown.clone())?;
            touched += band.entries_in(&grown) as u64;
            std::mem::swap(&mut v, &mut next);
            next_win = std::mem::replace(&mut v_win, grown);
            iterations += 1;
            let wn = fg.weight(n);
            if wn > 0.0 {
                accumulate(&mut out, &v, wn, &v_win);
            }
            if opts.steady_state_tolerance > 0.0 && sup < opts.steady_state_tolerance {
                let remaining: f64 = (n + 1..=fg.right()).map(|m| fg.weight(m)).sum();
                accumulate(&mut out, &v, remaining, &v_win);
                break;
            }
            deficit += trim_window(&mut v, &mut v_win, allowance);
        }
    } else {
        let partition = pt.as_ref().partition(pool.threads());
        let per_product = pt.entries_per_product() as u64;
        for n in 1..=fg.right() {
            budget.check(iterations)?;
            // Fused product + steady-state sup-norm: no separate O(n)
            // convergence sweep over the iterate.
            let sup = pool.mul_vec_sup(&pt, &partition, &v, &mut next)?;
            touched += per_product;
            std::mem::swap(&mut v, &mut next);
            iterations += 1;
            let wn = fg.weight(n);
            if wn > 0.0 {
                accumulate(&mut out, &v, wn, &(0..n_states));
            }
            if opts.steady_state_tolerance > 0.0 && sup < opts.steady_state_tolerance {
                // Iterates are stationary: the remaining Poisson mass
                // applies to the converged vector.
                let remaining: f64 = (n + 1..=fg.right()).map(|m| fg.weight(m)).sum();
                accumulate(&mut out, &v, remaining, &(0..n_states));
                break;
            }
        }
    }
    Ok(TransientSolution {
        distribution: out,
        iterations,
        nu,
        touched_entries: touched,
        window_deficit: deficit,
    })
}

/// Computes the curve `t ↦ Σ_i measure[i]·π_i(t)` over all `times` with a
/// single sweep of matrix–vector products.
///
/// `measure` is any linear functional on the state space: the indicator of
/// the battery-empty states yields `Pr[battery empty at t]`, a reward
/// vector yields expected instantaneous reward, etc.
///
/// The requested times may be unsorted and may repeat; they are visited
/// in sorted order internally (one Fox–Glynn window per **distinct**
/// time, duplicates reuse the previous mix) and reported back in the
/// caller's order.
///
/// # Errors
///
/// [`MarkovError::InvalidDistribution`] for a bad `alpha`;
/// [`MarkovError::InvalidArgument`] for an empty/mismatched `measure` or
/// negative times.
pub fn measure_curve(
    ctmc: &Ctmc,
    alpha: &[f64],
    times: &[f64],
    measure: &[f64],
    opts: &TransientOptions,
) -> Result<CurveSolution, MarkovError> {
    measure_curve_cached(ctmc, alpha, times, measure, opts, &mut CurveCache::new())
}

/// Cross-solve cache for [`measure_curve_cached`]: what a sweep-plan
/// group shares between structurally identical solves.
///
/// Three layers, reused under progressively stronger conditions:
///
/// 1. **Workspaces** — the Fox–Glynn buffers and the SpMV worker pool
///    survive across solves whenever the state-space size and thread
///    budget match (always true within a plan group), so a group spawns
///    its workers once, not once per member.
/// 2. **The pattern** — when the cached iteration matrix is banded, its
///    diagonal offsets seed
///    [`BandedMatrix::transposed_scaled_add_diag_with_offsets`](crate::banded::BandedMatrix::transposed_scaled_add_diag_with_offsets),
///    so later members emit `Pᵀ` without re-detecting the lattice
///    structure.
/// 3. **The iterate scalars** `s_n = m·(αPⁿ)` — the expensive part, and
///    reused only when bitwise identity with an independent solve is
///    provable: the member's `Pᵀ` must equal the cached one bit for bit
///    (true across rate-rescaled scenario families, `Q' = γQ` with `γ` a
///    power of two, since `P = I + Q/ν` is then unchanged), `α`, the
///    measure and the [`TransientOptions`] must match, and either the
///    active window is off (the iterates never depend on the horizon) or
///    ν and the largest time agree too (the window's per-iteration trim
///    allowance is horizon-dependent). A member needing a larger Poisson
///    right point **extends** the cached sweep from the stored last
///    iterate instead of restarting it, so a whole rescale family costs
///    one sweep to the family's largest `ν·t` plus a Poisson remix per
///    member.
///
/// Reused members report only the matrix products *this call* performed
/// in `iterations`/`touched_entries` (zero for a pure remix) and inherit
/// the group sweep's `window_deficit`.
#[derive(Debug, Default)]
pub struct CurveCache {
    state: Option<CacheState>,
    fg: FoxGlynnCache,
    pool: Option<SpmvPool>,
    last_shared: bool,
}

/// The cached sweep itself (everything keyed by the reuse conditions).
#[derive(Debug)]
struct CacheState {
    opts: TransientOptions,
    /// Structural fingerprint of the source chain `pt` was built from —
    /// the key gating offset reuse across cache entries.
    source_fp: u64,
    pt: TransitionMatrix,
    nu: f64,
    t_max: f64,
    alpha: Vec<f64>,
    measure: Vec<f64>,
    /// `s[n] = measure · (alpha Pⁿ)` for `n = 0..=iterations`.
    s: Vec<f64>,
    /// The iterate `alpha P^{iterations}`, kept so a later member with a
    /// larger right truncation point can continue the sweep.
    v: Vec<f64>,
    converged_at: Option<usize>,
    window_deficit: f64,
}

impl CurveCache {
    /// An empty cache; everything is built on the first solve.
    pub fn new() -> Self {
        CurveCache::default()
    }

    /// Whether the last [`measure_curve_cached`] call reused the cached
    /// iterate scalars (possibly extending them) instead of running its
    /// own sweep from scratch — the sweep planner's fast-path telemetry.
    pub fn last_solve_shared(&self) -> bool {
        self.last_shared
    }

    /// Approximate heap footprint of the cached sweep in bytes: the
    /// iterate scalars `s`, the stored last iterate, the `α`/measure
    /// copies and the cached `Pᵀ` values. Workspaces whose size is
    /// bounded by the chain (the Fox–Glynn buffers, the worker pool) are
    /// not charged. This is what a resident holder's warm-state budget
    /// accounts for a cache that outlives one plan group.
    pub fn approx_bytes(&self) -> usize {
        let f64s = std::mem::size_of::<f64>();
        self.state.as_ref().map_or(0, |st| {
            (st.s.len() + st.v.len() + st.alpha.len() + st.measure.len()) * f64s
                + st.pt.entries_per_product() * f64s
        })
    }

    /// Drops the cached sweep while keeping the reusable workspaces (the
    /// Fox–Glynn buffers and the SpMV worker pool), so a long-lived
    /// cache can shed its O(iterations) memory without paying the
    /// worker-respawn cost on the next solve. A cleared cache behaves
    /// exactly like a fresh one: [`measure_curve_cached`] rebuilds the
    /// sweep on the next call, bit-identically.
    pub fn clear(&mut self) {
        self.state = None;
        self.last_shared = false;
    }
}

// A `CurveCache` moves between request threads when it is held as
// resident warm state (`kibamrm::service`); everything inside — the
// cached sweep, the Fox–Glynn workspace, the SpMV pool's channel
// endpoints and join handles — is `Send`, and this assertion keeps it
// that way.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<CurveCache>();
};

/// Builds the member's `Pᵀ`, seeding banded construction with the cached
/// offsets when the cache was built under the same options **for the
/// same chain structure** (`Ctmc::structural_fingerprint` equality — a
/// chain with a different pattern could scatter onto a superset of the
/// cached offsets and end up on a different representation/window
/// schedule than an independent `Auto` probe would pick); falls back to
/// the generic path on any mismatch.
fn build_transposed_cached(
    ctmc: &Ctmc,
    member_fp: u64,
    opts: &TransientOptions,
    cache: &CurveCache,
) -> Result<(TransitionMatrix, f64), MarkovError> {
    if let Some(state) = &cache.state {
        if state.opts == *opts
            && state.source_fp == member_fp
            && opts.representation != Representation::Csr
        {
            if let TransitionMatrix::Banded(band) = &state.pt {
                if let Ok((m, nu)) = ctmc.uniformised_transposed_banded_with_offsets(
                    opts.uniformisation_factor,
                    band.offsets(),
                ) {
                    if nu > 0.0 {
                        return Ok((TransitionMatrix::Banded(m), nu));
                    }
                }
            }
        }
    }
    build_transposed(ctmc, opts)
}

/// [`measure_curve`] with an explicit cross-solve [`CurveCache`] — the
/// engine entry point of the sweep planner. Results are **bit-identical**
/// to [`measure_curve`] on the same inputs: the cache only short-circuits
/// work whose outcome is provably the same bits (see [`CurveCache`]).
///
/// # Errors
///
/// As for [`measure_curve`].
pub fn measure_curve_cached(
    ctmc: &Ctmc,
    alpha: &[f64],
    times: &[f64],
    measure: &[f64],
    opts: &TransientOptions,
    cache: &mut CurveCache,
) -> Result<CurveSolution, MarkovError> {
    measure_curve_budgeted(
        ctmc,
        alpha,
        times,
        measure,
        opts,
        cache,
        &Budget::unlimited(),
    )
}

/// [`measure_curve_cached`] under a cooperative [`Budget`], checked once
/// per matrix–vector product (fresh sweeps and cache extensions alike).
///
/// A budget-aborted sweep leaves the cache exactly as consistent as a
/// shorter completed solve would: a fresh sweep commits nothing, and an
/// extension keeps only fully computed iterates — so re-running the
/// same solve with an unlimited budget is **bit-identical** to never
/// having been cancelled. With [`Budget::unlimited`] the check is a
/// single branch and the solve is identical to
/// [`measure_curve_cached`].
///
/// # Errors
///
/// As for [`measure_curve`], plus [`MarkovError::DeadlineExceeded`]
/// (carrying the products performed this call) when the budget expires.
pub fn measure_curve_budgeted(
    ctmc: &Ctmc,
    alpha: &[f64],
    times: &[f64],
    measure: &[f64],
    opts: &TransientOptions,
    cache: &mut CurveCache,
    budget: &Budget,
) -> Result<CurveSolution, MarkovError> {
    ctmc.check_distribution(alpha)?;
    if measure.len() != ctmc.n_states() {
        return Err(MarkovError::InvalidArgument(format!(
            "measure has {} entries but chain has {} states",
            measure.len(),
            ctmc.n_states()
        )));
    }
    if times.is_empty() {
        return Err(MarkovError::InvalidArgument(
            "no time points requested".into(),
        ));
    }
    if times.iter().any(|&t| !t.is_finite() || t < 0.0) {
        return Err(MarkovError::InvalidArgument(
            "times must be finite and ≥ 0".into(),
        ));
    }
    cache.last_shared = false;

    // Pᵀ straight from the generator: banded for lattice chains, CSR
    // otherwise — never a P temporary, never a transpose copy. Within a
    // plan group the cached offsets skip structure detection.
    let member_fp = ctmc.structural_fingerprint();
    let (pt, nu) = build_transposed_cached(ctmc, member_fp, opts, cache)?;
    let t_max = times.iter().cloned().fold(0.0, f64::max);
    if nu == 0.0 || t_max == 0.0 {
        let value = dot(alpha, measure);
        return Ok(CurveSolution {
            points: times.iter().map(|&t| (t, value)).collect(),
            iterations: 0,
            converged_at: None,
            nu,
            touched_entries: 0,
            window_deficit: 0.0,
        });
    }
    let windowed = opts.active_window && pt.as_banded().is_some();
    // The trimmed window mass propagates into the curve through the
    // measure, so its budget is scaled by ‖measure‖_∞: total curve error
    // stays ≤ fg share + trim share ≤ ε even for reward-valued measures.
    let m_inf = measure.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let (fg_epsilon, trim_mass) = split_epsilon(opts.epsilon, windowed);
    let trim_budget = trim_mass / m_inf.max(1.0);
    // One Fox–Glynn workspace serves every window: sized once at
    // λ_max = ν·t_max (whose right point bounds all smaller windows),
    // then re-filled per distinct time point with no further allocation.
    cache.fg.compute(nu * t_max, fg_epsilon)?;
    let n_max = cache.fg.right();

    // One pool per group: workers spawn on the first member — not once
    // per product, not once per member — and each owns a row block.
    let threads = effective_threads(opts.threads, pt.rows());
    if cache
        .pool
        .as_ref()
        .is_none_or(|p| p.threads() != SpmvPool::clamped_threads(threads))
    {
        cache.pool = Some(SpmvPool::new(threads));
    }
    let pool = cache.pool.as_ref().expect("pool just ensured");

    // Can the cached sweep stand in for this member's? Only when the
    // iterates are provably the same bits an independent solve would
    // produce: identical P (bitwise), α, measure and options — and, for
    // the active-window engine, identical ν and horizon too, because the
    // per-iteration trim allowance depends on the Poisson right point.
    let reusable = cache.state.as_ref().is_some_and(|st| {
        st.opts == *opts
            && st.pt == pt
            && st.alpha == alpha
            && st.measure == measure
            && (!windowed || (st.nu == nu && st.t_max == t_max))
    });

    let mut iterations = 0;
    let mut touched: u64 = 0;
    if !reusable {
        // Full sweep: cache s_n = measure·v_n for n = 0..=n_max (or until
        // the iterates converge). The fused kernel returns measure·v_{n+1}
        // from the same pass that computes v_{n+1}.
        let mut s = Vec::with_capacity(n_max + 1);
        let mut v = alpha.to_vec();
        let mut next = vec![0.0; ctmc.n_states()];
        s.push(dot(&v, measure));
        let mut converged_at = None;
        let mut deficit = 0.0;
        if let Some(band) = if windowed { pt.as_banded() } else { None } {
            // Active-window sweep; see the module docs for the invariants
            // (both buffers are exactly zero outside their windows, so the
            // windowed dot and sup-norm equal their full-space values).
            let allowance = trim_budget / (n_max as f64 + 1.0);
            let mut v_win = support_range(&v);
            let mut next_win = 0..0;
            for n in 1..=n_max {
                budget.check(iterations)?;
                let grown = band.grow_window(&v_win);
                zero_outside(&mut next, &next_win, &grown);
                let (s_n, sup) =
                    pool.mul_vec_dot_sup_window(band, &v, &mut next, measure, grown.clone())?;
                touched += band.entries_in(&grown) as u64;
                std::mem::swap(&mut v, &mut next);
                next_win = std::mem::replace(&mut v_win, grown);
                iterations += 1;
                s.push(s_n);
                if opts.steady_state_tolerance > 0.0 && sup < opts.steady_state_tolerance {
                    converged_at = Some(n);
                    break;
                }
                deficit += trim_window(&mut v, &mut v_win, allowance);
            }
        } else {
            let partition = pt.as_ref().partition(pool.threads());
            let per_product = pt.entries_per_product() as u64;
            for n in 1..=n_max {
                budget.check(iterations)?;
                // One fully fused pass: v_{n+1} = Pᵀ·v_n, s_{n+1} =
                // measure·v_{n+1} and the steady-state sup-norm
                // |v_{n+1} − v_n|_∞, with no separate dot or convergence
                // sweep over the iterate.
                let (s_n, sup) = pool.mul_vec_dot_sup(&pt, &partition, &v, &mut next, measure)?;
                touched += per_product;
                std::mem::swap(&mut v, &mut next);
                iterations += 1;
                s.push(s_n);
                if opts.steady_state_tolerance > 0.0 && sup < opts.steady_state_tolerance {
                    converged_at = Some(n);
                    break;
                }
            }
        }
        cache.state = Some(CacheState {
            opts: *opts,
            source_fp: member_fp,
            pt,
            nu,
            t_max,
            alpha: alpha.to_vec(),
            measure: measure.to_vec(),
            s,
            v,
            converged_at,
            window_deficit: deficit,
        });
    } else {
        cache.last_shared = true;
        let state = cache.state.as_mut().expect("reusable implies cached");
        // Extend the cached sweep when this member's Poisson window
        // reaches past it (only the horizon-independent engines get
        // here, so the continued iterates are exactly the ones an
        // independent solve would have computed at those n).
        if state.converged_at.is_none() && state.s.len() <= n_max {
            let partition = state.pt.as_ref().partition(pool.threads());
            let per_product = state.pt.entries_per_product() as u64;
            let mut next = vec![0.0; ctmc.n_states()];
            for n in state.s.len()..=n_max {
                budget.check(iterations)?;
                let (s_n, sup) =
                    pool.mul_vec_dot_sup(&state.pt, &partition, &state.v, &mut next, measure)?;
                touched += per_product;
                std::mem::swap(&mut state.v, &mut next);
                iterations += 1;
                state.s.push(s_n);
                if opts.steady_state_tolerance > 0.0 && sup < opts.steady_state_tolerance {
                    state.converged_at = Some(n);
                    break;
                }
            }
        }
    }
    let state = cache.state.as_ref().expect("sweep just ran or was reused");
    let points = remix_curve(times, nu, &state.s, &mut cache.fg, fg_epsilon)?;
    Ok(CurveSolution {
        points,
        iterations,
        converged_at: state.converged_at,
        nu,
        touched_entries: touched,
        window_deficit: state.window_deficit,
    })
}

/// Mixes the cached iterate scalars `s[n] = m·(αPⁿ)` into curve values:
/// each time point gets its own Poisson window over the shared scalars.
/// Times are visited in sorted order so equal (duplicate) time points
/// share one window computation, and the result vector is filled back in
/// the caller's original order. Iterate indices past the end of `s`
/// reuse the last scalar (the sweep stopped there because the iterates
/// had converged).
fn remix_curve(
    times: &[f64],
    nu: f64,
    s: &[f64],
    fg: &mut FoxGlynnCache,
    fg_epsilon: f64,
) -> Result<Vec<(f64, f64)>, MarkovError> {
    let s_last = *s.last().expect("at least one cached value");
    let mut order: Vec<usize> = (0..times.len()).collect();
    order.sort_by(|&a, &b| times[a].partial_cmp(&times[b]).expect("validated finite"));
    let mut points = vec![(0.0, 0.0); times.len()];
    let mut prev: Option<(f64, f64)> = None;
    for &idx in &order {
        let t = times[idx];
        let value = match prev {
            Some((pt_t, pt_v)) if pt_t == t => pt_v,
            _ => {
                if t == 0.0 {
                    s[0]
                } else {
                    fg.compute(nu * t, fg_epsilon)?;
                    let mut value = 0.0;
                    for (i, &wi) in fg.weights().iter().enumerate() {
                        let n = fg.left() + i;
                        value += wi * s.get(n).copied().unwrap_or(s_last);
                    }
                    value
                }
            }
        };
        points[idx] = (t, value);
        prev = Some((t, value));
    }
    Ok(points)
}

/// One member of a column-panel solve: a chain and its requested time
/// points. The initial distribution and the measure are shared across
/// the whole panel (that is what makes the joint sweep possible).
#[derive(Debug, Clone, Copy)]
pub struct PanelMember<'a> {
    /// The member's chain. Members whose uniformised `Pᵀ` is **bitwise
    /// identical** (rate-rescale families `Q' = γQ` with `γ` a power of
    /// two) are advanced through the same products together.
    pub ctmc: &'a Ctmc,
    /// The member's requested time points (unsorted, duplicates fine —
    /// same contract as [`measure_curve`]).
    pub times: &'a [f64],
}

/// Result of [`measure_curves_panel`].
#[derive(Debug, Clone, PartialEq)]
pub struct PanelSolution {
    /// Per-member curves, in the caller's member order. Each is
    /// **bit-identical** to what the single-vector path would have
    /// produced for that member (see [`measure_curves_panel`]).
    pub curves: Vec<CurveSolution>,
    /// How the members were grouped, in order of first appearance: one
    /// entry per panel, its value the panel's column count. Members the
    /// windowed panel engine cannot take (CSR representation, active
    /// window off, `ν = 0` or `t_max = 0`) each form a size-1 panel and
    /// run the plain single-vector engine; `k = 1` therefore reports
    /// `[1]` and dispatches to the unpaneled kernels.
    pub panel_sizes: Vec<usize>,
    /// Matrix slots actually read by this call: per joint-panel
    /// iteration the entries of the **union** of the live columns'
    /// windows (read once for the whole panel), plus each serial
    /// member's own `touched_entries`. Compare against the sum of the
    /// per-curve `touched_entries` (what k independent sweeps would
    /// have read) for the panel's saving.
    pub panel_touched_entries: u64,
}

/// Per-column state of a joint panel sweep — the exact mirror of the
/// single-vector active-window loop in [`measure_curve_budgeted`], one
/// copy per column.
#[derive(Debug)]
struct PanelColState {
    /// Index into the caller's member slice.
    member: usize,
    nu: f64,
    /// The column's own Poisson right point: it stops multiplying at its
    /// own horizon even while longer columns continue.
    n_max: usize,
    /// The column's own per-iteration trim allowance
    /// (`trim_budget / (n_max + 1)` — horizon-dependent, hence
    /// per-column).
    allowance: f64,
    v: Vec<f64>,
    next: Vec<f64>,
    v_win: Range<usize>,
    next_win: Range<usize>,
    grown: Range<usize>,
    s: Vec<f64>,
    converged_at: Option<usize>,
    deficit: f64,
    touched: u64,
    iterations: usize,
    live: bool,
}

/// Solves a whole family of curves `t ↦ m·π_j(t)` — one per member, all
/// sharing the same `α` and measure — advancing members with bitwise
/// identical `Pᵀ` through uniformisation **together**: one pass over
/// each matrix diagonal per iteration feeds every column of the panel
/// (`Pᵀ·[v₁ … v_k]`), instead of re-reading the matrix k times.
///
/// Grouping is by provable bitwise equality of the uniformised `Pᵀ`
/// (true across rate-rescale families `Q' = γQ` with `γ` a power of
/// two, since `P = I + Q/ν` is then unchanged while ν differs). Only
/// the banded active-window engine panels — it is the one engine whose
/// horizon-dependent trim allowance prevents the serial
/// [`CurveCache`] from sharing sweeps across rescaled members, so it is
/// where the joint sweep actually saves matrix traffic. Everything else
/// (CSR, window off, `ν = 0`, `t_max = 0`) runs the unpaneled
/// single-vector engine through one shared serial [`CurveCache`],
/// exactly as a sweep-plan group would have.
///
/// **Bit-identity:** every returned [`CurveSolution`] — points and
/// diagnostics — equals what [`measure_curve_budgeted`] would produce
/// for that member with a fresh cache. Each column keeps its own
/// iterate, window, trim allowance and deficit accounting; the joint
/// product applies the same per-row contributions in the same order as
/// the single-vector kernel (see [`SpmvPool::mul_panel_dot_sup`]); and
/// each column converges or stops at its own horizon independently. A
/// panel of one column degenerates to the single-vector path.
///
/// The `budget` is checked once per live column per iteration, before
/// the joint product — the same one-check-per-column-product cadence as
/// k serial solves — and [`MarkovError::DeadlineExceeded`] carries the
/// column-products completed by the interrupted panel.
///
/// # Errors
///
/// As for [`measure_curve`] (every member is validated up front, before
/// any sweep runs), plus [`MarkovError::DeadlineExceeded`] when the
/// budget expires.
pub fn measure_curves_panel(
    members: &[PanelMember<'_>],
    alpha: &[f64],
    measure: &[f64],
    opts: &TransientOptions,
    budget: &Budget,
) -> Result<PanelSolution, MarkovError> {
    if members.is_empty() {
        return Err(MarkovError::InvalidArgument(
            "no panel members provided".into(),
        ));
    }
    for m in members {
        m.ctmc.check_distribution(alpha)?;
        if measure.len() != m.ctmc.n_states() {
            return Err(MarkovError::InvalidArgument(format!(
                "measure has {} entries but chain has {} states",
                measure.len(),
                m.ctmc.n_states()
            )));
        }
        if m.times.is_empty() {
            return Err(MarkovError::InvalidArgument(
                "no time points requested".into(),
            ));
        }
        if m.times.iter().any(|&t| !t.is_finite() || t < 0.0) {
            return Err(MarkovError::InvalidArgument(
                "times must be finite and ≥ 0".into(),
            ));
        }
    }

    // Build every member's Pᵀ up front and decide panel eligibility:
    // only the banded active-window engine panels (see the function
    // docs for why).
    let mut built: Vec<(TransitionMatrix, f64, f64, bool)> = Vec::with_capacity(members.len());
    for m in members {
        let (pt, nu) = build_transposed(m.ctmc, opts)?;
        let t_max = m.times.iter().cloned().fold(0.0, f64::max);
        let windowed = opts.active_window && pt.as_banded().is_some() && nu > 0.0 && t_max > 0.0;
        built.push((pt, nu, t_max, windowed));
    }

    // Group eligible members by bitwise-identical Pᵀ, preserving first
    // appearance order; everything else is its own size-1 group.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, (pt, _, _, windowed)) in built.iter().enumerate() {
        if *windowed {
            if let Some(group) = groups
                .iter_mut()
                .find(|g| built[g[0]].3 && built[g[0]].0 == *pt)
            {
                group.push(i);
                continue;
            }
        }
        groups.push(vec![i]);
    }
    let panel_sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();

    let (fg_epsilon, trim_mass) = split_epsilon(opts.epsilon, true);
    let m_inf = measure.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let trim_budget = trim_mass / m_inf.max(1.0);
    let mut fg = FoxGlynnCache::default();
    let mut pool: Option<SpmvPool> = None;
    let mut serial_cache = CurveCache::new();
    let mut curves: Vec<Option<CurveSolution>> = members.iter().map(|_| None).collect();
    let mut panel_touched: u64 = 0;

    for group in &groups {
        if group.len() == 1 {
            // Singleton panel: the plain single-vector engine, with one
            // serial cache shared across all singletons (the sweep-plan
            // group behaviour).
            let i = group[0];
            let sol = measure_curve_budgeted(
                members[i].ctmc,
                alpha,
                members[i].times,
                measure,
                opts,
                &mut serial_cache,
                budget,
            )?;
            panel_touched += sol.touched_entries;
            curves[i] = Some(sol);
            continue;
        }

        // Joint panel sweep. All columns share the matrix bits; each
        // keeps its own iterate, window schedule and horizon.
        let band = built[group[0]]
            .0
            .as_banded()
            .expect("panel groups are banded by construction");
        let threads = effective_threads(opts.threads, band.rows());
        if pool
            .as_ref()
            .is_none_or(|p| p.threads() != SpmvPool::clamped_threads(threads))
        {
            pool = Some(SpmvPool::new(threads));
        }
        let pool = pool.as_ref().expect("pool just ensured");

        let mut cols: Vec<PanelColState> = Vec::with_capacity(group.len());
        for &i in group {
            let (_, nu, t_max, _) = built[i];
            fg.compute(nu * t_max, fg_epsilon)?;
            let n_max = fg.right();
            let v = alpha.to_vec();
            let v_win = support_range(&v);
            cols.push(PanelColState {
                member: i,
                nu,
                n_max,
                allowance: trim_budget / (n_max as f64 + 1.0),
                s: vec![dot(&v, measure)],
                next: vec![0.0; v.len()],
                v,
                v_win,
                next_win: 0..0,
                grown: 0..0,
                converged_at: None,
                deficit: 0.0,
                touched: 0,
                iterations: 0,
                live: false,
            });
        }

        let mut completed = 0usize;
        for n in 1.. {
            for c in cols.iter_mut() {
                c.live = c.converged_at.is_none() && n <= c.n_max;
            }
            let live_count = cols.iter().filter(|c| c.live).count();
            if live_count == 0 {
                break;
            }
            // Same check cadence as k serial solves: one per column
            // product, before the product.
            for _ in 0..live_count {
                budget.check(completed)?;
            }
            // Grow each live column's window and keep its scratch
            // buffer zero outside it — per column, exactly the single
            // path's pre-product steps.
            let mut union: Option<Range<usize>> = None;
            for c in cols.iter_mut().filter(|c| c.live) {
                c.grown = band.grow_window(&c.v_win);
                zero_outside(&mut c.next, &c.next_win, &c.grown);
                union = Some(match union {
                    None => c.grown.clone(),
                    Some(u) => u.start.min(c.grown.start)..u.end.max(c.grown.end),
                });
            }
            // The joint product reads each matrix slot in the union of
            // the live windows once, for every column.
            panel_touched += band.entries_in(&union.expect("some live column")) as u64;
            let mut panel: Vec<PanelColumn<'_>> = cols
                .iter_mut()
                .filter(|c| c.live)
                .map(|c| {
                    let PanelColState { v, next, grown, .. } = c;
                    let x: &[f64] = v;
                    let y: &mut [f64] = next;
                    PanelColumn {
                        x,
                        y,
                        measure,
                        rows: grown.clone(),
                    }
                })
                .collect();
            let results = pool.mul_panel_dot_sup(band, &mut panel)?;
            drop(panel);
            for (c, &(s_n, sup)) in cols.iter_mut().filter(|c| c.live).zip(&results) {
                // Per-column accounting of what this column would have
                // cost alone — the baseline the panel saving is
                // measured against.
                c.touched += band.entries_in(&c.grown) as u64;
                std::mem::swap(&mut c.v, &mut c.next);
                c.next_win = std::mem::replace(&mut c.v_win, c.grown.clone());
                c.iterations += 1;
                completed += 1;
                c.s.push(s_n);
                if opts.steady_state_tolerance > 0.0 && sup < opts.steady_state_tolerance {
                    c.converged_at = Some(n);
                } else {
                    c.deficit += trim_window(&mut c.v, &mut c.v_win, c.allowance);
                }
            }
        }

        for c in &cols {
            let points = remix_curve(members[c.member].times, c.nu, &c.s, &mut fg, fg_epsilon)?;
            curves[c.member] = Some(CurveSolution {
                points,
                iterations: c.iterations,
                converged_at: c.converged_at,
                nu: c.nu,
                touched_entries: c.touched,
                window_deficit: c.deficit,
            });
        }
    }

    Ok(PanelSolution {
        curves: curves
            .into_iter()
            .map(|c| c.expect("every member solved by exactly one group"))
            .collect(),
        panel_sizes,
        panel_touched_entries: panel_touched,
    })
}

/// Caps the worker count at something useful for the matrix: tiny chains
/// never leave the calling thread (pool setup would dominate), matching
/// the old spawn-path threshold.
fn effective_threads(threads: usize, rows: usize) -> usize {
    if rows < crate::sparse::PARALLEL_SPMV_MIN_ROWS {
        1
    } else {
        threads
    }
}

/// The contiguous hull of the non-zero entries (`0..0` when all zero).
fn support_range(v: &[f64]) -> Range<usize> {
    let first = v.iter().position(|&x| x != 0.0);
    match first {
        None => 0..0,
        Some(lo) => {
            let hi = v.iter().rposition(|&x| x != 0.0).expect("some non-zero");
            lo..hi + 1
        }
    }
}

/// Zeros the part of `buf`'s stale window that the upcoming product will
/// not overwrite, maintaining the invariant that every buffer is exactly
/// zero outside its tracked window.
fn zero_outside(buf: &mut [f64], stale: &Range<usize>, keep: &Range<usize>) {
    let left = stale.start..stale.end.min(keep.start);
    if left.start < left.end {
        buf[left].fill(0.0);
    }
    let right = stale.start.max(keep.end)..stale.end;
    if right.start < right.end {
        buf[right].fill(0.0);
    }
}

/// Trims near-zero mass off both edges of the window, spending at most
/// `allowance` of (absolute) mass, zeroing what it removes. Returns the
/// mass actually trimmed — the caller's deficit accounting.
fn trim_window(v: &mut [f64], window: &mut Range<usize>, allowance: f64) -> f64 {
    if allowance <= 0.0 {
        return 0.0;
    }
    let mut spent = 0.0;
    while window.start < window.end {
        let x = v[window.start].abs();
        if spent + x > allowance {
            break;
        }
        spent += x;
        v[window.start] = 0.0;
        window.start += 1;
    }
    while window.end > window.start {
        let x = v[window.end - 1].abs();
        if spent + x > allowance {
            break;
        }
        spent += x;
        v[window.end - 1] = 0.0;
        window.end -= 1;
    }
    spent
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn accumulate(out: &mut [f64], v: &[f64], w: f64, window: &Range<usize>) {
    for (o, &x) in out[window.clone()].iter_mut().zip(&v[window.clone()]) {
        *o += w * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    /// Two-state chain with closed-form transient solution.
    fn two_state(a: f64, b: f64) -> Ctmc {
        let mut builder = CtmcBuilder::new(2);
        builder.rate(0, 1, a).unwrap();
        builder.rate(1, 0, b).unwrap();
        builder.build().unwrap()
    }

    fn closed_form_p00(a: f64, b: f64, t: f64) -> f64 {
        (b + a * (-(a + b) * t).exp()) / (a + b)
    }

    #[test]
    fn matches_two_state_closed_form() {
        let (a, b) = (2.0, 3.0);
        let chain = two_state(a, b);
        for &t in &[0.0, 0.1, 0.5, 1.0, 5.0] {
            let sol = transient_distribution(&chain, &[1.0, 0.0], t, 1e-13).unwrap();
            let expect = closed_form_p00(a, b, t);
            assert!(
                (sol.distribution[0] - expect).abs() < 1e-10,
                "t = {t}: {} vs {expect}",
                sol.distribution[0]
            );
            let total: f64 = sol.distribution.iter().sum();
            assert!((total - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn matches_dense_matrix_exponential() {
        // 4-state random-ish generator vs e^{Qt}.
        let mut b = CtmcBuilder::new(4);
        let rates = [
            (0, 1, 1.2),
            (0, 3, 0.4),
            (1, 2, 2.3),
            (1, 0, 0.3),
            (2, 3, 1.7),
            (2, 1, 0.5),
            (3, 0, 0.9),
        ];
        for (f, t, r) in rates {
            b.rate(f, t, r).unwrap();
        }
        let chain = b.build().unwrap();
        let t = 0.8;
        let expm = chain.generator_dense().scale(t).expm().unwrap();
        let alpha = [0.25, 0.25, 0.25, 0.25];
        let sol = transient_distribution(&chain, &alpha, t, 1e-13).unwrap();
        let expect = expm.vecmul(&alpha).unwrap();
        for i in 0..4 {
            assert!((sol.distribution[i] - expect[i]).abs() < 1e-9, "state {i}");
        }
    }

    #[test]
    fn absorbing_chain_accumulates_mass() {
        // 0 → 1 (absorbing) at rate 1: π₁(t) = 1 − e^{-t}.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let chain = b.build().unwrap();
        for &t in &[0.5, 1.0, 3.0, 10.0] {
            let sol = transient_distribution(&chain, &[1.0, 0.0], t, 1e-13).unwrap();
            assert!((sol.distribution[1] - (1.0 - (-t).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn all_absorbing_chain_is_constant() {
        let chain = CtmcBuilder::new(3).build().unwrap();
        let sol = transient_distribution(&chain, &[0.2, 0.3, 0.5], 7.0, 1e-12).unwrap();
        assert_eq!(sol.distribution, vec![0.2, 0.3, 0.5]);
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.nu, 0.0);
        assert_eq!(sol.touched_entries, 0);
    }

    #[test]
    fn zero_time_returns_alpha() {
        let chain = two_state(1.0, 1.0);
        let sol = transient_distribution(&chain, &[0.4, 0.6], 0.0, 1e-12).unwrap();
        assert_eq!(sol.distribution, vec![0.4, 0.6]);
    }

    #[test]
    fn input_validation() {
        let chain = two_state(1.0, 1.0);
        assert!(transient_distribution(&chain, &[0.4, 0.4], 1.0, 1e-12).is_err());
        assert!(transient_distribution(&chain, &[1.0, 0.0], -1.0, 1e-12).is_err());
        assert!(transient_distribution(&chain, &[1.0, 0.0], f64::NAN, 1e-12).is_err());
    }

    #[test]
    fn curve_matches_pointwise_solutions() {
        let chain = two_state(2.0, 3.0);
        let times = [0.0, 0.2, 0.5, 1.3, 4.0];
        let measure = [1.0, 0.0]; // Pr[in state 0]
        let curve = measure_curve(
            &chain,
            &[1.0, 0.0],
            &times,
            &measure,
            &TransientOptions::default(),
        )
        .unwrap();
        for (t, value) in &curve.points {
            let expect = closed_form_p00(2.0, 3.0, *t);
            assert!(
                (value - expect).abs() < 1e-9,
                "t = {t}: {value} vs {expect}"
            );
        }
        // One sweep serves all points: iterations bounded by the largest t.
        let single = transient_distribution(&chain, &[1.0, 0.0], 4.0, 1e-10).unwrap();
        assert!(curve.iterations <= single.iterations + 5);
    }

    #[test]
    fn curve_validation_errors() {
        let chain = two_state(1.0, 1.0);
        let opts = TransientOptions::default();
        assert!(measure_curve(&chain, &[1.0, 0.0], &[], &[1.0, 0.0], &opts).is_err());
        assert!(measure_curve(&chain, &[1.0, 0.0], &[1.0], &[1.0], &opts).is_err());
        assert!(measure_curve(&chain, &[1.0, 0.0], &[-1.0], &[1.0, 0.0], &opts).is_err());
        assert!(measure_curve(&chain, &[0.9, 0.0], &[1.0], &[1.0, 0.0], &opts).is_err());
    }

    #[test]
    fn steady_state_detection_saves_iterations() {
        // Strongly absorbing chain: everything is absorbed long before
        // t = 1000, so the sweep should stop early.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 5.0).unwrap();
        let chain = b.build().unwrap();
        let opts = TransientOptions {
            steady_state_tolerance: 1e-13,
            ..Default::default()
        };
        let curve = measure_curve(&chain, &[1.0, 0.0], &[1000.0], &[0.0, 1.0], &opts).unwrap();
        assert!(curve.converged_at.is_some());
        // νt ≈ 5100, but convergence must kick in within a few dozen steps.
        assert!(curve.iterations < 200, "iterations = {}", curve.iterations);
        assert!((curve.points[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn curve_handles_unsorted_times() {
        let chain = two_state(2.0, 3.0);
        let times = [1.0, 0.1, 0.5];
        let curve = measure_curve(
            &chain,
            &[1.0, 0.0],
            &times,
            &[1.0, 0.0],
            &TransientOptions::default(),
        )
        .unwrap();
        assert_eq!(curve.points.len(), 3);
        for (i, (t, v)) in curve.points.iter().enumerate() {
            assert_eq!(*t, times[i]);
            assert!((v - closed_form_p00(2.0, 3.0, *t)).abs() < 1e-9);
        }
    }

    #[test]
    fn curve_handles_duplicate_times_without_recomputing() {
        // Duplicates (and a duplicated zero) are served from the
        // previous mix; the values must match the de-duplicated curve
        // exactly, in the caller's order.
        let chain = two_state(2.0, 3.0);
        let times = [0.5, 0.5, 0.0, 1.0, 0.0, 1.0, 0.5];
        let opts = TransientOptions::default();
        let curve = measure_curve(&chain, &[1.0, 0.0], &times, &[1.0, 0.0], &opts).unwrap();
        let reference = measure_curve(&chain, &[1.0, 0.0], &[0.0, 0.5, 1.0], &[1.0, 0.0], &opts)
            .unwrap()
            .points;
        let lookup = |t: f64| {
            reference
                .iter()
                .find(|&&(rt, _)| rt == t)
                .expect("reference covers t")
                .1
        };
        for (i, &(t, v)) in curve.points.iter().enumerate() {
            assert_eq!(t, times[i], "order preserved");
            assert_eq!(v, lookup(t), "duplicate t = {t} must reuse the mix");
        }
    }

    #[test]
    fn distribution_stays_stochastic_under_uniformisation_factor_one() {
        let chain = two_state(1.0, 1.0);
        let opts = TransientOptions {
            uniformisation_factor: 1.0,
            ..Default::default()
        };
        let sol = transient_distribution_with(&chain, &[1.0, 0.0], 2.5, &opts).unwrap();
        let total: f64 = sol.distribution.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert!((sol.distribution[0] - closed_form_p00(1.0, 1.0, 2.5)).abs() < 1e-9);
    }

    /// A birth–death lattice chain with an absorbing floor — the 1-D
    /// archetype of the discretised battery chain.
    fn lattice_chain(n: usize, down: f64, up: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(n);
        for i in 1..n {
            b.rate(i, i - 1, down).unwrap(); // consumption
            if i + 1 < n {
                b.rate(i, i + 1, up).unwrap(); // recovery
            }
        }
        b.build().unwrap()
    }

    fn point_mass(n: usize, at: usize) -> Vec<f64> {
        let mut alpha = vec![0.0; n];
        alpha[at] = 1.0;
        alpha
    }

    #[test]
    fn representations_agree_on_lattice_curves() {
        // The tentpole cross-check: CSR-full, banded-full and
        // banded-windowed engines produce the same curve within ε.
        let n = 400;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0; // Pr[absorbed]
        let times = [5.0, 40.0, 120.0, 300.0];
        let base = TransientOptions::default();
        let csr = measure_curve(
            &chain,
            &alpha,
            &times,
            &measure,
            &TransientOptions {
                representation: Representation::Csr,
                ..base
            },
        )
        .unwrap();
        let banded_full = measure_curve(
            &chain,
            &alpha,
            &times,
            &measure,
            &TransientOptions {
                representation: Representation::Banded,
                active_window: false,
                ..base
            },
        )
        .unwrap();
        let banded_window = measure_curve(
            &chain,
            &alpha,
            &times,
            &measure,
            &TransientOptions {
                representation: Representation::Banded,
                active_window: true,
                ..base
            },
        )
        .unwrap();
        for i in 0..times.len() {
            let a = csr.points[i].1;
            let b = banded_full.points[i].1;
            let c = banded_window.points[i].1;
            assert!((a - b).abs() < 1e-12, "full: {a} vs {b}");
            // Provable bound is 2ε (each engine within ε of truth).
            assert!((a - c).abs() < 2.0 * base.epsilon, "windowed: {a} vs {c}");
        }
        // The windowed engine must actually skip work on this chain
        // (early iterations touch a handful of rows, not all 400).
        assert!(
            banded_window.touched_entries < banded_full.touched_entries,
            "windowed {} vs full {}",
            banded_window.touched_entries,
            banded_full.touched_entries
        );
        assert!(banded_window.window_deficit <= base.epsilon / 2.0);
        assert_eq!(banded_full.window_deficit, 0.0);
        // Auto picks banded for this lattice.
        let auto = measure_curve(&chain, &alpha, &times, &measure, &base).unwrap();
        assert!(auto.touched_entries <= banded_full.touched_entries);
    }

    #[test]
    fn windowed_distribution_matches_csr_within_epsilon() {
        let n = 300;
        let chain = lattice_chain(n, 0.8, 0.4);
        let alpha = point_mass(n, n - 1);
        let t = 60.0;
        let eps = 1e-11;
        let csr = transient_distribution_with(
            &chain,
            &alpha,
            t,
            &TransientOptions {
                epsilon: eps,
                representation: Representation::Csr,
                ..Default::default()
            },
        )
        .unwrap();
        let windowed = transient_distribution_with(
            &chain,
            &alpha,
            t,
            &TransientOptions {
                epsilon: eps,
                representation: Representation::Banded,
                active_window: true,
                ..Default::default()
            },
        )
        .unwrap();
        let l1: f64 = csr
            .distribution
            .iter()
            .zip(&windowed.distribution)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < eps * 10.0, "L1 distance {l1}");
        assert!(windowed.window_deficit <= eps / 2.0);
        assert!(windowed.touched_entries < csr.touched_entries);
    }

    /// The chain scaled by `gamma` (a power of two keeps `P = I + Q/ν`
    /// bitwise identical, which is what the cache's rescale fast path
    /// detects).
    fn scaled_chain(chain: &Ctmc, gamma: f64) -> Ctmc {
        chain
            .with_rate_values(chain.rates().values().iter().map(|v| v * gamma).collect())
            .unwrap()
    }

    #[test]
    fn cached_remix_is_bit_identical_across_rescaled_chains() {
        let n = 200;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let times = [10.0, 60.0, 150.0];
        // Non-windowed engines: the iterate scalars are horizon-free, so
        // the whole rescale family shares one (extendable) sweep.
        for repr in [Representation::Csr, Representation::Banded] {
            let opts = TransientOptions {
                representation: repr,
                active_window: false,
                ..Default::default()
            };
            let mut cache = CurveCache::new();
            // Ascending ν: each member extends the previous sweep.
            for gamma in [0.25, 0.5, 1.0, 2.0] {
                let member = scaled_chain(&chain, gamma);
                let cached =
                    measure_curve_cached(&member, &alpha, &times, &measure, &opts, &mut cache)
                        .unwrap();
                let independent = measure_curve(&member, &alpha, &times, &measure, &opts).unwrap();
                assert_eq!(
                    cached.points, independent.points,
                    "γ = {gamma} ({repr:?}) must be bit-identical"
                );
                if gamma > 0.25 {
                    assert!(cache.last_solve_shared(), "γ = {gamma} should share");
                    // Extension only runs the *extra* iterations.
                    assert!(
                        cached.iterations < independent.iterations,
                        "γ = {gamma}: {} vs {}",
                        cached.iterations,
                        independent.iterations
                    );
                }
            }
            // Descending after the family maximum: pure remix, zero products.
            let half = scaled_chain(&chain, 0.5);
            let remixed =
                measure_curve_cached(&half, &alpha, &times, &measure, &opts, &mut cache).unwrap();
            assert_eq!(remixed.iterations, 0, "{repr:?}");
            assert_eq!(remixed.touched_entries, 0);
            assert_eq!(
                remixed.points,
                measure_curve(&half, &alpha, &times, &measure, &opts)
                    .unwrap()
                    .points
            );
        }
    }

    #[test]
    fn cached_windowed_engine_only_shares_exact_repeats() {
        let n = 200;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let times = [10.0, 60.0];
        let opts = TransientOptions {
            representation: Representation::Banded,
            active_window: true,
            ..Default::default()
        };
        let mut cache = CurveCache::new();
        let first =
            measure_curve_cached(&chain, &alpha, &times, &measure, &opts, &mut cache).unwrap();
        assert!(!cache.last_solve_shared());
        // An exact repeat (same ν, same horizon) reuses the whole sweep…
        let repeat =
            measure_curve_cached(&chain, &alpha, &times, &measure, &opts, &mut cache).unwrap();
        assert!(cache.last_solve_shared());
        assert_eq!(repeat.iterations, 0);
        assert_eq!(repeat.points, first.points);
        assert_eq!(repeat.window_deficit, first.window_deficit);
        // …but a rescaled member must NOT reuse it: the window's trim
        // allowance depends on the horizon's Poisson right point, so only
        // a fresh sweep is bit-identical to an independent solve.
        let double = scaled_chain(&chain, 2.0);
        let cached =
            measure_curve_cached(&double, &alpha, &times, &measure, &opts, &mut cache).unwrap();
        assert!(!cache.last_solve_shared());
        let independent = measure_curve(&double, &alpha, &times, &measure, &opts).unwrap();
        assert_eq!(cached.points, independent.points);
        assert_eq!(cached.iterations, independent.iterations);
    }

    #[test]
    fn cache_misses_on_changed_alpha_measure_or_options() {
        let n = 80;
        let chain = lattice_chain(n, 0.8, 0.2);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let times = [20.0];
        let opts = TransientOptions {
            representation: Representation::Csr,
            ..Default::default()
        };
        let mut cache = CurveCache::new();
        measure_curve_cached(&chain, &alpha, &times, &measure, &opts, &mut cache).unwrap();
        // Different initial distribution: full solve, correct answer.
        let alpha2 = point_mass(n, n / 2);
        let fresh =
            measure_curve_cached(&chain, &alpha2, &times, &measure, &opts, &mut cache).unwrap();
        assert!(!cache.last_solve_shared());
        assert_eq!(
            fresh.points,
            measure_curve(&chain, &alpha2, &times, &measure, &opts)
                .unwrap()
                .points
        );
        // Different measure: miss again.
        let mut measure2 = vec![0.0; n];
        measure2[1] = 1.0;
        measure_curve_cached(&chain, &alpha2, &times, &measure2, &opts, &mut cache).unwrap();
        assert!(!cache.last_solve_shared());
        // Different ε: miss (the Fox–Glynn share changes the mix).
        let tighter = TransientOptions {
            epsilon: 1e-12,
            ..opts
        };
        let t =
            measure_curve_cached(&chain, &alpha2, &times, &measure2, &tighter, &mut cache).unwrap();
        assert!(!cache.last_solve_shared());
        assert_eq!(
            t.points,
            measure_curve(&chain, &alpha2, &times, &measure2, &tighter)
                .unwrap()
                .points
        );
    }

    #[test]
    fn cache_footprint_accounting_and_clear() {
        let n = 80;
        let chain = lattice_chain(n, 0.8, 0.2);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let times = [20.0];
        let opts = TransientOptions::default();
        let mut cache = CurveCache::new();
        assert_eq!(cache.approx_bytes(), 0, "empty cache charges nothing");
        let first =
            measure_curve_cached(&chain, &alpha, &times, &measure, &opts, &mut cache).unwrap();
        let warm = cache.approx_bytes();
        // The sweep stores ≥ iterations+1 scalars plus two state-sized
        // iterates plus the matrix values.
        assert!(warm >= (first.iterations + 1 + 2 * n) * std::mem::size_of::<f64>());
        // clear() sheds the sweep but keeps the cache usable: the next
        // solve rebuilds from scratch, bit-identically.
        cache.clear();
        assert_eq!(cache.approx_bytes(), 0);
        assert!(!cache.last_solve_shared());
        let rebuilt =
            measure_curve_cached(&chain, &alpha, &times, &measure, &opts, &mut cache).unwrap();
        assert!(!cache.last_solve_shared());
        assert_eq!(rebuilt.points, first.points);
        assert_eq!(rebuilt.iterations, first.iterations);
        // And an immediate repeat shares again.
        measure_curve_cached(&chain, &alpha, &times, &measure, &opts, &mut cache).unwrap();
        assert!(cache.last_solve_shared());
    }

    #[test]
    fn budget_cancels_sweep_and_rerun_is_bit_identical() {
        // The tentpole cancellation contract: a solve cancelled at
        // iteration k reports k completed products, and re-running it
        // to completion — through the same cache — yields exactly the
        // bits an uninterrupted solve produces.
        let n = 120;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let times = [10.0, 40.0];
        for repr in [Representation::Csr, Representation::Banded] {
            let opts = TransientOptions {
                representation: repr,
                ..Default::default()
            };
            let uninterrupted = measure_curve(&chain, &alpha, &times, &measure, &opts).unwrap();
            assert!(uninterrupted.iterations > 8, "need room to cancel");
            for k in [0u64, 1, 5, 8] {
                let mut cache = CurveCache::new();
                let err = measure_curve_budgeted(
                    &chain,
                    &alpha,
                    &times,
                    &measure,
                    &opts,
                    &mut cache,
                    &Budget::cancelled_after_checks(k),
                )
                .unwrap_err();
                assert_eq!(
                    err,
                    MarkovError::DeadlineExceeded {
                        completed: k as usize
                    },
                    "{repr:?} k = {k}"
                );
                // A cancelled fresh sweep commits nothing; the re-run
                // behaves like a first solve and matches bit for bit.
                assert!(!cache.last_solve_shared());
                let rerun =
                    measure_curve_cached(&chain, &alpha, &times, &measure, &opts, &mut cache)
                        .unwrap();
                assert_eq!(rerun.points, uninterrupted.points, "{repr:?} k = {k}");
                assert_eq!(rerun.iterations, uninterrupted.iterations);
            }
        }
    }

    #[test]
    fn budget_cancels_cache_extension_and_rerun_completes() {
        // Cancel mid-*extension*: the cache keeps only fully computed
        // iterates, so finishing the extension later is bit-identical.
        let n = 120;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let opts = TransientOptions {
            representation: Representation::Csr,
            ..Default::default()
        };
        let mut cache = CurveCache::new();
        measure_curve_cached(&chain, &alpha, &[5.0], &measure, &opts, &mut cache).unwrap();
        // The doubled chain needs a larger Poisson window → extension.
        let double = scaled_chain(&chain, 2.0);
        let err = measure_curve_budgeted(
            &double,
            &alpha,
            &[5.0],
            &measure,
            &opts,
            &mut cache,
            &Budget::cancelled_after_checks(2),
        )
        .unwrap_err();
        assert_eq!(err, MarkovError::DeadlineExceeded { completed: 2 });
        let finished =
            measure_curve_cached(&double, &alpha, &[5.0], &measure, &opts, &mut cache).unwrap();
        let independent = measure_curve(&double, &alpha, &[5.0], &measure, &opts).unwrap();
        assert_eq!(finished.points, independent.points);
    }

    #[test]
    fn expired_budget_fails_before_any_product() {
        let n = 120;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let err = measure_curve_budgeted(
            &chain,
            &alpha,
            &[40.0],
            &measure,
            &TransientOptions::default(),
            &mut CurveCache::new(),
            &Budget::cancelled_after_checks(0),
        )
        .unwrap_err();
        assert_eq!(err, MarkovError::DeadlineExceeded { completed: 0 });
        let err = transient_distribution_budgeted(
            &chain,
            &alpha,
            40.0,
            &TransientOptions::default(),
            &Budget::cancelled_after_checks(0),
        )
        .unwrap_err();
        assert_eq!(err, MarkovError::DeadlineExceeded { completed: 0 });
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_unbudgeted() {
        // The zero-overhead claim's semantic half: the budgeted entry
        // point with an unlimited token is the same computation.
        let n = 120;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let opts = TransientOptions::default();
        let plain = measure_curve(&chain, &alpha, &[10.0, 40.0], &measure, &opts).unwrap();
        let budgeted = measure_curve_budgeted(
            &chain,
            &alpha,
            &[10.0, 40.0],
            &measure,
            &opts,
            &mut CurveCache::new(),
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(plain.points, budgeted.points);
        assert_eq!(plain.iterations, budgeted.iterations);
        assert_eq!(plain.touched_entries, budgeted.touched_entries);
    }

    /// The windowed panel options every panel test uses: the one engine
    /// the joint sweep takes.
    fn windowed_opts() -> TransientOptions {
        TransientOptions {
            representation: Representation::Banded,
            active_window: true,
            ..Default::default()
        }
    }

    #[test]
    fn panel_is_bit_identical_to_single_sweeps_on_rescale_family() {
        // The tentpole contract: a rate-rescale family (γ a power of
        // two keeps Pᵀ bitwise identical) advanced as one panel yields
        // exactly the curves — points AND diagnostics — that k
        // independent single-vector sweeps produce, while reading the
        // matrix roughly once instead of k times.
        let n = 300;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let times = [5.0, 40.0, 120.0, 300.0];
        let opts = windowed_opts();
        let chains: Vec<Ctmc> = [0.125, 0.25, 0.5, 1.0]
            .iter()
            .map(|&g| scaled_chain(&chain, g))
            .collect();
        let members: Vec<PanelMember<'_>> = chains
            .iter()
            .map(|c| PanelMember {
                ctmc: c,
                times: &times,
            })
            .collect();
        let panel =
            measure_curves_panel(&members, &alpha, &measure, &opts, &Budget::unlimited()).unwrap();
        assert_eq!(panel.panel_sizes, vec![4]);
        let mut solo_touched = 0u64;
        for (m, got) in members.iter().zip(&panel.curves) {
            let solo = measure_curve(m.ctmc, &alpha, m.times, &measure, &opts).unwrap();
            assert_eq!(*got, solo);
            solo_touched += solo.touched_entries;
        }
        // The saving is real: the union read beats k independent reads.
        assert!(
            panel.panel_touched_entries < solo_touched,
            "panel {} vs solo {}",
            panel.panel_touched_entries,
            solo_touched
        );
        // And not trivially (k = 4 near-identical windows should share
        // most of the traffic).
        assert!(solo_touched as f64 / panel.panel_touched_entries as f64 > 1.5);
    }

    #[test]
    fn panel_of_one_degenerates_to_the_single_path() {
        let n = 200;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let times = [10.0, 60.0];
        let opts = windowed_opts();
        let members = [PanelMember {
            ctmc: &chain,
            times: &times,
        }];
        let panel =
            measure_curves_panel(&members, &alpha, &measure, &opts, &Budget::unlimited()).unwrap();
        let solo = measure_curve(&chain, &alpha, &times, &measure, &opts).unwrap();
        assert_eq!(panel.panel_sizes, vec![1]);
        assert_eq!(panel.curves, vec![solo.clone()]);
        assert_eq!(panel.panel_touched_entries, solo.touched_entries);
    }

    #[test]
    fn panel_handles_ragged_horizons_and_early_convergence() {
        // Two columns over the same matrix bits with very different
        // horizons: the short one stops at its own Poisson right point
        // while the long one keeps multiplying until the iterates reach
        // steady state — per-column n_max, allowance and convergence.
        let n = 200;
        let chain = lattice_chain(n, 2.0, 0.1);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let short = [3.0];
        let long = [100.0, 400.0];
        let opts = windowed_opts();
        let members = [
            PanelMember {
                ctmc: &chain,
                times: &short,
            },
            PanelMember {
                ctmc: &chain,
                times: &long,
            },
        ];
        let panel =
            measure_curves_panel(&members, &alpha, &measure, &opts, &Budget::unlimited()).unwrap();
        assert_eq!(panel.panel_sizes, vec![2]);
        let solo_short = measure_curve(&chain, &alpha, &short, &measure, &opts).unwrap();
        let solo_long = measure_curve(&chain, &alpha, &long, &measure, &opts).unwrap();
        assert_eq!(panel.curves[0], solo_short);
        assert_eq!(panel.curves[1], solo_long);
        // The scenario actually exercises raggedness: the short column
        // does strictly fewer products, and the long column hits steady
        // state before its (much larger) right point.
        assert!(panel.curves[0].iterations < panel.curves[1].iterations);
        assert_eq!(panel.curves[0].converged_at, None);
        assert!(panel.curves[1].converged_at.is_some());
    }

    #[test]
    fn panel_budget_cancellation_reports_per_column_completed_work() {
        // The budget is checked once per live column per iteration,
        // before the joint product — the same cadence as k serial
        // solves. With k = 3 columns and 4 allowed checks, iteration 1
        // performs 3 checks (all with 0 completed products) and 3
        // column products; iteration 2's second check is the fifth call
        // and fails, reporting the 3 products done.
        let n = 200;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        let times = [10.0, 60.0];
        let opts = windowed_opts();
        let chains: Vec<Ctmc> = [0.25, 0.5, 1.0]
            .iter()
            .map(|&g| scaled_chain(&chain, g))
            .collect();
        let members: Vec<PanelMember<'_>> = chains
            .iter()
            .map(|c| PanelMember {
                ctmc: c,
                times: &times,
            })
            .collect();
        let err = measure_curves_panel(
            &members,
            &alpha,
            &measure,
            &opts,
            &Budget::cancelled_after_checks(4),
        )
        .unwrap_err();
        assert_eq!(err, MarkovError::DeadlineExceeded { completed: 3 });
        // An already-expired budget fails before any product.
        let err = measure_curves_panel(
            &members,
            &alpha,
            &measure,
            &opts,
            &Budget::cancelled_after_checks(0),
        )
        .unwrap_err();
        assert_eq!(err, MarkovError::DeadlineExceeded { completed: 0 });
    }

    #[test]
    fn panel_routes_ineligible_members_to_the_serial_engine() {
        let n = 200;
        let chain = lattice_chain(n, 1.0, 0.3);
        let alpha = point_mass(n, n - 1);
        let mut measure = vec![0.0; n];
        measure[0] = 1.0;
        // A t_max = 0 member (constant curve) mixed with a windowed
        // pair: the constant member forms its own size-1 panel and runs
        // the plain engine; the pair panels.
        let zero = [0.0];
        let times = [10.0, 60.0];
        let half = scaled_chain(&chain, 0.5);
        let opts = windowed_opts();
        let members = [
            PanelMember {
                ctmc: &chain,
                times: &zero,
            },
            PanelMember {
                ctmc: &chain,
                times: &times,
            },
            PanelMember {
                ctmc: &half,
                times: &times,
            },
        ];
        let panel =
            measure_curves_panel(&members, &alpha, &measure, &opts, &Budget::unlimited()).unwrap();
        assert_eq!(panel.panel_sizes, vec![1, 2]);
        for (m, got) in members.iter().zip(&panel.curves) {
            let solo = measure_curve(m.ctmc, &alpha, m.times, &measure, &opts).unwrap();
            assert_eq!(*got, solo);
        }
        // CSR never panels: every member becomes a size-1 group and the
        // curves still match the single-vector engine point for point.
        let csr = TransientOptions {
            representation: Representation::Csr,
            ..Default::default()
        };
        let csr_panel =
            measure_curves_panel(&members[1..], &alpha, &measure, &csr, &Budget::unlimited())
                .unwrap();
        assert_eq!(csr_panel.panel_sizes, vec![1, 1]);
        for (m, got) in members[1..].iter().zip(&csr_panel.curves) {
            let solo = measure_curve(m.ctmc, &alpha, m.times, &measure, &csr).unwrap();
            assert_eq!(got.points, solo.points);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// Panel-vs-sequential bit-identity across random chain sizes,
        /// rescale factors, panel widths and thread counts: every curve
        /// a panel returns equals the one a fresh single-vector solve
        /// of the same member produces.
        #[test]
        fn panel_matches_single_curves(
            n in 24usize..120,
            down in 0.3f64..2.0,
            up in 0.0f64..1.0,
            t in 5.0f64..60.0,
            threads in 1usize..=8,
            gammas in proptest::collection::vec(0usize..5, 1..8),
            windowed in 0usize..2,
        ) {
            use proptest::prelude::*;
            let windowed = windowed == 1;
            let scales = [0.125, 0.25, 0.5, 1.0, 2.0];
            let chain = lattice_chain(n, down, up);
            let alpha = point_mass(n, n - 1);
            let mut measure = vec![0.0; n];
            measure[0] = 1.0;
            let opts = TransientOptions {
                representation: Representation::Banded,
                active_window: windowed,
                threads,
                ..Default::default()
            };
            let chains: Vec<Ctmc> =
                gammas.iter().map(|&g| scaled_chain(&chain, scales[g])).collect();
            // Stagger the horizons so panels are ragged more often than
            // not.
            let times: Vec<[f64; 2]> = (0..chains.len())
                .map(|j| [t / (j + 1) as f64, t])
                .collect();
            let members: Vec<PanelMember<'_>> = chains
                .iter()
                .zip(&times)
                .map(|(c, ts)| PanelMember { ctmc: c, times: ts })
                .collect();
            let panel =
                measure_curves_panel(&members, &alpha, &measure, &opts, &Budget::unlimited())
                    .unwrap();
            prop_assert_eq!(
                panel.panel_sizes.iter().sum::<usize>(),
                members.len()
            );
            for (m, got) in members.iter().zip(&panel.curves) {
                let solo = measure_curve(m.ctmc, &alpha, m.times, &measure, &opts).unwrap();
                // With the window off the members run serially through a
                // shared cache, whose reuse changes the per-call work
                // counters (never the values); panelled members carry
                // full single-solve diagnostics.
                if windowed {
                    prop_assert_eq!(got, &solo);
                } else {
                    prop_assert_eq!(&got.points, &solo.points);
                }
            }
        }

        /// The satellite property: across random lattice chains, time
        /// horizons and thread counts 1–8, window trimming never loses
        /// more than the documented ε mass and the curve stays within ε
        /// of the sequential CSR engine.
        #[test]
        fn window_trimming_bounded_by_epsilon(
            n in 32usize..160,
            down in 0.3f64..2.0,
            up in 0.0f64..1.0,
            t in 5.0f64..80.0,
            threads in 1usize..=8,
        ) {
            use proptest::prelude::*;
            let chain = lattice_chain(n, down, up);
            let alpha = point_mass(n, n - 1);
            let mut measure = vec![0.0; n];
            measure[0] = 1.0;
            let eps = 1e-10;
            let times = [t / 4.0, t];
            let csr = measure_curve(&chain, &alpha, &times, &measure, &TransientOptions {
                epsilon: eps,
                representation: Representation::Csr,
                threads: 1,
                ..Default::default()
            }).unwrap();
            let windowed = measure_curve(&chain, &alpha, &times, &measure, &TransientOptions {
                epsilon: eps,
                representation: Representation::Banded,
                active_window: true,
                threads,
                ..Default::default()
            }).unwrap();
            // Documented deficit bound: half the ε budget (measure is an
            // indicator, so no ‖m‖∞ scaling).
            prop_assert!(windowed.window_deficit <= eps / 2.0,
                "deficit {} > {}", windowed.window_deficit, eps / 2.0);
            // Each engine is within ε of the true curve (CSR: full ε to
            // Fox–Glynn; windowed: ε/2 + ε/2), so their distance is
            // provably ≤ 2ε — assert the provable bound, not ε, so a
            // run where both engines land near-budget on opposite sides
            // cannot fail spuriously.
            for (a, w) in csr.points.iter().zip(&windowed.points) {
                prop_assert!((a.1 - w.1).abs() <= 2.0 * eps,
                    "t = {}: csr {} vs windowed {}", a.0, a.1, w.1);
            }
        }
    }
}
