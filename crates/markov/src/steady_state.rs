//! Stationary distributions: GTH elimination (dense) and Gauss–Seidel
//! (sparse).
//!
//! The paper calibrates its burst workload so that the steady-state
//! probability of sending matches the simple model
//! (`λ_burst = 182/h ⇒ P[send] = ¼`); these solvers reproduce that
//! calibration and back the workload test-suite.

use crate::ctmc::Ctmc;
use crate::MarkovError;

/// Computes the stationary distribution of an irreducible CTMC by
/// Grassmann–Taksar–Heyman elimination on the dense generator.
///
/// GTH performs Gaussian elimination without any subtractions, which makes
/// it backward stable regardless of how stiff the rates are. Memory is
/// `O(n²)` — intended for workload-sized chains (`n ≲ 3000`).
///
/// # Errors
///
/// [`MarkovError::NoConvergence`] when the chain is reducible (a pivot row
/// has no outgoing probability inside the remaining block).
///
/// # Examples
///
/// ```
/// use markov::ctmc::CtmcBuilder;
/// use markov::steady_state::stationary_gth;
///
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 1.0).unwrap();
/// b.rate(1, 0, 3.0).unwrap();
/// let pi = stationary_gth(&b.build().unwrap()).unwrap();
/// assert!((pi[0] - 0.75).abs() < 1e-12);
/// ```
pub fn stationary_gth(ctmc: &Ctmc) -> Result<Vec<f64>, MarkovError> {
    let n = ctmc.n_states();
    if n == 1 {
        return Ok(vec![1.0]);
    }
    let mut q = ctmc.generator_dense();

    // Elimination from the last state down to state 1.
    for k in (1..n).rev() {
        let scale: f64 = (0..k).map(|j| q[(k, j)]).sum();
        if scale <= 0.0 {
            return Err(MarkovError::NoConvergence(format!(
                "GTH pivot {k} has no outgoing rate into the remaining block \
                 (chain reducible?)"
            )));
        }
        for i in 0..k {
            let w = q[(i, k)] / scale;
            q[(i, k)] = w;
        }
        for i in 0..k {
            let w = q[(i, k)];
            if w == 0.0 {
                continue;
            }
            for j in 0..k {
                if j != i {
                    let add = w * q[(k, j)];
                    q[(i, j)] += add;
                }
            }
        }
    }

    // Back substitution.
    let mut pi = vec![0.0; n];
    pi[0] = 1.0;
    for k in 1..n {
        let mut acc = 0.0;
        for i in 0..k {
            acc += pi[i] * q[(i, k)];
        }
        pi[k] = acc;
    }
    let total: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= total;
    }
    Ok(pi)
}

/// Options for [`stationary_gauss_seidel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussSeidelOptions {
    /// Stop when the sup-norm change of a sweep falls below this.
    pub tolerance: f64,
    /// Maximum number of sweeps before giving up.
    pub max_sweeps: usize,
}

impl Default for GaussSeidelOptions {
    fn default() -> Self {
        GaussSeidelOptions {
            tolerance: 1e-12,
            max_sweeps: 100_000,
        }
    }
}

/// Computes the stationary distribution of an irreducible CTMC by
/// Gauss–Seidel iteration on the balance equations
/// `π_j q_j = Σ_{i≠j} π_i q_{ij}`, using only `O(nnz)` memory.
///
/// # Errors
///
/// [`MarkovError::NoConvergence`] when `max_sweeps` is exhausted, or
/// [`MarkovError::InvalidArgument`] when some state has zero exit rate
/// (the chain is then absorbing, not irreducible).
pub fn stationary_gauss_seidel(
    ctmc: &Ctmc,
    opts: &GaussSeidelOptions,
) -> Result<Vec<f64>, MarkovError> {
    let n = ctmc.n_states();
    if n == 1 {
        return Ok(vec![1.0]);
    }
    if (0..n).any(|i| ctmc.exit_rate(i) == 0.0) {
        return Err(MarkovError::InvalidArgument(
            "stationary distribution undefined: chain has absorbing states".into(),
        ));
    }
    // Incoming-rate view: row j of the transpose lists (i, q_ij).
    let incoming = ctmc.rates().transpose();
    let mut pi = vec![1.0 / n as f64; n];
    for _sweep in 0..opts.max_sweeps {
        let mut delta: f64 = 0.0;
        for j in 0..n {
            let mut acc = 0.0;
            for (i, rate) in incoming.row(j) {
                acc += pi[i] * rate;
            }
            let new = acc / ctmc.exit_rate(j);
            delta = delta.max((new - pi[j]).abs());
            pi[j] = new;
        }
        // Normalise every sweep to prevent drift toward 0 or ∞.
        let total: f64 = pi.iter().sum();
        if total <= 0.0 {
            return Err(MarkovError::NoConvergence("mass vanished".into()));
        }
        for p in &mut pi {
            *p /= total;
        }
        if delta < opts.tolerance {
            return Ok(pi);
        }
    }
    Err(MarkovError::NoConvergence(format!(
        "Gauss-Seidel did not reach tolerance in {} sweeps",
        opts.max_sweeps
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn birth_death(n: usize, up: f64, down: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(n);
        for i in 0..n - 1 {
            b.rate(i, i + 1, up).unwrap();
            b.rate(i + 1, i, down).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn two_state_closed_form() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 3.0).unwrap();
        let chain = b.build().unwrap();
        let pi = stationary_gth(&chain).unwrap();
        assert!((pi[0] - 0.6).abs() < 1e-14);
        assert!((pi[1] - 0.4).abs() < 1e-14);
    }

    #[test]
    fn birth_death_geometric() {
        // π_i ∝ (up/down)^i.
        let chain = birth_death(5, 1.0, 2.0);
        let pi = stationary_gth(&chain).unwrap();
        let rho: f64 = 0.5;
        let norm: f64 = (0..5).map(|i| rho.powi(i)).sum();
        for i in 0..5 {
            assert!(
                (pi[i] - rho.powi(i as i32) / norm).abs() < 1e-13,
                "state {i}"
            );
        }
    }

    #[test]
    fn simple_model_steady_state_is_half_quarter_quarter() {
        // The paper's Fig. 4 workload: idle→send (λ=2), send→idle (µ=6),
        // idle→sleep (τ=1), sleep→send (λ=2). π = (½, ¼, ¼).
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 6.0).unwrap();
        b.rate(0, 2, 1.0).unwrap();
        b.rate(2, 1, 2.0).unwrap();
        let chain = b.build().unwrap();
        let pi = stationary_gth(&chain).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-12, "idle: {}", pi[0]);
        assert!((pi[1] - 0.25).abs() < 1e-12, "send: {}", pi[1]);
        assert!((pi[2] - 0.25).abs() < 1e-12, "sleep: {}", pi[2]);
    }

    #[test]
    fn gth_detects_reducible_chain() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        // State 2 unreachable and cannot leave.
        let chain = b.build().unwrap();
        assert!(matches!(
            stationary_gth(&chain),
            Err(MarkovError::NoConvergence(_))
        ));
    }

    #[test]
    fn singleton_chain() {
        let chain = CtmcBuilder::new(1).build().unwrap();
        assert_eq!(stationary_gth(&chain).unwrap(), vec![1.0]);
        assert_eq!(
            stationary_gauss_seidel(&chain, &GaussSeidelOptions::default()).unwrap(),
            vec![1.0]
        );
    }

    #[test]
    fn gauss_seidel_matches_gth() {
        let chain = birth_death(20, 1.3, 1.0);
        let exact = stationary_gth(&chain).unwrap();
        let approx = stationary_gauss_seidel(&chain, &GaussSeidelOptions::default()).unwrap();
        for i in 0..20 {
            assert!((exact[i] - approx[i]).abs() < 1e-9, "state {i}");
        }
    }

    #[test]
    fn gauss_seidel_rejects_absorbing() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let chain = b.build().unwrap();
        assert!(matches!(
            stationary_gauss_seidel(&chain, &GaussSeidelOptions::default()),
            Err(MarkovError::InvalidArgument(_))
        ));
    }

    #[test]
    fn gauss_seidel_iteration_limit() {
        let chain = birth_death(10, 1.0, 1.0);
        let opts = GaussSeidelOptions {
            tolerance: 0.0,
            max_sweeps: 3,
        };
        assert!(matches!(
            stationary_gauss_seidel(&chain, &opts),
            Err(MarkovError::NoConvergence(_))
        ));
    }

    #[test]
    fn stationary_satisfies_balance_equations() {
        let chain = birth_death(8, 2.0, 1.5);
        let pi = stationary_gth(&chain).unwrap();
        // πQ = 0.
        let q = chain.generator_dense();
        let residual = q.vecmul(&pi).unwrap();
        for (j, r) in residual.iter().enumerate() {
            assert!(r.abs() < 1e-12, "column {j}: residual {r}");
        }
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-13);
    }
}
