//! Discrete-time Markov chains, chiefly the embedded jump chain of a CTMC.
//!
//! The embedded chain is used by the simulation engine (state sequencing)
//! and by tests that validate the uniformised matrix `P = I + Q/ν`.

use crate::ctmc::Ctmc;
use crate::sparse::CsrMatrix;
use crate::MarkovError;

/// A discrete-time Markov chain with a row-stochastic transition matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    p: CsrMatrix,
}

impl Dtmc {
    /// Wraps a row-stochastic matrix as a DTMC.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] for non-square matrices, rows not
    /// summing to one (tolerance `1e-9`), or negative entries.
    pub fn new(p: CsrMatrix) -> Result<Self, MarkovError> {
        if p.rows() != p.cols() {
            return Err(MarkovError::InvalidArgument(format!(
                "transition matrix must be square, got {}x{}",
                p.rows(),
                p.cols()
            )));
        }
        if p.rows() == 0 {
            return Err(MarkovError::EmptyChain);
        }
        for r in 0..p.rows() {
            let mut total = 0.0;
            for (_, v) in p.row(r) {
                if v < 0.0 {
                    return Err(MarkovError::InvalidArgument(format!(
                        "negative probability in row {r}"
                    )));
                }
                total += v;
            }
            if (total - 1.0).abs() > 1e-9 {
                return Err(MarkovError::InvalidArgument(format!(
                    "row {r} sums to {total}, expected 1"
                )));
            }
        }
        Ok(Dtmc { p })
    }

    /// The embedded jump chain of a CTMC: `p_{ij} = q_{ij}/q_i` for
    /// transient states, a self-loop for absorbing ones.
    ///
    /// # Errors
    ///
    /// Propagates sparse-assembly errors (none occur for valid chains).
    pub fn embedded(ctmc: &Ctmc) -> Result<Self, MarkovError> {
        let n = ctmc.n_states();
        let mut trip = Vec::with_capacity(ctmc.n_transitions() + n);
        for i in 0..n {
            let qi = ctmc.exit_rate(i);
            if qi == 0.0 {
                trip.push((i, i, 1.0));
            } else {
                for (j, rate) in ctmc.rates().row(i) {
                    trip.push((i, j, rate / qi));
                }
            }
        }
        Dtmc::new(CsrMatrix::from_triplets(n, n, trip)?)
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.p.rows()
    }

    /// The transition matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// One step of the distribution dynamics: `v ↦ vP`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on length mismatch.
    pub fn step(&self, v: &[f64]) -> Result<Vec<f64>, MarkovError> {
        self.p.vec_mul(v)
    }

    /// `n`-step distribution starting from `alpha`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on length mismatch.
    pub fn distribution_after(&self, alpha: &[f64], n: usize) -> Result<Vec<f64>, MarkovError> {
        let mut v = alpha.to_vec();
        for _ in 0..n {
            v = self.step(&v)?;
        }
        Ok(v)
    }

    /// Stationary distribution by power iteration with Cesàro averaging
    /// (which also converges for periodic chains).
    ///
    /// # Errors
    ///
    /// [`MarkovError::NoConvergence`] when `max_iter` is exhausted.
    pub fn stationary_power(
        &self,
        tolerance: f64,
        max_iter: usize,
    ) -> Result<Vec<f64>, MarkovError> {
        let n = self.n_states();
        let mut v = vec![1.0 / n as f64; n];
        for _ in 0..max_iter {
            let stepped = self.step(&v)?;
            // Cesàro smoothing: average of v and vP.
            let mixed: Vec<f64> = v.iter().zip(&stepped).map(|(a, b)| 0.5 * (a + b)).collect();
            let delta = v
                .iter()
                .zip(&mixed)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            v = mixed;
            if delta < tolerance {
                return Ok(v);
            }
        }
        Err(MarkovError::NoConvergence(
            "power iteration exhausted".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    #[test]
    fn rejects_bad_matrices() {
        let not_square = CsrMatrix::from_triplets(1, 2, vec![(0, 0, 1.0)]).unwrap();
        assert!(Dtmc::new(not_square).is_err());
        let bad_sum = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 0.7)]).unwrap();
        assert!(Dtmc::new(bad_sum).is_err());
        assert!(matches!(
            Dtmc::new(CsrMatrix::zeros(0, 0)),
            Err(MarkovError::EmptyChain)
        ));
        // Row sums to one but carries a negative entry.
        let negative =
            CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.5), (0, 1, -0.5), (1, 1, 1.0)]).unwrap();
        assert!(Dtmc::new(negative).is_err());
    }

    #[test]
    fn embedded_chain_of_ctmc() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(0, 2, 3.0).unwrap();
        // state 1, 2 absorbing.
        let c = b.build().unwrap();
        let d = Dtmc::embedded(&c).unwrap();
        assert_eq!(d.matrix().get(0, 1), 0.25);
        assert_eq!(d.matrix().get(0, 2), 0.75);
        assert_eq!(d.matrix().get(1, 1), 1.0);
        assert_eq!(d.n_states(), 3);
    }

    #[test]
    fn step_moves_mass() {
        let p = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let d = Dtmc::new(p).unwrap();
        assert_eq!(d.step(&[1.0, 0.0]).unwrap(), vec![0.0, 1.0]);
        assert_eq!(
            d.distribution_after(&[1.0, 0.0], 2).unwrap(),
            vec![1.0, 0.0]
        );
        assert!(d.step(&[1.0]).is_err());
    }

    #[test]
    fn stationary_power_on_periodic_chain() {
        // Pure 2-cycle is periodic; Cesàro averaging still converges to ½,½.
        let p = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let d = Dtmc::new(p).unwrap();
        let pi = d.stationary_power(1e-12, 100_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
        assert!((pi[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stationary_power_matches_ctmc_uniformisation() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 3.0).unwrap();
        let c = b.build().unwrap();
        let (p, _nu) = c.uniformised(1.02).unwrap();
        let d = Dtmc::new(p).unwrap();
        let pi = d.stationary_power(1e-13, 100_000).unwrap();
        // Uniformised chain shares the CTMC's stationary distribution.
        assert!((pi[0] - 0.75).abs() < 1e-9);
        assert!((pi[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn no_convergence_when_iterations_too_small() {
        let p = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let d = Dtmc::new(p).unwrap();
        assert!(matches!(
            d.stationary_power(0.0, 2),
            Err(MarkovError::NoConvergence(_))
        ));
    }
}
