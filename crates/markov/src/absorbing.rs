//! Absorption analysis: hitting probabilities and mean time to absorption.
//!
//! The discretised battery chain of the paper makes every `j₁ = 0` state
//! absorbing; the battery lifetime is the absorption time. Beyond the full
//! distribution (computed by uniformisation in [`crate::transient`]), this
//! module provides the classical linear-system characterisations of the
//! *mean* lifetime and of absorption probabilities, solved by Gauss–Seidel
//! so that only `O(nnz)` memory is needed.

use crate::ctmc::Ctmc;
use crate::MarkovError;

/// Options controlling the Gauss–Seidel solves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsorbingOptions {
    /// Sup-norm change threshold for convergence.
    pub tolerance: f64,
    /// Maximum sweeps.
    pub max_sweeps: usize,
}

impl Default for AbsorbingOptions {
    fn default() -> Self {
        AbsorbingOptions {
            tolerance: 1e-12,
            max_sweeps: 1_000_000,
        }
    }
}

/// Returns the absorbing-state indicator vector of the chain.
pub fn absorbing_states(ctmc: &Ctmc) -> Vec<bool> {
    (0..ctmc.n_states()).map(|i| ctmc.is_absorbing(i)).collect()
}

/// Probability, per start state, of eventually being absorbed in `target`
/// (which must be a subset of the absorbing states).
///
/// Solves `h_i = Σ_j (q_{ij}/q_i) h_j` for transient `i`, with `h = 1` on
/// `target` and `h = 0` on other absorbing states.
///
/// # Errors
///
/// [`MarkovError::InvalidArgument`] when `target` has the wrong length or
/// marks a non-absorbing state; [`MarkovError::NoConvergence`] when the
/// sweep limit is exhausted.
pub fn absorption_probabilities(
    ctmc: &Ctmc,
    target: &[bool],
    opts: &AbsorbingOptions,
) -> Result<Vec<f64>, MarkovError> {
    let n = ctmc.n_states();
    if target.len() != n {
        return Err(MarkovError::InvalidArgument(format!(
            "target mask has {} entries for {} states",
            target.len(),
            n
        )));
    }
    for (i, &is_target) in target.iter().enumerate() {
        if is_target && !ctmc.is_absorbing(i) {
            return Err(MarkovError::InvalidArgument(format!(
                "target state {i} is not absorbing"
            )));
        }
    }
    let mut h: Vec<f64> = target.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    let rates = ctmc.rates();
    for _ in 0..opts.max_sweeps {
        let mut delta: f64 = 0.0;
        for i in 0..n {
            let qi = ctmc.exit_rate(i);
            if qi == 0.0 {
                continue; // absorbing: h fixed by the boundary condition
            }
            let mut acc = 0.0;
            for (j, rate) in rates.row(i) {
                acc += rate * h[j];
            }
            let new = acc / qi;
            delta = delta.max((new - h[i]).abs());
            h[i] = new;
        }
        if delta < opts.tolerance {
            return Ok(h);
        }
    }
    Err(MarkovError::NoConvergence(format!(
        "absorption probabilities did not converge in {} sweeps",
        opts.max_sweeps
    )))
}

/// Mean time to absorption per start state.
///
/// Solves `m_i = 1/q_i + Σ_j (q_{ij}/q_i) m_j` for transient states
/// (`m = 0` on absorbing states) by Gauss–Seidel.
///
/// # Errors
///
/// [`MarkovError::InvalidArgument`] when the chain has no absorbing state
/// (the expectation is infinite); [`MarkovError::NoConvergence`] when the
/// sweep limit is exhausted — which also happens when some transient state
/// cannot reach an absorbing one.
pub fn mean_time_to_absorption(
    ctmc: &Ctmc,
    opts: &AbsorbingOptions,
) -> Result<Vec<f64>, MarkovError> {
    let n = ctmc.n_states();
    if !(0..n).any(|i| ctmc.is_absorbing(i)) {
        return Err(MarkovError::InvalidArgument(
            "mean time to absorption requires at least one absorbing state".into(),
        ));
    }
    let rates = ctmc.rates();
    let mut m = vec![0.0; n];
    for _ in 0..opts.max_sweeps {
        let mut delta: f64 = 0.0;
        for i in 0..n {
            let qi = ctmc.exit_rate(i);
            if qi == 0.0 {
                continue;
            }
            let mut acc = 0.0;
            for (j, rate) in rates.row(i) {
                acc += rate * m[j];
            }
            let new = (1.0 + acc) / qi;
            let diff = (new - m[i]).abs();
            delta = delta.max(diff / new.max(1.0));
            m[i] = new;
        }
        if delta < opts.tolerance {
            return Ok(m);
        }
    }
    Err(MarkovError::NoConvergence(format!(
        "mean absorption time did not converge in {} sweeps \
         (is absorption certain from every state?)",
        opts.max_sweeps
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    /// 0 → 1 → 2 with 2 absorbing.
    fn line() -> Ctmc {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 2, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn absorbing_state_detection() {
        let c = line();
        assert_eq!(absorbing_states(&c), vec![false, false, true]);
    }

    #[test]
    fn mean_time_series_chain() {
        // m_1 = 1/4, m_0 = 1/2 + m_1 = 3/4.
        let m = mean_time_to_absorption(&line(), &AbsorbingOptions::default()).unwrap();
        assert!((m[0] - 0.75).abs() < 1e-10);
        assert!((m[1] - 0.25).abs() < 1e-10);
        assert_eq!(m[2], 0.0);
    }

    #[test]
    fn mean_time_with_branching() {
        // 0 branches to absorbing 1 (rate 1) or loops through 2 (rate 1,
        // then back at rate 2). E[T_0] solves m0 = 1/2 + (1/2)m2,
        // m2 = 1/2 + m0 → m0 = 1/2 + 1/4 + m0/2 → m0 = 3/2, m2 = 2.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(0, 2, 1.0).unwrap();
        b.rate(2, 0, 2.0).unwrap();
        let c = b.build().unwrap();
        let m = mean_time_to_absorption(&c, &AbsorbingOptions::default()).unwrap();
        assert!((m[0] - 1.5).abs() < 1e-9, "m0 = {}", m[0]);
        assert!((m[2] - 2.0).abs() < 1e-9, "m2 = {}", m[2]);
    }

    #[test]
    fn mean_time_requires_absorbing_state() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            mean_time_to_absorption(&c, &AbsorbingOptions::default()),
            Err(MarkovError::InvalidArgument(_))
        ));
    }

    #[test]
    fn gambler_ruin_probabilities() {
        // States 0..=4; 0 and 4 absorbing; fair moves between neighbours.
        // Absorption in 4 from i has probability i/4.
        let mut b = CtmcBuilder::new(5);
        for i in 1..4 {
            b.rate(i, i - 1, 1.0).unwrap();
            b.rate(i, i + 1, 1.0).unwrap();
        }
        let c = b.build().unwrap();
        let mut target = vec![false; 5];
        target[4] = true;
        let h = absorption_probabilities(&c, &target, &AbsorbingOptions::default()).unwrap();
        for i in 0..5 {
            assert!((h[i] - i as f64 / 4.0).abs() < 1e-9, "state {i}: {}", h[i]);
        }
    }

    #[test]
    fn absorption_probability_validation() {
        let c = line();
        let opts = AbsorbingOptions::default();
        assert!(absorption_probabilities(&c, &[true, false], &opts).is_err());
        // Marking a transient state as target is rejected.
        assert!(absorption_probabilities(&c, &[true, false, false], &opts).is_err());
    }

    #[test]
    fn no_convergence_reported() {
        let c = line();
        let opts = AbsorbingOptions {
            tolerance: 0.0,
            max_sweeps: 2,
        };
        assert!(matches!(
            mean_time_to_absorption(&c, &opts),
            Err(MarkovError::NoConvergence(_))
        ));
    }

    #[test]
    fn two_absorbing_classes_split_mass() {
        // 1 → 0 (rate a), 1 → 2 (rate b): Pr[absorb in 2] = b/(a+b).
        let (a, b_rate) = (3.0, 1.0);
        let mut b = CtmcBuilder::new(3);
        b.rate(1, 0, a).unwrap();
        b.rate(1, 2, b_rate).unwrap();
        let c = b.build().unwrap();
        let mut target = vec![false; 3];
        target[2] = true;
        let h = absorption_probabilities(&c, &target, &AbsorbingOptions::default()).unwrap();
        assert!((h[1] - b_rate / (a + b_rate)).abs() < 1e-12);
        assert_eq!(h[0], 0.0);
        assert_eq!(h[2], 1.0);
    }
}
