//! Persistent worker pool for repeated sparse matrix–vector products.
//!
//! The paper's headline experiment (Fig. 8, `Δ = 5`) performs > 4.6·10⁴
//! products with the same ~10⁶-state matrix. The old
//! [`CsrMatrix::mul_vec_parallel`] spawned and joined `threads` OS
//! threads on **every** product — ~46k×threads spawns per curve — and
//! split rows by count, so the empty absorbing rows of the battery chain
//! left some workers idle. [`SpmvPool`] fixes both: workers are spawned
//! **once** per solve, fed per-iteration jobs over channels, and each
//! worker owns a contiguous row range balanced by non-zeros
//! ([`CsrMatrix::nnz_partition`]).
//!
//! The pool dispatches on matrix **representation**: every kernel takes
//! anything convertible to a [`MatrixRef`], so generic CSR chains and
//! banded lattice chains ([`crate::banded::BandedMatrix`]) run through
//! the same engine.
//!
//! The pool also exposes the fused SpMV+dot kernel
//! ([`SpmvPool::mul_vec_dot`]): each worker returns the partial dot of
//! its output block with a measure vector, so evaluating
//! `sₙ = measure·vₙ` costs no extra pass over the iterate. Partial dots
//! are reduced in worker order, making the result deterministic for a
//! fixed thread count. The `*_window` variants restrict a product to the
//! active row range of the windowed transient engine, partitioning just
//! those rows across the workers per call, and
//! [`SpmvPool::mul_panel_dot_sup`] advances a whole panel of windowed
//! columns sharing one matrix per call — one matrix read per iteration
//! for the panel, bit-identical per column to the single windowed
//! dispatch.
//!
//! With zero workers (`threads <= 1`) every method runs the sequential
//! kernel inline, bit-compatible with [`CsrMatrix::mul_vec_into`]. The
//! plain (non-fused) parallel product is *also* bit-compatible with the
//! sequential kernel, because every row is accumulated left-to-right by
//! exactly one worker; only the fused dot reduction depends on the
//! partition (each partial is summed in row order, partials are combined
//! in range order).

use crate::banded::{split_evenly, MatrixRef};
use crate::sparse::{CsrMatrix, PanelColumn};
use crate::MarkovError;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// The matrix pointer a [`Job`] carries: the raw-pointer twin of
/// [`MatrixRef`] (a borrowed enum cannot cross the channel, the referent
/// outlives the job by the dispatch contract).
#[derive(Clone, Copy)]
enum JobMatrix {
    Csr(*const CsrMatrix),
    Banded(*const crate::banded::BandedMatrix),
}

impl JobMatrix {
    fn of(matrix: MatrixRef<'_>) -> JobMatrix {
        match matrix {
            MatrixRef::Csr(m) => JobMatrix::Csr(m),
            MatrixRef::Banded(m) => JobMatrix::Banded(m),
        }
    }

    /// # Safety
    ///
    /// The referent must outlive the returned borrow (guaranteed by the
    /// dispatch handshake: the caller blocks until the worker is done).
    unsafe fn as_ref<'a>(self) -> MatrixRef<'a> {
        match self {
            JobMatrix::Csr(m) => MatrixRef::Csr(&*m),
            JobMatrix::Banded(m) => MatrixRef::Banded(&*m),
        }
    }
}

/// One unit of work: compute `y[rows] = (A·x)[rows]` and (optionally) the
/// partial dot with `measure[rows]`.
///
/// The pointers are raw because the pool outlives any single borrow: the
/// *caller* guarantees the referents stay alive and untouched until the
/// completion message for this job arrives (all dispatch methods block
/// on exactly that). Each job writes only `y[rows]`, and in-flight jobs
/// targeting the same output buffer carry disjoint ranges (panel
/// dispatches target per-column buffers that are distinct by `&mut`
/// exclusivity), so no two workers alias the same output memory.
struct Job {
    matrix: JobMatrix,
    x: *const f64,
    x_len: usize,
    y: *mut f64,
    measure: *const f64, // null ⇒ plain SpMV, no dot
    /// Also fold the steady-state sup-norm `max |y[r] − x[r]|` into the
    /// pass (square matrices only; composes with or without `measure`).
    sup: bool,
    /// Panel column this job advances (0 for single-vector dispatches);
    /// echoed in the completion message so panel collections can route
    /// each partial to its column.
    tag: usize,
    rows: Range<usize>,
}

// SAFETY: the raw pointers refer to caller-owned buffers that outlive the
// job (the dispatching call blocks until the worker acknowledges), and
// disjoint row ranges guarantee exclusive access to the written slice.
unsafe impl Send for Job {}

/// A persistent pool of SpMV workers; see the module docs.
///
/// # Examples
///
/// ```
/// use markov::pool::SpmvPool;
/// use markov::sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 2.0), (1, 0, 1.0)]).unwrap();
/// let pool = SpmvPool::with_exact_threads(2);
/// let partition = m.nnz_partition(pool.threads());
/// let mut y = vec![0.0; 2];
/// pool.mul_vec(&m, &partition, &[3.0, 0.0], &mut y).unwrap();
/// assert_eq!(y, vec![6.0, 3.0]);
/// ```
#[derive(Debug)]
pub struct SpmvPool {
    /// One dedicated channel per worker, so job `i` always lands on the
    /// worker owning partition range `i`.
    job_txs: Vec<Sender<Job>>,
    /// Completion stream: `(worker index, column tag, partial dot,
    /// partial sup)` per job.
    done_rx: Receiver<(usize, usize, f64, f64)>,
    handles: Vec<JoinHandle<()>>,
}

impl SpmvPool {
    /// Spawns up to `threads` workers; none when the effective count is
    /// ≤ 1 (the caller's thread then runs the sequential kernel inline).
    ///
    /// The worker count is clamped to the machine's available
    /// parallelism: SpMV is compute-bound, so workers beyond the core
    /// count only add scheduling overhead. Use
    /// [`SpmvPool::with_exact_threads`] to bypass the clamp (benchmarks
    /// measuring oversubscription do).
    pub fn new(threads: usize) -> SpmvPool {
        SpmvPool::with_exact_threads(SpmvPool::clamped_threads(threads))
    }

    /// The worker count [`SpmvPool::new`] would actually use for a
    /// request of `threads`: clamped to the machine's available
    /// parallelism. Exposed so metadata consumers (e.g. the benchmark
    /// baselines) report the same number the pool runs with instead of
    /// re-implementing the clamp.
    pub fn clamped_threads(threads: usize) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        threads.min(cores)
    }

    /// [`SpmvPool::new`] without the available-parallelism clamp.
    pub fn with_exact_threads(threads: usize) -> SpmvPool {
        let workers = if threads > 1 { threads } else { 0 };
        let (done_tx, done_rx) = channel::<(usize, usize, f64, f64)>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (tx, rx) = channel::<Job>();
            let done = done_tx.clone();
            job_txs.push(tx);
            handles.push(std::thread::spawn(move || worker_loop(index, &rx, &done)));
        }
        SpmvPool {
            job_txs,
            done_rx,
            handles,
        }
    }

    /// Number of row ranges to partition work into: the worker count, or
    /// 1 when the pool is inline-sequential.
    pub fn threads(&self) -> usize {
        self.job_txs.len().max(1)
    }

    /// `true` when the pool runs everything inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.job_txs.is_empty()
    }

    fn check_dims(
        &self,
        matrix: MatrixRef<'_>,
        partition: &[Range<usize>],
        x: &[f64],
        y: &[f64],
        measure: Option<&[f64]>,
    ) -> Result<(), MarkovError> {
        if x.len() != matrix.cols() || y.len() != matrix.rows() {
            return Err(MarkovError::InvalidArgument(format!(
                "pool mul_vec: x has {} (need {}), y has {} (need {})",
                x.len(),
                matrix.cols(),
                y.len(),
                matrix.rows()
            )));
        }
        if let Some(m) = measure {
            if m.len() != matrix.rows() {
                return Err(MarkovError::InvalidArgument(format!(
                    "pool mul_vec: measure has {} entries, need {}",
                    m.len(),
                    matrix.rows()
                )));
            }
        }
        if self.is_sequential() {
            return Ok(());
        }
        // Every range must be well-formed and in-bounds on its own —
        // workers turn these into raw-pointer slices, so a single
        // overshooting range (e.g. `[0..10, 10..5]` on a 5-row matrix,
        // which is "contiguous" pairwise) must be rejected here, not
        // caught by a debug assert in the kernel.
        let well_formed = partition
            .iter()
            .all(|r| r.start <= r.end && r.end <= matrix.rows());
        let contiguous = partition.windows(2).all(|w| w[0].end == w[1].start);
        if partition.len() != self.job_txs.len()
            || partition.first().map(|r| r.start) != Some(0)
            || partition.last().map(|r| r.end) != Some(matrix.rows())
            || !well_formed
            || !contiguous
        {
            return Err(MarkovError::InvalidArgument(format!(
                "pool mul_vec: partition must be {} contiguous ranges covering 0..{} \
                 (use matrix.partition(pool.threads()))",
                self.job_txs.len(),
                matrix.rows()
            )));
        }
        Ok(())
    }

    /// Dispatches one SpMV (optionally fused with a dot) across the
    /// workers and blocks until all row ranges are done. Returns the dot
    /// (0.0 for plain products), reduced in partition order.
    fn dispatch(
        &self,
        matrix: MatrixRef<'_>,
        partition: &[Range<usize>],
        x: &[f64],
        y: &mut [f64],
        measure: Option<&[f64]>,
        sup: bool,
    ) -> (f64, f64) {
        let measure_ptr = measure.map_or(std::ptr::null(), <[f64]>::as_ptr);
        let y_ptr = y.as_mut_ptr();
        for (tx, rows) in self.job_txs.iter().zip(partition) {
            let job = Job {
                matrix: JobMatrix::of(matrix),
                x: x.as_ptr(),
                x_len: x.len(),
                y: y_ptr,
                measure: measure_ptr,
                sup,
                tag: 0,
                rows: rows.clone(),
            };
            tx.send(job).expect("spmv worker hung up");
        }
        // Collect every acknowledgement before letting the borrows of
        // matrix/x/y go — this is what makes the raw pointers in Job
        // sound. Reduce dot partials in worker (= row-range) order so the
        // fused dot is deterministic for a fixed thread count; max is
        // order-independent.
        let mut partials = vec![0.0; self.job_txs.len()];
        let mut sup_norm = 0.0f64;
        for _ in 0..self.job_txs.len() {
            let (index, _tag, partial_dot, partial_sup) =
                self.done_rx.recv().expect("spmv worker died");
            partials[index] = partial_dot;
            sup_norm = sup_norm.max(partial_sup);
        }
        (partials.iter().sum(), sup_norm)
    }

    /// `y = A·x` over the pool. `partition` must come from
    /// [`MatrixRef::partition`]`(pool.threads())` for this matrix (or
    /// any contiguous disjoint cover of the rows with one range per
    /// worker). Bit-identical to the sequential kernel.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension or partition
    /// mismatch.
    pub fn mul_vec<'a>(
        &self,
        matrix: impl Into<MatrixRef<'a>>,
        partition: &[Range<usize>],
        x: &[f64],
        y: &mut [f64],
    ) -> Result<(), MarkovError> {
        let matrix = matrix.into();
        self.check_dims(matrix, partition, x, y, None)?;
        if self.is_sequential() {
            matrix.mul_vec_range_into(x, y, 0..matrix.rows());
            return Ok(());
        }
        self.dispatch(matrix, partition, x, y, None, false);
        Ok(())
    }

    /// Fused `y = A·x` returning `measure·y`, with the dot accumulated
    /// per row range and reduced in range order (deterministic for a
    /// fixed thread count; agrees with the sequential fused kernel to
    /// floating-point reassociation, ≲ 1e-15 relative).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension or partition
    /// mismatch.
    pub fn mul_vec_dot<'a>(
        &self,
        matrix: impl Into<MatrixRef<'a>>,
        partition: &[Range<usize>],
        x: &[f64],
        y: &mut [f64],
        measure: &[f64],
    ) -> Result<f64, MarkovError> {
        let matrix = matrix.into();
        self.check_dims(matrix, partition, x, y, Some(measure))?;
        if self.is_sequential() {
            return Ok(matrix.mul_vec_dot_range(x, y, measure, 0..matrix.rows()));
        }
        Ok(self
            .dispatch(matrix, partition, x, y, Some(measure), false)
            .0)
    }

    /// `y = A·x` for square iteration matrices, returning the
    /// steady-state sup-norm `max_r |y[r] − x[r]|` from the same pass
    /// (no measure dot; the max reduction is exact and
    /// order-independent, so the result matches the sequential kernel
    /// bitwise for every partition).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension or partition
    /// mismatch, or when the matrix is not square.
    pub fn mul_vec_sup<'a>(
        &self,
        matrix: impl Into<MatrixRef<'a>>,
        partition: &[Range<usize>],
        x: &[f64],
        y: &mut [f64],
    ) -> Result<f64, MarkovError> {
        let matrix = matrix.into();
        require_square(matrix, "mul_vec_sup")?;
        self.check_dims(matrix, partition, x, y, None)?;
        if self.is_sequential() {
            return Ok(matrix.mul_vec_sup_range(x, y, 0..matrix.rows()));
        }
        Ok(self.dispatch(matrix, partition, x, y, None, true).1)
    }

    /// Fully fused `y = A·x` for square iteration matrices: returns
    /// `(measure·y, max_r |y[r] − x[r]|)` from the same pass — the curve
    /// engine's per-iteration measure **and** steady-state detector with
    /// zero extra sweeps over the iterate. Dot determinism is as for
    /// [`SpmvPool::mul_vec_dot`]; the sup-norm reduction (max) is exact
    /// and order-independent.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension or partition
    /// mismatch, or when the matrix is not square.
    pub fn mul_vec_dot_sup<'a>(
        &self,
        matrix: impl Into<MatrixRef<'a>>,
        partition: &[Range<usize>],
        x: &[f64],
        y: &mut [f64],
        measure: &[f64],
    ) -> Result<(f64, f64), MarkovError> {
        let matrix = matrix.into();
        require_square(matrix, "mul_vec_dot_sup")?;
        self.check_dims(matrix, partition, x, y, Some(measure))?;
        if self.is_sequential() {
            return Ok(matrix.mul_vec_dot_sup_range(x, y, measure, 0..matrix.rows()));
        }
        Ok(self.dispatch(matrix, partition, x, y, Some(measure), true))
    }

    /// [`SpmvPool::mul_vec_sup`] restricted to the row range `window`:
    /// only `y[window]` is written, everything else is left untouched,
    /// and the sup-norm covers the window rows only. The window is
    /// split evenly across the workers per call (it changes every
    /// iteration in the active-window engine, so there is no static
    /// partition to reuse).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension mismatch, a window
    /// beyond the rows, or a non-square matrix.
    pub fn mul_vec_sup_window<'a>(
        &self,
        matrix: impl Into<MatrixRef<'a>>,
        x: &[f64],
        y: &mut [f64],
        window: Range<usize>,
    ) -> Result<f64, MarkovError> {
        let matrix = matrix.into();
        require_square(matrix, "mul_vec_sup_window")?;
        check_window(matrix, x, y, None, &window)?;
        if self.is_sequential() || window.len() < self.threads() {
            return Ok(matrix.mul_vec_sup_range(x, &mut y[window.clone()], window));
        }
        let partition = split_evenly(window, self.threads());
        Ok(self.dispatch(matrix, &partition, x, y, None, true).1)
    }

    /// [`SpmvPool::mul_vec_dot_sup`] restricted to the row range
    /// `window`; see [`SpmvPool::mul_vec_sup_window`] for the window
    /// contract.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension mismatch, a window
    /// beyond the rows, or a non-square matrix.
    pub fn mul_vec_dot_sup_window<'a>(
        &self,
        matrix: impl Into<MatrixRef<'a>>,
        x: &[f64],
        y: &mut [f64],
        measure: &[f64],
        window: Range<usize>,
    ) -> Result<(f64, f64), MarkovError> {
        let matrix = matrix.into();
        require_square(matrix, "mul_vec_dot_sup_window")?;
        check_window(matrix, x, y, Some(measure), &window)?;
        if self.is_sequential() || window.len() < self.threads() {
            return Ok(matrix.mul_vec_dot_sup_range(
                x,
                &mut y[window.clone()],
                &measure[window.clone()],
                window,
            ));
        }
        let partition = split_evenly(window, self.threads());
        Ok(self.dispatch(matrix, &partition, x, y, Some(measure), true))
    }

    /// Panel twin of [`SpmvPool::mul_vec_dot_sup_window`]: advances
    /// every column of `cols` through the shared matrix in one call,
    /// returning `(dot, sup)` per column in column order.
    ///
    /// **Bit-identity contract:** each column's results are identical
    /// to a separate [`SpmvPool::mul_vec_dot_sup_window`] call on this
    /// pool with that column's `(x, y, measure, rows)`. Sequential
    /// pools run the true column-interleaved panel kernel
    /// ([`MatrixRef::mul_panel_dot_sup_range`], itself bit-identical to
    /// the single kernel per column); threaded pools split each
    /// column's window across the workers exactly as the single
    /// windowed dispatch does — same `split_evenly` partition, same
    /// worker-order dot reduction, same `window.len() < threads` inline
    /// fallback. What the panel changes is the *schedule*: every
    /// column's jobs are enqueued before any collection, so each worker
    /// advances all columns over its own row range back-to-back while
    /// the matrix block is cache-hot.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on any column's dimension
    /// mismatch, an out-of-range window, or a non-square matrix.
    pub fn mul_panel_dot_sup<'a>(
        &self,
        matrix: impl Into<MatrixRef<'a>>,
        cols: &mut [PanelColumn<'_>],
    ) -> Result<Vec<(f64, f64)>, MarkovError> {
        let matrix = matrix.into();
        require_square(matrix, "mul_panel_dot_sup")?;
        for col in cols.iter() {
            check_window(matrix, col.x, col.y, Some(col.measure), &col.rows)?;
        }
        if self.is_sequential() {
            return Ok(matrix.mul_panel_dot_sup_range(cols));
        }
        let threads = self.threads();
        let mut out: Vec<(f64, f64)> = vec![(0.0, 0.0); cols.len()];
        let mut dispatched = vec![false; cols.len()];
        for (tag, col) in cols.iter_mut().enumerate() {
            if col.rows.len() < threads {
                // Inline fallback, same as the single windowed dispatch
                // (runs on the caller's thread while other columns'
                // jobs are in flight — the buffers are disjoint).
                let rows = col.rows.clone();
                out[tag] = matrix.mul_vec_dot_sup_range(
                    col.x,
                    &mut col.y[rows.clone()],
                    &col.measure[rows.clone()],
                    rows,
                );
                continue;
            }
            dispatched[tag] = true;
            let partition = split_evenly(col.rows.clone(), threads);
            for (tx, rows) in self.job_txs.iter().zip(&partition) {
                let job = Job {
                    matrix: JobMatrix::of(matrix),
                    x: col.x.as_ptr(),
                    x_len: col.x.len(),
                    y: col.y.as_mut_ptr(),
                    measure: col.measure.as_ptr(),
                    sup: true,
                    tag,
                    rows: rows.clone(),
                };
                tx.send(job).expect("spmv worker hung up");
            }
        }
        // Collect every acknowledgement before letting the borrows go
        // (the raw-pointer soundness handshake). Per column, dot
        // partials reduce in worker (= row-range) order, exactly as
        // `dispatch` reduces the single-vector case.
        let expected = dispatched.iter().filter(|&&d| d).count() * self.job_txs.len();
        let mut partials = vec![vec![0.0; self.job_txs.len()]; cols.len()];
        for _ in 0..expected {
            let (index, tag, partial_dot, partial_sup) =
                self.done_rx.recv().expect("spmv worker died");
            partials[tag][index] = partial_dot;
            out[tag].1 = out[tag].1.max(partial_sup);
        }
        for (tag, ps) in partials.iter().enumerate() {
            if dispatched[tag] {
                out[tag].0 = ps.iter().sum();
            }
        }
        Ok(out)
    }
}

fn require_square(matrix: MatrixRef<'_>, what: &str) -> Result<(), MarkovError> {
    if matrix.rows() != matrix.cols() {
        return Err(MarkovError::InvalidArgument(format!(
            "{what} needs a square matrix, got {}x{}",
            matrix.rows(),
            matrix.cols()
        )));
    }
    Ok(())
}

fn check_window(
    matrix: MatrixRef<'_>,
    x: &[f64],
    y: &[f64],
    measure: Option<&[f64]>,
    window: &Range<usize>,
) -> Result<(), MarkovError> {
    if x.len() != matrix.cols()
        || y.len() != matrix.rows()
        || measure.is_some_and(|m| m.len() != matrix.rows())
    {
        return Err(MarkovError::InvalidArgument(format!(
            "windowed mul_vec: x has {} (need {}), y has {} (need {})",
            x.len(),
            matrix.cols(),
            y.len(),
            matrix.rows()
        )));
    }
    if window.start > window.end || window.end > matrix.rows() {
        return Err(MarkovError::InvalidArgument(format!(
            "window {}..{} out of range for {} rows",
            window.start,
            window.end,
            matrix.rows()
        )));
    }
    Ok(())
}

impl Drop for SpmvPool {
    fn drop(&mut self) {
        // Closing the job channels ends every worker loop.
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(index: usize, jobs: &Receiver<Job>, done: &Sender<(usize, usize, f64, f64)>) {
    while let Ok(job) = jobs.recv() {
        // SAFETY: the dispatcher blocks until our completion message, so
        // the matrix, input and output referents are alive and unaliased
        // for the whole computation; `rows` is disjoint from every other
        // in-flight job's range, giving exclusive access to that part of
        // `y` (an empty range yields a zero-length slice, which is fine).
        let (partial_dot, partial_sup) = unsafe {
            let matrix = job.matrix.as_ref();
            let x = std::slice::from_raw_parts(job.x, job.x_len);
            let y_block = std::slice::from_raw_parts_mut(job.y.add(job.rows.start), job.rows.len());
            if job.measure.is_null() {
                if job.sup {
                    let sup = matrix.mul_vec_sup_range(x, y_block, job.rows.clone());
                    (0.0, sup)
                } else {
                    matrix.mul_vec_range_into(x, y_block, job.rows.clone());
                    (0.0, 0.0)
                }
            } else {
                let measure_block =
                    std::slice::from_raw_parts(job.measure.add(job.rows.start), job.rows.len());
                if job.sup {
                    matrix.mul_vec_dot_sup_range(x, y_block, measure_block, job.rows.clone())
                } else {
                    let dot = matrix.mul_vec_dot_range(x, y_block, measure_block, job.rows.clone());
                    (dot, 0.0)
                }
            }
        };
        if done
            .send((index, job.tag, partial_dot, partial_sup))
            .is_err()
        {
            return; // pool dropped mid-flight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::BandedMatrix;

    fn banded(n: usize) -> CsrMatrix {
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, i, 1.0 + (i % 7) as f64));
            if i + 1 < n {
                trip.push((i, i + 1, 0.5));
            }
            if i >= 3 {
                trip.push((i, i - 3, 0.25));
            }
        }
        CsrMatrix::from_triplets(n, n, trip).unwrap()
    }

    #[test]
    fn pool_matches_sequential_bitwise() {
        let n = 1000;
        let m = banded(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut seq = vec![0.0; n];
        m.mul_vec_into(&x, &mut seq).unwrap();
        for threads in [1, 2, 3, 5, 8] {
            let pool = SpmvPool::with_exact_threads(threads);
            let partition = m.nnz_partition(pool.threads());
            let mut par = vec![0.0; n];
            pool.mul_vec(&m, &partition, &x, &mut par).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn pool_survives_many_rounds() {
        // The zero-respawn claim: one pool, many products.
        let n = 257;
        let m = banded(n);
        let pool = SpmvPool::with_exact_threads(4);
        let partition = m.nnz_partition(pool.threads());
        let mut v: Vec<f64> = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        for _ in 0..200 {
            pool.mul_vec(&m, &partition, &v, &mut next).unwrap();
            std::mem::swap(&mut v, &mut next);
        }
        let mut seq_v: Vec<f64> = vec![1.0 / n as f64; n];
        let mut seq_next = vec![0.0; n];
        for _ in 0..200 {
            m.mul_vec_into(&seq_v, &mut seq_next).unwrap();
            std::mem::swap(&mut seq_v, &mut seq_next);
        }
        assert_eq!(v, seq_v);
    }

    #[test]
    fn fused_dot_matches_separate_passes() {
        let n = 513;
        let m = banded(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).cos()).collect();
        let measure: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) * 0.2).collect();
        let mut seq = vec![0.0; n];
        m.mul_vec_into(&x, &mut seq).unwrap();
        let expect: f64 = seq.iter().zip(&measure).map(|(a, b)| a * b).sum();
        for threads in [1, 2, 4, 7] {
            let pool = SpmvPool::with_exact_threads(threads);
            let partition = m.nnz_partition(pool.threads());
            let mut y = vec![0.0; n];
            let dot = pool
                .mul_vec_dot(&m, &partition, &x, &mut y, &measure)
                .unwrap();
            assert_eq!(y, seq, "threads = {threads}");
            assert!(
                (dot - expect).abs() <= 1e-12 * expect.abs().max(1.0),
                "threads = {threads}: {dot} vs {expect}"
            );
        }
    }

    #[test]
    fn banded_representation_matches_csr_through_the_pool() {
        // Representation dispatch: the same products through MatrixRef
        // views of both formats give the same output.
        let n = 700;
        let csr = banded(n);
        let dia = BandedMatrix::from_csr(&csr).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.021).sin()).collect();
        let measure: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) * 0.1).collect();
        for threads in [1, 3, 6] {
            let pool = SpmvPool::with_exact_threads(threads);
            let pc = MatrixRef::from(&csr).partition(pool.threads());
            let pb = MatrixRef::from(&dia).partition(pool.threads());
            let mut yc = vec![0.0; n];
            let mut yb = vec![0.0; n];
            let (dc, sc) = pool
                .mul_vec_dot_sup(&csr, &pc, &x, &mut yc, &measure)
                .unwrap();
            let (db, sb) = pool
                .mul_vec_dot_sup(&dia, &pb, &x, &mut yb, &measure)
                .unwrap();
            assert_eq!(yc, yb, "threads = {threads}");
            assert!((dc - db).abs() <= 1e-12 * dc.abs().max(1.0));
            assert_eq!(sc, sb);
        }
    }

    #[test]
    fn windowed_products_touch_only_the_window() {
        let n = 600;
        let csr = banded(n);
        let dia = BandedMatrix::from_csr(&csr).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.017).cos()).collect();
        let measure: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) * 0.3).collect();
        let mut full = vec![0.0; n];
        csr.mul_vec_into(&x, &mut full).unwrap();
        for threads in [1, 2, 5] {
            let pool = SpmvPool::with_exact_threads(threads);
            for window in [0..n, 100..400, 0..3, 595..600, 50..50] {
                let sentinel = -7.5;
                let mut y = vec![sentinel; n];
                let (dot, sup) = pool
                    .mul_vec_dot_sup_window(&dia, &x, &mut y, &measure, window.clone())
                    .unwrap();
                let mut expect_dot = 0.0;
                let mut expect_sup = 0.0f64;
                for r in 0..n {
                    if window.contains(&r) {
                        assert_eq!(
                            y[r], full[r],
                            "threads {threads}, window {window:?}, row {r}"
                        );
                        expect_dot += measure[r] * full[r];
                        expect_sup = expect_sup.max((full[r] - x[r]).abs());
                    } else {
                        assert_eq!(y[r], sentinel, "row {r} outside window must be untouched");
                    }
                }
                assert!((dot - expect_dot).abs() <= 1e-12 * expect_dot.abs().max(1.0));
                assert_eq!(sup, expect_sup);
                // Sup-only variant agrees.
                let mut y2 = vec![sentinel; n];
                let sup2 = pool
                    .mul_vec_sup_window(&dia, &x, &mut y2, window.clone())
                    .unwrap();
                assert_eq!(sup2, expect_sup);
            }
            // Bad windows are rejected.
            let mut y = vec![0.0; n];
            assert!(pool.mul_vec_sup_window(&dia, &x, &mut y, 0..n + 1).is_err());
            #[allow(clippy::reversed_empty_ranges)]
            let backwards = 10..5;
            assert!(pool
                .mul_vec_dot_sup_window(&dia, &x, &mut y, &measure, backwards)
                .is_err());
            assert!(pool
                .mul_vec_dot_sup_window(&dia, &x[..5], &mut y, &measure, 0..n)
                .is_err());
            let rect = CsrMatrix::zeros(4, 8);
            let xr = vec![0.0; 8];
            let mut yr = vec![0.0; 4];
            assert!(pool.mul_vec_sup_window(&rect, &xr, &mut yr, 0..4).is_err());
        }
    }

    #[test]
    fn panel_dispatch_bit_identical_to_single_windowed_calls() {
        // The pool-level panel contract: per column, mul_panel_dot_sup
        // equals mul_vec_dot_sup_window on the same pool — across
        // thread counts, representations, and window shapes including
        // tiny windows that take the inline fallback, empty windows,
        // and ragged per-column divergence.
        let n = 600;
        let csr = banded(n);
        let dia = BandedMatrix::from_csr(&csr).unwrap();
        let windows = [0..n, 100..400, 0..3, 595..600, 50..50, 7..593, 0..n];
        let xs: Vec<Vec<f64>> = (0..windows.len())
            .map(|j| (0..n).map(|i| ((i + 3 * j) as f64 * 0.013).sin()).collect())
            .collect();
        let measure: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) * 0.3).collect();
        for threads in [1, 2, 3, 5, 8] {
            let pool = SpmvPool::with_exact_threads(threads);
            for m in [MatrixRef::from(&csr), MatrixRef::from(&dia)] {
                let sentinel = -7.5;
                let mut expect_y = Vec::new();
                let mut expect_ds = Vec::new();
                for (w, x) in windows.iter().zip(&xs) {
                    let mut y = vec![sentinel; n];
                    let ds = pool
                        .mul_vec_dot_sup_window(m, x, &mut y, &measure, w.clone())
                        .unwrap();
                    expect_y.push(y);
                    expect_ds.push(ds);
                }
                let mut ys = vec![vec![sentinel; n]; windows.len()];
                let mut cols: Vec<PanelColumn<'_>> = ys
                    .iter_mut()
                    .zip(&windows)
                    .zip(&xs)
                    .map(|((y, w), x)| PanelColumn {
                        x,
                        y: &mut y[..],
                        measure: &measure,
                        rows: w.clone(),
                    })
                    .collect();
                let ds = pool.mul_panel_dot_sup(m, &mut cols).unwrap();
                drop(cols);
                assert_eq!(ds, expect_ds, "threads = {threads}");
                assert_eq!(ys, expect_y, "threads = {threads}");
            }
            // Column validation: a bad window anywhere in the panel is
            // rejected before anything runs.
            let mut y = vec![0.0; n];
            let mut bad = vec![PanelColumn {
                x: &xs[0],
                y: &mut y[..],
                measure: &measure,
                rows: 0..n + 1,
            }];
            assert!(pool.mul_panel_dot_sup(&dia, &mut bad).is_err());
        }
    }

    #[test]
    // Malformed (reversed/overshooting) ranges are the point of this test.
    #[allow(clippy::reversed_empty_ranges)]
    fn dimension_and_partition_validation() {
        let m = banded(64);
        let pool = SpmvPool::with_exact_threads(2);
        let partition = m.nnz_partition(pool.threads());
        let x = vec![0.0; 64];
        let mut y = vec![0.0; 64];
        assert!(pool.mul_vec(&m, &partition, &x[..5], &mut y).is_err());
        assert!(pool.mul_vec(&m, &partition, &x, &mut y[..5]).is_err());
        // Wrong partition arity.
        let bad = m.nnz_partition(3);
        assert!(pool.mul_vec(&m, &bad, &x, &mut y).is_err());
        // Gap in the cover.
        let gap = vec![0..10, 20..64];
        assert!(pool.mul_vec(&m, &gap, &x, &mut y).is_err());
        // Pairwise-"contiguous" but overshooting range: accepted ranges
        // become raw-pointer slices in workers, so this must be rejected
        // up front (regression for an out-of-bounds hole).
        let overshoot = vec![0..80, 80..64];
        assert!(pool.mul_vec(&m, &overshoot, &x, &mut y).is_err());
        let backwards = vec![0..64, 64..32];
        assert!(pool.mul_vec_dot(&m, &backwards, &x, &mut y, &x).is_err());
        // Fused measure length.
        assert!(pool
            .mul_vec_dot(&m, &partition, &x, &mut y, &x[..5])
            .is_err());
        // Sequential pools ignore the partition entirely.
        let seq = SpmvPool::new(1);
        assert!(seq.is_sequential());
        assert!(seq.mul_vec(&m, &[], &x, &mut y).is_ok());
        // The fully fused kernel refuses rectangular matrices.
        let rect = CsrMatrix::zeros(4, 8);
        let xr = vec![0.0; 8];
        let mut yr = vec![0.0; 4];
        let mr = vec![0.0; 4];
        let pr = rect.nnz_partition(pool.threads());
        assert!(pool.mul_vec_dot_sup(&rect, &pr, &xr, &mut yr, &mr).is_err());
        assert!(seq.mul_vec_dot_sup(&rect, &[], &xr, &mut yr, &mr).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// The satellite property: across random banded matrices and
        /// thread counts 1–8, the nnz-partitioned pool product is
        /// bit-identical to the sequential kernel and the fused SpMV+dot
        /// agrees with the two-pass reference to 1e-12 — through both
        /// the CSR and the DIA representation.
        #[test]
        fn pooled_and_fused_match_sequential(
            n in 64usize..320,
            diag in 0.5f64..4.0,
            upper in -2.0f64..2.0,
            lower in -2.0f64..2.0,
            bandwidth in 1usize..6,
            seed in 0.0f64..100.0,
        ) {
            use proptest::prelude::*;
            let mut trip = Vec::new();
            for i in 0..n {
                trip.push((i, i, diag + (i % 5) as f64 * 0.1));
                if i + bandwidth < n && upper != 0.0 {
                    trip.push((i, i + bandwidth, upper));
                }
                if i >= bandwidth && lower != 0.0 {
                    trip.push((i, i - bandwidth, lower));
                }
            }
            let m = CsrMatrix::from_triplets(n, n, trip).unwrap();
            let dia = BandedMatrix::from_csr(&m).unwrap();
            let x: Vec<f64> = (0..n).map(|i| ((i as f64 + seed) * 0.37).sin()).collect();
            let measure: Vec<f64> = (0..n).map(|i| ((i as f64 - seed) * 0.11).cos()).collect();

            let mut seq = vec![0.0; n];
            m.mul_vec_into(&x, &mut seq).unwrap();
            let seq_dot: f64 = seq.iter().zip(&measure).map(|(a, b)| a * b).sum();
            // The fused sequential kernel agrees with the two-pass
            // reference exactly (same accumulation order).
            let mut fused_seq = vec![0.0; n];
            let fused_dot = m.mul_vec_dot_into(&x, &mut fused_seq, &measure).unwrap();
            prop_assert_eq!(&seq, &fused_seq);
            prop_assert_eq!(fused_dot, seq_dot);

            for threads in 1..=8usize {
                let pool = SpmvPool::with_exact_threads(threads);
                let partition = m.nnz_partition(pool.threads());
                let mut y = vec![0.0; n];
                pool.mul_vec(&m, &partition, &x, &mut y).unwrap();
                prop_assert_eq!(&seq, &y);
                let mut y_fused = vec![0.0; n];
                let dot = pool
                    .mul_vec_dot(&m, &partition, &x, &mut y_fused, &measure)
                    .unwrap();
                prop_assert_eq!(&seq, &y_fused);
                prop_assert!(
                    (dot - seq_dot).abs() <= 1e-12 * seq_dot.abs().max(1.0),
                    "fused dot {} vs {} at {} threads", dot, seq_dot, threads
                );
                // Fully fused variant: same y and dot plus the exact
                // steady-state sup-norm (max reduction is exact, so
                // bitwise equality holds for every partition).
                let seq_sup = seq
                    .iter()
                    .zip(&x)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                let mut y_sup = vec![0.0; n];
                let (dot_s, sup) = pool
                    .mul_vec_dot_sup(&m, &partition, &x, &mut y_sup, &measure)
                    .unwrap();
                prop_assert_eq!(&seq, &y_sup);
                prop_assert_eq!(sup, seq_sup);
                // Sup-only variant (used by transient_distribution_with).
                let mut y_so = vec![0.0; n];
                let sup_only = pool.mul_vec_sup(&m, &partition, &x, &mut y_so).unwrap();
                prop_assert_eq!(&seq, &y_so);
                prop_assert_eq!(sup_only, seq_sup);
                prop_assert!(
                    (dot_s - seq_dot).abs() <= 1e-12 * seq_dot.abs().max(1.0),
                    "fused dot+sup {} vs {} at {} threads", dot_s, seq_dot, threads
                );
                // The DIA representation through the same pool: identical
                // output vector, dot within reassociation tolerance, and
                // the windowed kernel over the full window agrees too.
                let pb = MatrixRef::from(&dia).partition(pool.threads());
                let mut y_dia = vec![0.0; n];
                let (dot_b, sup_b) = pool
                    .mul_vec_dot_sup(&dia, &pb, &x, &mut y_dia, &measure)
                    .unwrap();
                prop_assert_eq!(&seq, &y_dia);
                prop_assert_eq!(sup_b, seq_sup);
                prop_assert!(
                    (dot_b - seq_dot).abs() <= 1e-12 * seq_dot.abs().max(1.0),
                    "dia dot {} vs {} at {} threads", dot_b, seq_dot, threads
                );
                let mut y_win = vec![0.0; n];
                let (dot_w, sup_w) = pool
                    .mul_vec_dot_sup_window(&dia, &x, &mut y_win, &measure, 0..n)
                    .unwrap();
                prop_assert_eq!(&seq, &y_win);
                prop_assert_eq!(sup_w, seq_sup);
                prop_assert!((dot_w - seq_dot).abs() <= 1e-12 * seq_dot.abs().max(1.0));
            }
        }
    }

    #[test]
    fn nnz_partition_balances_skewed_matrices() {
        // Front-loaded matrix: all mass in the first rows. A row-count
        // split would give worker 0 everything; the nnz split must not.
        let n = 1024;
        let mut trip = Vec::new();
        for i in 0..n / 8 {
            for j in 0..8 {
                trip.push((i, (i + j) % n, 1.0));
            }
        }
        let m = CsrMatrix::from_triplets(n, n, trip).unwrap();
        let parts = m.nnz_partition(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts[3].end, n);
        let nnz_of = |r: &Range<usize>| -> usize { r.clone().map(|row| m.row(row).count()).sum() };
        let total = m.nnz();
        for r in &parts {
            assert!(
                nnz_of(r) <= total / 2,
                "range {r:?} carries {} of {total} nnz",
                nnz_of(r)
            );
        }
        // The four ranges still cover the work.
        assert_eq!(parts.iter().map(nnz_of).sum::<usize>(), total);
    }
}
