//! Sericola's exact algorithm for the performability distribution
//! `Pr{Y(t) > y}` of a homogeneous Markov reward model.
//!
//! This is the uniformisation-based algorithm of B. Sericola ("Occupation
//! times in Markov processes", *Stochastic Models* 16(5), 2000; also
//! Nabli & Sericola, *IEEE Trans. Computers* 45(4), 1996), which the paper
//! cites as \[25\] and uses for the exact `C = 800 mAh, c = 1` lifetime
//! curve in Fig. 10.
//!
//! # How it works
//!
//! Condition on `N(t) = n` Poisson(ν) events. Given the uniformised jump
//! chain `P`, the accumulated reward is a mixture of linear combinations
//! of uniform order-statistic spacings, and for `y/t` inside the interval
//! `[r_{j+1}, r_j)` between two adjacent distinct reward rates the
//! conditional tail probability is a polynomial in the normalised position
//! `x_j = (y − r_{j+1}t)/((r_j − r_{j+1})t)` expressed in the Bernstein
//! basis:
//!
//! ```text
//! Pr{Y(t) > y} = Σ_n ψ(n; νt) Σ_{k=0}^n C(n,k) x_j^k (1−x_j)^{n−k} · α b⁽ʲ⁾(n,k)
//! ```
//!
//! The coefficient vectors obey convex-combination recursions that run
//! *upward* in `k` for states whose reward is at least `r_j` ("fast"
//! states) and *downward* in `k` for states with reward at most `r_{j+1}`
//! ("slow" states), with boundary conditions chaining adjacent intervals:
//! `b⁽ʲ⁾(n,0) = b⁽ʲ⁺¹⁾(n,n)` for fast states (with value 1 below the
//! lowest interval) and `b⁽ʲ⁾(n,n) = b⁽ʲ⁻¹⁾(n,0)` for slow states (with
//! value 0 above the highest interval). All quantities are probabilities,
//! so the computation is numerically stable; the Poisson series is
//! truncated by Fox–Glynn.
//!
//! Complexity: `O(R² · nnz(P))` time and `O(K · R · N)` memory, with `R`
//! the right truncation point of the Poisson window and `K` the number of
//! distinct reward rates.

use crate::foxglynn::poisson_weights;
use crate::mrm::MarkovRewardModel;
use crate::sparse::CsrMatrix;
use crate::MarkovError;

/// Options for the Sericola solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformabilityOptions {
    /// Poisson truncation error.
    pub epsilon: f64,
    /// Uniformisation factor (≥ 1).
    pub uniformisation_factor: f64,
}

impl Default for PerformabilityOptions {
    fn default() -> Self {
        PerformabilityOptions {
            epsilon: 1e-10,
            uniformisation_factor: 1.02,
        }
    }
}

/// Computes `Pr{Y(t) > y}` exactly (up to Poisson truncation `ε`).
///
/// # Errors
///
/// [`MarkovError::InvalidArgument`] for negative rewards, non-finite
/// `t`/`y` or negative `t`; [`MarkovError::InvalidDistribution`] for a bad
/// `alpha`.
///
/// # Examples
///
/// ```
/// use markov::ctmc::CtmcBuilder;
/// use markov::mrm::MarkovRewardModel;
/// use markov::sericola::{reward_exceeds_probability, PerformabilityOptions};
///
/// // Single state, reward 2: Y(t) = 2t deterministically.
/// let chain = CtmcBuilder::new(1).build().unwrap();
/// let mrm = MarkovRewardModel::new(chain, vec![2.0]).unwrap();
/// let opts = PerformabilityOptions::default();
/// let p = reward_exceeds_probability(&mrm, &[1.0], 3.0, 5.9, &opts).unwrap();
/// assert_eq!(p, 1.0); // 2·3 = 6 > 5.9
/// ```
pub fn reward_exceeds_probability(
    mrm: &MarkovRewardModel,
    alpha: &[f64],
    t: f64,
    y: f64,
    opts: &PerformabilityOptions,
) -> Result<f64, MarkovError> {
    Ok(reward_exceeds_curve(mrm, alpha, &[t], y, opts)?[0].1)
}

/// Computes `t ↦ Pr{Y(t) > y}` for a whole grid of time points, sharing
/// one sweep of the `b⁽ʲ⁾(n,k)` recursion.
///
/// The coefficient vectors are independent of `t` — only the Poisson
/// weights and the Bernstein position `x_j(t)` vary — so evaluating a
/// lifetime curve costs one recursion up to the largest truncation point
/// instead of one per point (the same trick the uniformisation curve
/// engine uses).
///
/// # Errors
///
/// Same conditions as [`reward_exceeds_probability`].
pub fn reward_exceeds_curve(
    mrm: &MarkovRewardModel,
    alpha: &[f64],
    times: &[f64],
    y: f64,
    opts: &PerformabilityOptions,
) -> Result<Vec<(f64, f64)>, MarkovError> {
    let ctmc = mrm.ctmc();
    ctmc.check_distribution(alpha)?;
    if times.is_empty() {
        return Err(MarkovError::InvalidArgument(
            "no time points requested".into(),
        ));
    }
    if times.iter().any(|t| !t.is_finite() || *t < 0.0) || !y.is_finite() {
        return Err(MarkovError::InvalidArgument(format!(
            "need finite t ≥ 0 and finite y, got y = {y}"
        )));
    }
    if mrm.rewards().iter().any(|&r| r < 0.0) {
        return Err(MarkovError::InvalidArgument(
            "Sericola's algorithm requires non-negative reward rates".into(),
        ));
    }

    // Distinct reward values, descending: r[0] > r[1] > … > r[K-1].
    let mut classes: Vec<f64> = mrm.rewards().to_vec();
    classes.sort_by(|a, b| b.partial_cmp(a).expect("finite rewards"));
    classes.dedup();
    let k_classes = classes.len();
    let r_max = classes[0];
    let r_min = classes[k_classes - 1];
    let class_of: Vec<usize> = mrm
        .rewards()
        .iter()
        .map(|&r| {
            classes
                .iter()
                .position(|&c| c == r)
                .expect("reward present")
        })
        .collect();

    let (p, nu) = ctmc.uniformised(opts.uniformisation_factor)?;

    // Classify each time point: trivially 0/1, or active in interval j
    // at Bernstein position x with its own Poisson window.
    struct Active {
        /// Index into the output vector.
        out: usize,
        j_star: usize,
        ln_x: f64,
        ln_1mx: f64,
        weights: crate::foxglynn::PoissonWeights,
    }
    let mut results: Vec<(f64, f64)> = times.iter().map(|&t| (t, 0.0)).collect();
    let mut active: Vec<Active> = Vec::new();
    for (out, &t) in times.iter().enumerate() {
        if t == 0.0 {
            results[out].1 = if y < 0.0 { 1.0 } else { 0.0 };
            continue;
        }
        if y < r_min * t {
            results[out].1 = 1.0;
            continue;
        }
        if y >= r_max * t {
            results[out].1 = 0.0;
            continue;
        }
        if nu == 0.0 {
            // No transitions: Y(t) = r_{X(0)}·t exactly.
            results[out].1 = alpha
                .iter()
                .zip(mrm.rewards())
                .map(|(&a, &r)| if r * t > y { a } else { 0.0 })
                .sum();
            continue;
        }
        let ratio = y / t;
        let j_star = (0..k_classes - 1)
            .find(|&j| ratio >= classes[j + 1] && ratio < classes[j])
            .expect("ratio lies in [r_min, r_max) by the guards above");
        let x = (y - classes[j_star + 1] * t) / ((classes[j_star] - classes[j_star + 1]) * t);
        debug_assert!((0.0..1.0).contains(&x), "x = {x}");
        active.push(Active {
            out,
            j_star,
            ln_x: if x > 0.0 { x.ln() } else { f64::NEG_INFINITY },
            ln_1mx: (1.0 - x).ln(),
            weights: poisson_weights(nu * t, opts.epsilon)?,
        });
    }
    if active.is_empty() {
        return Ok(results);
    }

    let r_right = active
        .iter()
        .map(|a| a.weights.right)
        .max()
        .expect("nonempty");
    let n_states = ctmc.n_states();
    let n_intervals = k_classes - 1;
    let ln_fact = ln_factorial_table(r_right + 1);

    // One shared sweep of the t-independent coefficient recursion.
    let mut b_prev: Vec<Vec<Vec<f64>>> = Vec::new();
    for n in 0..=r_right {
        let b_cur = if n == 0 {
            // b⁽ʲ⁾(0,0)_i = 1 iff state i is fast for interval j.
            (0..n_intervals)
                .map(|j| {
                    vec![(0..n_states)
                        .map(|i| if class_of[i] <= j { 1.0 } else { 0.0 })
                        .collect::<Vec<f64>>()]
                })
                .collect::<Vec<_>>()
        } else {
            advance_level(&p, &b_prev, n, n_intervals, n_states, &classes, &class_of)
        };

        // α·b⁽ʲ⁾(n,k) per interval, shared across the active points.
        let betas: Vec<Vec<f64>> = (0..n_intervals)
            .map(|j| {
                b_cur[j]
                    .iter()
                    .map(|b_vec| alpha.iter().zip(b_vec).map(|(a, b)| a * b).sum())
                    .collect()
            })
            .collect();

        for a in &active {
            let wn = a.weights.weight(n);
            if wn == 0.0 {
                continue;
            }
            let mut inner = 0.0;
            for (k, &beta) in betas[a.j_star].iter().enumerate() {
                if beta == 0.0 {
                    continue;
                }
                let ln_binom = ln_fact[n] - ln_fact[k] - ln_fact[n - k];
                let ln_term = ln_binom
                    + if k == 0 { 0.0 } else { k as f64 * a.ln_x }
                    + if n == k {
                        0.0
                    } else {
                        (n - k) as f64 * a.ln_1mx
                    };
                inner += ln_term.exp() * beta;
            }
            results[a.out].1 += wn * inner;
        }
        b_prev = b_cur;
    }
    for r in &mut results {
        r.1 = r.1.clamp(0.0, 1.0);
    }
    Ok(results)
}

/// Convenience wrapper: the CDF `Pr{Y(t) ≤ y} = 1 − Pr{Y(t) > y}`.
///
/// # Errors
///
/// Same as [`reward_exceeds_probability`].
pub fn reward_cdf(
    mrm: &MarkovRewardModel,
    alpha: &[f64],
    t: f64,
    y: f64,
    opts: &PerformabilityOptions,
) -> Result<f64, MarkovError> {
    Ok(1.0 - reward_exceeds_probability(mrm, alpha, t, y, opts)?)
}

/// One level of the Sericola recursion: builds all `b⁽ʲ⁾(n,·)` from
/// `b⁽ʲ⁾(n−1,·)`.
fn advance_level(
    p: &CsrMatrix,
    b_prev: &[Vec<Vec<f64>>],
    n: usize,
    n_intervals: usize,
    n_states: usize,
    classes: &[f64],
    class_of: &[usize],
) -> Vec<Vec<Vec<f64>>> {
    // Precompute P·b⁽ʲ⁾(n−1,k) for every interval and k = 0..n-1.
    let products: Vec<Vec<Vec<f64>>> = b_prev
        .iter()
        .map(|per_k| {
            per_k
                .iter()
                .map(|b| p.mul_vec(b).expect("dimensions fixed at build time"))
                .collect()
        })
        .collect();

    let mut b_cur: Vec<Vec<Vec<f64>>> = (0..n_intervals)
        .map(|_| vec![vec![0.0; n_states]; n + 1])
        .collect();

    // FAST phase: intervals from the bottom (j = K−2) upward; k ascending.
    for j in (0..n_intervals).rev() {
        let r_top = classes[j];
        let r_bot = classes[j + 1];
        // Base k = 0: chain to interval j+1's k = n, or 1 below the bottom.
        for i in 0..n_states {
            if class_of[i] <= j {
                b_cur[j][0][i] = if j + 1 < n_intervals {
                    b_cur[j + 1][n][i]
                } else {
                    1.0
                };
            }
        }
        for k in 1..=n {
            for i in 0..n_states {
                let l = class_of[i];
                if l <= j {
                    let r_i = classes[l];
                    let a_coef = (r_i - r_top) / (r_i - r_bot);
                    let b_coef = (r_top - r_bot) / (r_i - r_bot);
                    b_cur[j][k][i] = a_coef * b_cur[j][k - 1][i] + b_coef * products[j][k - 1][i];
                }
            }
        }
    }

    // SLOW phase: intervals from the top (j = 0) downward; k descending.
    for j in 0..n_intervals {
        let r_top = classes[j];
        let r_bot = classes[j + 1];
        // Base k = n: chain to interval j−1's k = 0, or 0 above the top.
        for i in 0..n_states {
            if class_of[i] > j {
                b_cur[j][n][i] = if j > 0 { b_cur[j - 1][0][i] } else { 0.0 };
            }
        }
        for k in (0..n).rev() {
            for i in 0..n_states {
                let l = class_of[i];
                if l > j {
                    let r_i = classes[l];
                    let a_coef = (r_bot - r_i) / (r_top - r_i);
                    let b_coef = (r_top - r_bot) / (r_top - r_i);
                    b_cur[j][k][i] = a_coef * b_cur[j][k + 1][i] + b_coef * products[j][k][i];
                }
            }
        }
    }
    b_cur
}

/// `ln(k!)` for `k = 0..len` via a running sum.
fn ln_factorial_table(len: usize) -> Vec<f64> {
    let mut table = Vec::with_capacity(len + 1);
    table.push(0.0);
    let mut acc = 0.0;
    for k in 1..=len {
        acc += (k as f64).ln();
        table.push(acc);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::{Ctmc, CtmcBuilder};

    fn opts() -> PerformabilityOptions {
        PerformabilityOptions {
            epsilon: 1e-12,
            ..Default::default()
        }
    }

    fn on_off(a: f64, b: f64) -> Ctmc {
        let mut builder = CtmcBuilder::new(2);
        builder.rate(0, 1, a).unwrap();
        builder.rate(1, 0, b).unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn degenerate_single_state() {
        let chain = CtmcBuilder::new(1).build().unwrap();
        let mrm = MarkovRewardModel::new(chain, vec![2.0]).unwrap();
        assert_eq!(
            reward_exceeds_probability(&mrm, &[1.0], 3.0, 5.0, &opts()).unwrap(),
            1.0
        );
        assert_eq!(
            reward_exceeds_probability(&mrm, &[1.0], 3.0, 6.0, &opts()).unwrap(),
            0.0
        );
        assert_eq!(
            reward_exceeds_probability(&mrm, &[1.0], 3.0, 7.0, &opts()).unwrap(),
            0.0
        );
    }

    #[test]
    fn no_transitions_two_rewards() {
        // Two absorbing states with rewards 1 and 3: mixture of points.
        let chain = CtmcBuilder::new(2).build().unwrap();
        let mrm = MarkovRewardModel::new(chain, vec![1.0, 3.0]).unwrap();
        let alpha = [0.4, 0.6];
        // t = 2: Y = 2 w.p. 0.4, Y = 6 w.p. 0.6.
        let p_gt_4 = reward_exceeds_probability(&mrm, &alpha, 2.0, 4.0, &opts()).unwrap();
        assert!((p_gt_4 - 0.6).abs() < 1e-12);
        let p_gt_1 = reward_exceeds_probability(&mrm, &alpha, 2.0, 1.0, &opts()).unwrap();
        assert!((p_gt_1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_edge() {
        let mrm = MarkovRewardModel::new(on_off(1.0, 1.0), vec![1.0, 0.0]).unwrap();
        assert_eq!(
            reward_exceeds_probability(&mrm, &[1.0, 0.0], 0.0, 0.5, &opts()).unwrap(),
            0.0
        );
        assert_eq!(
            reward_exceeds_probability(&mrm, &[1.0, 0.0], 0.0, -0.5, &opts()).unwrap(),
            1.0
        );
    }

    #[test]
    fn negative_rewards_rejected() {
        let mrm = MarkovRewardModel::new(on_off(1.0, 1.0), vec![1.0, -1.0]).unwrap();
        assert!(matches!(
            reward_exceeds_probability(&mrm, &[1.0, 0.0], 1.0, 0.5, &opts()),
            Err(MarkovError::InvalidArgument(_))
        ));
    }

    #[test]
    fn bounds_are_respected() {
        let mrm = MarkovRewardModel::new(on_off(2.0, 3.0), vec![5.0, 1.0]).unwrap();
        let alpha = [0.5, 0.5];
        let t = 2.0;
        // y below r_min·t ⇒ certain, y at/above r_max·t ⇒ impossible.
        assert_eq!(
            reward_exceeds_probability(&mrm, &alpha, t, 1.9, &opts()).unwrap(),
            1.0
        );
        assert_eq!(
            reward_exceeds_probability(&mrm, &alpha, t, 10.0, &opts()).unwrap(),
            0.0
        );
        // In between: strictly between 0 and 1, monotone decreasing in y.
        let mut prev = 1.0;
        for i in 1..10 {
            let y = 2.0 + i as f64 * 0.8;
            let p = reward_exceeds_probability(&mrm, &alpha, t, y, &opts()).unwrap();
            assert!((0.0..=1.0).contains(&p));
            assert!(p <= prev + 1e-9, "not monotone at y = {y}");
            prev = p;
        }
    }

    /// Occupation time of the on-state in an on/off chain starting "on":
    /// closed form for the n ≤ 1 jump terms dominates at small νt, so
    /// compare against a high-resolution numerical reference computed from
    /// an independent method (dense expm of the level-augmented operator is
    /// overkill; here we use a fine Monte Carlo driven by an LCG for
    /// determinism).
    #[test]
    fn occupation_time_matches_monte_carlo() {
        let (a, b) = (1.0, 0.7);
        let mrm = MarkovRewardModel::new(on_off(a, b), vec![1.0, 0.0]).unwrap();
        let t = 3.0;
        // Deterministic xorshift RNG.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next_f64 = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let runs = 200_000;
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let mut clock = 0.0;
            let mut on = true;
            let mut occupied = 0.0;
            loop {
                let rate = if on { a } else { b };
                let u: f64 = next_f64();
                let sojourn = -(1.0 - u).ln() / rate;
                if clock + sojourn >= t {
                    if on {
                        occupied += t - clock;
                    }
                    break;
                }
                if on {
                    occupied += sojourn;
                }
                clock += sojourn;
                on = !on;
            }
            samples.push(occupied);
        }
        samples.sort_by(|p, q| p.partial_cmp(q).unwrap());
        for &y in &[0.5, 1.0, 1.5, 2.0, 2.5] {
            let exact = reward_exceeds_probability(&mrm, &[1.0, 0.0], t, y, &opts()).unwrap();
            let mc = samples.iter().filter(|&&s| s > y).count() as f64 / runs as f64;
            // Monte Carlo error at 200k runs ≈ 3·10⁻³ (3σ).
            assert!(
                (exact - mc).abs() < 4e-3,
                "y = {y}: exact {exact} vs MC {mc}"
            );
        }
    }

    #[test]
    fn three_reward_classes_atom_at_interval_boundary() {
        // 3-state cyclic chain with rewards 4 > 2 > 0. Y(t) has an *atom*
        // at y = 2t: the event "X(s) = state 1 for all s ≤ t", with mass
        // α₁·e^{-q₁t}. The tail function must jump by exactly that mass at
        // the boundary (right-continuous), and be monotone elsewhere.
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 2, 1.5).unwrap();
        b.rate(2, 0, 0.7).unwrap();
        let mrm = MarkovRewardModel::new(b.build().unwrap(), vec![4.0, 2.0, 0.0]).unwrap();
        let alpha = [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0];
        let t = 2.0;
        let boundary = 2.0 * t;
        let below = reward_exceeds_probability(&mrm, &alpha, t, boundary - 1e-9, &opts()).unwrap();
        let at = reward_exceeds_probability(&mrm, &alpha, t, boundary, &opts()).unwrap();
        let atom = alpha[1] * (-1.5 * t).exp();
        assert!(
            ((below - at) - atom).abs() < 1e-6,
            "jump {} vs atom mass {atom}",
            below - at
        );
        let mut prev = 1.0;
        for i in 0..=80 {
            let y = i as f64 * 0.1;
            let p = reward_exceeds_probability(&mrm, &alpha, t, y, &opts()).unwrap();
            assert!(p <= prev + 1e-9, "not monotone at y = {y}");
            prev = p;
        }
    }

    #[test]
    fn curve_matches_pointwise() {
        let mrm = MarkovRewardModel::new(on_off(1.3, 0.8), vec![2.0, 0.5]).unwrap();
        let alpha = [0.7, 0.3];
        let y = 1.9;
        let times = [0.0, 0.5, 1.0, 2.0, 5.0, 9.0];
        let curve = reward_exceeds_curve(&mrm, &alpha, &times, y, &opts()).unwrap();
        for (t, p) in &curve {
            let point = reward_exceeds_probability(&mrm, &alpha, *t, y, &opts()).unwrap();
            assert!((p - point).abs() < 1e-12, "t = {t}: {p} vs {point}");
        }
        // Curve across trivial and active regions stays in [0, 1].
        assert!(curve.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
        // Empty grids rejected.
        assert!(reward_exceeds_curve(&mrm, &alpha, &[], y, &opts()).is_err());
    }

    #[test]
    fn reward_cdf_complements() {
        let mrm = MarkovRewardModel::new(on_off(1.0, 1.0), vec![1.0, 0.0]).unwrap();
        let p = reward_exceeds_probability(&mrm, &[1.0, 0.0], 2.0, 1.0, &opts()).unwrap();
        let c = reward_cdf(&mrm, &[1.0, 0.0], 2.0, 1.0, &opts()).unwrap();
        assert!((p + c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_from_distribution_matches_mrm_expectation() {
        // E[Y(t)] = ∫₀^{r_max t} Pr{Y > y} dy (non-negative rewards).
        let mrm = MarkovRewardModel::new(on_off(1.3, 0.9), vec![2.0, 0.5]).unwrap();
        let alpha = [0.6, 0.4];
        let t = 1.7;
        let expected = mrm.expected_accumulated_reward(&alpha, t, 1e-12).unwrap();
        // Trapezoidal integration of the tail function.
        let steps = 4000;
        let hi = 2.0 * t;
        let h = hi / steps as f64;
        let mut integral = 0.0;
        let mut prev = 1.0; // Pr{Y > 0} for strictly positive rewards
        for i in 1..=steps {
            let y = i as f64 * h;
            let p = reward_exceeds_probability(&mrm, &alpha, t, y, &opts()).unwrap();
            integral += 0.5 * (prev + p) * h;
            prev = p;
        }
        assert!(
            (integral - expected).abs() < 2e-3,
            "integral {integral} vs expectation {expected}"
        );
    }
}
