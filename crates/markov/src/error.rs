//! The shared error type of the `markov` crate.

use std::fmt;

/// Errors produced while building or analysing Markov chains.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A state index was out of range.
    StateOutOfRange {
        /// The offending index.
        state: usize,
        /// Number of states in the chain.
        n_states: usize,
    },
    /// A transition rate was negative, NaN or infinite.
    InvalidRate {
        /// Source state.
        from: usize,
        /// Target state.
        to: usize,
        /// The offending rate.
        rate: f64,
    },
    /// A self-loop `i → i` was specified (meaningless in a CTMC generator).
    SelfLoop {
        /// The state with the self-loop.
        state: usize,
    },
    /// A chain was built with zero states.
    EmptyChain,
    /// A probability vector did not have the right length or did not sum
    /// to one.
    InvalidDistribution(String),
    /// A numerical routine failed to converge.
    NoConvergence(String),
    /// Generic invalid-argument error with a description.
    InvalidArgument(String),
    /// A cooperative [`crate::budget::Budget`] check failed: the solve
    /// was cancelled or ran past its deadline. Carries the work
    /// completed before the interruption (uniformisation iterations for
    /// the transient engines).
    DeadlineExceeded {
        /// Units of work (engine-specific) completed before the budget
        /// expired.
        completed: usize,
    },
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::StateOutOfRange { state, n_states } => {
                write!(
                    f,
                    "state {state} out of range for chain with {n_states} states"
                )
            }
            MarkovError::InvalidRate { from, to, rate } => {
                write!(f, "invalid rate {rate} on transition {from} -> {to}")
            }
            MarkovError::SelfLoop { state } => {
                write!(
                    f,
                    "self-loop on state {state} is not allowed in a generator"
                )
            }
            MarkovError::EmptyChain => write!(f, "chain must have at least one state"),
            MarkovError::InvalidDistribution(msg) => {
                write!(f, "invalid probability distribution: {msg}")
            }
            MarkovError::NoConvergence(msg) => write!(f, "no convergence: {msg}"),
            MarkovError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MarkovError::DeadlineExceeded { completed } => {
                write!(
                    f,
                    "deadline exceeded after {completed} units of completed work"
                )
            }
        }
    }
}

impl std::error::Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<(MarkovError, &str)> = vec![
            (
                MarkovError::StateOutOfRange {
                    state: 5,
                    n_states: 3,
                },
                "state 5",
            ),
            (
                MarkovError::InvalidRate {
                    from: 0,
                    to: 1,
                    rate: -1.0,
                },
                "invalid rate",
            ),
            (MarkovError::SelfLoop { state: 2 }, "self-loop"),
            (MarkovError::EmptyChain, "at least one state"),
            (MarkovError::InvalidDistribution("x".into()), "distribution"),
            (MarkovError::NoConvergence("y".into()), "no convergence"),
            (MarkovError::InvalidArgument("z".into()), "invalid argument"),
            (
                MarkovError::DeadlineExceeded { completed: 12 },
                "deadline exceeded after 12",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
