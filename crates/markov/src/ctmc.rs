//! Continuous-time Markov chains: validated construction, exit rates,
//! uniformisation and export.
//!
//! A CTMC here is stored as its off-diagonal rate matrix in CSR form plus
//! the per-state exit rates; the diagonal of the generator is implicit
//! (`q_{ii} = −q_i`). This matches the workload models of the paper
//! (Figs. 3–5) as well as the huge derived chains of Section 5.

use crate::sparse::CsrMatrix;
use crate::MarkovError;

/// Incremental builder for a [`Ctmc`].
///
/// # Examples
///
/// Building the paper's simple cell-phone workload (Fig. 4, rates per
/// hour):
///
/// ```
/// use markov::ctmc::CtmcBuilder;
///
/// let mut b = CtmcBuilder::new(3);
/// b.label(0, "idle").label(1, "send").label(2, "sleep");
/// b.rate(0, 1, 2.0).unwrap(); // λ: data arrives
/// b.rate(1, 0, 6.0).unwrap(); // µ: sending completes
/// b.rate(0, 2, 1.0).unwrap(); // τ: timeout to sleep
/// b.rate(2, 1, 2.0).unwrap(); // λ: data arrival wakes the device
/// let chain = b.build().unwrap();
/// assert_eq!(chain.n_states(), 3);
/// assert_eq!(chain.exit_rate(0), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    n: usize,
    triplets: Vec<(usize, usize, f64)>,
    labels: Vec<String>,
}

impl CtmcBuilder {
    /// Starts a builder for a chain with `n` states (indexed `0..n`).
    pub fn new(n: usize) -> Self {
        CtmcBuilder {
            n,
            triplets: Vec::new(),
            labels: (0..n).map(|i| format!("s{i}")).collect(),
        }
    }

    /// Adds (accumulates) transition rate `rate` from `from` to `to`.
    ///
    /// Zero rates are accepted and ignored, which lets callers write
    /// uniform model-generation loops.
    ///
    /// # Errors
    ///
    /// [`MarkovError::StateOutOfRange`] for bad indices,
    /// [`MarkovError::SelfLoop`] when `from == to`, and
    /// [`MarkovError::InvalidRate`] for negative or non-finite rates.
    pub fn rate(&mut self, from: usize, to: usize, rate: f64) -> Result<&mut Self, MarkovError> {
        if from >= self.n {
            return Err(MarkovError::StateOutOfRange {
                state: from,
                n_states: self.n,
            });
        }
        if to >= self.n {
            return Err(MarkovError::StateOutOfRange {
                state: to,
                n_states: self.n,
            });
        }
        if from == to {
            return Err(MarkovError::SelfLoop { state: from });
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(MarkovError::InvalidRate { from, to, rate });
        }
        if rate > 0.0 {
            self.triplets.push((from, to, rate));
        }
        Ok(self)
    }

    /// Sets a human-readable label on state `i` (ignored when out of
    /// range, so chained label calls never fail).
    pub fn label(&mut self, i: usize, name: &str) -> &mut Self {
        if i < self.n {
            self.labels[i] = name.to_owned();
        }
        self
    }

    /// Number of accumulated (non-zero) transitions so far.
    pub fn transition_count(&self) -> usize {
        self.triplets.len()
    }

    /// Finalises the chain.
    ///
    /// # Errors
    ///
    /// [`MarkovError::EmptyChain`] when `n == 0`, or an error propagated
    /// from sparse-matrix assembly.
    pub fn build(self) -> Result<Ctmc, MarkovError> {
        if self.n == 0 {
            return Err(MarkovError::EmptyChain);
        }
        let rates = CsrMatrix::from_triplets(self.n, self.n, self.triplets)?;
        let exit = rates.row_sums();
        Ok(Ctmc {
            n: self.n,
            rates,
            exit,
            labels: self.labels,
        })
    }
}

/// A validated continuous-time Markov chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    n: usize,
    rates: CsrMatrix,
    exit: Vec<f64>,
    labels: Vec<String>,
}

impl Ctmc {
    /// Number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// The off-diagonal rate matrix in CSR form.
    #[inline]
    pub fn rates(&self) -> &CsrMatrix {
        &self.rates
    }

    /// Total number of (off-diagonal) transitions.
    #[inline]
    pub fn n_transitions(&self) -> usize {
        self.rates.nnz()
    }

    /// Exit rate `q_i = Σ_{j≠i} q_{ij}` of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_states()`.
    #[inline]
    pub fn exit_rate(&self, i: usize) -> f64 {
        self.exit[i]
    }

    /// All exit rates.
    #[inline]
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// The largest exit rate, i.e. the minimal uniformisation rate.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// `true` when state `i` is absorbing (no outgoing rate).
    pub fn is_absorbing(&self, i: usize) -> bool {
        self.exit[i] == 0.0
    }

    /// Label of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_states()`.
    pub fn state_label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// Index of the first state carrying `label`, if any.
    pub fn find_state(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// The dense generator matrix `Q` (diagonal filled in). Intended for
    /// small chains only — memory is `O(n²)`.
    pub fn generator_dense(&self) -> numerics::linalg::DenseMatrix {
        let mut q = numerics::linalg::DenseMatrix::zeros(self.n, self.n);
        for (i, j, r) in self.rates.iter() {
            q[(i, j)] = r;
        }
        for i in 0..self.n {
            q[(i, i)] = -self.exit[i];
        }
        q
    }

    /// The uniformised DTMC `P = I + Q/ν` with `ν = factor · max_i q_i`,
    /// returned together with ν. `factor > 1` leaves strictly positive
    /// self-loop probability on the fastest states, which damps the
    /// periodicity artefacts of uniformisation.
    ///
    /// For a chain whose states are all absorbing, `ν = 0` and `P = I` is
    /// returned with `ν` set to 0; callers special-case this (the
    /// transient distribution is constant).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `factor < 1`.
    pub fn uniformised(&self, factor: f64) -> Result<(CsrMatrix, f64), MarkovError> {
        if !(factor >= 1.0) {
            return Err(MarkovError::InvalidArgument(format!(
                "uniformisation factor must be ≥ 1, got {factor}"
            )));
        }
        let nu = self.max_exit_rate() * factor;
        if nu == 0.0 {
            // All states absorbing: P = I.
            let eye: Vec<_> = (0..self.n).map(|i| (i, i, 1.0)).collect();
            return Ok((CsrMatrix::from_triplets(self.n, self.n, eye)?, 0.0));
        }
        let mut trip: Vec<(usize, usize, f64)> = Vec::with_capacity(self.rates.nnz() + self.n);
        for (i, j, r) in self.rates.iter() {
            trip.push((i, j, r / nu));
        }
        for i in 0..self.n {
            let stay = 1.0 - self.exit[i] / nu;
            if stay != 0.0 {
                trip.push((i, i, stay));
            }
        }
        Ok((CsrMatrix::from_triplets(self.n, self.n, trip)?, nu))
    }

    /// Graphviz/DOT rendering of the chain with labels and rates, for
    /// documentation and debugging of workload models.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph ctmc {\n  rankdir=LR;\n");
        for (i, l) in self.labels.iter().enumerate() {
            out.push_str(&format!("  {i} [label=\"{l}\"];\n"));
        }
        for (i, j, r) in self.rates.iter() {
            out.push_str(&format!("  {i} -> {j} [label=\"{r}\"];\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Validates that `alpha` is a probability distribution over the state
    /// space (length `n`, entries in `[0,1]`, sum ≈ 1).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidDistribution`] describing the violation.
    pub fn check_distribution(&self, alpha: &[f64]) -> Result<(), MarkovError> {
        if alpha.len() != self.n {
            return Err(MarkovError::InvalidDistribution(format!(
                "length {} but chain has {} states",
                alpha.len(),
                self.n
            )));
        }
        if alpha.iter().any(|&p| !(0.0..=1.0 + 1e-9).contains(&p)) {
            return Err(MarkovError::InvalidDistribution(
                "entry outside [0, 1]".into(),
            ));
        }
        let total: f64 = alpha.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(MarkovError::InvalidDistribution(format!("sums to {total}")));
        }
        Ok(())
    }

    /// The point distribution concentrated on `state`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::StateOutOfRange`] when `state >= n_states()`.
    pub fn point_distribution(&self, state: usize) -> Result<Vec<f64>, MarkovError> {
        if state >= self.n {
            return Err(MarkovError::StateOutOfRange {
                state,
                n_states: self.n,
            });
        }
        let mut alpha = vec![0.0; self.n];
        alpha[state] = 1.0;
        Ok(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 3.0).unwrap();
        b.label(0, "on").label(1, "off");
        b.build().unwrap()
    }

    #[test]
    fn builder_validation() {
        let mut b = CtmcBuilder::new(2);
        assert!(matches!(
            b.rate(2, 0, 1.0),
            Err(MarkovError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            b.rate(0, 5, 1.0),
            Err(MarkovError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            b.rate(0, 0, 1.0),
            Err(MarkovError::SelfLoop { .. })
        ));
        assert!(matches!(
            b.rate(0, 1, -1.0),
            Err(MarkovError::InvalidRate { .. })
        ));
        assert!(matches!(
            b.rate(0, 1, f64::NAN),
            Err(MarkovError::InvalidRate { .. })
        ));
        b.rate(0, 1, 0.0).unwrap(); // zero rates allowed, ignored
        assert_eq!(b.transition_count(), 0);
        assert!(matches!(
            CtmcBuilder::new(0).build(),
            Err(MarkovError::EmptyChain)
        ));
    }

    #[test]
    fn rates_accumulate() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.5).unwrap();
        b.rate(0, 1, 0.5).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.rates().get(0, 1), 2.0);
        assert_eq!(c.exit_rate(0), 2.0);
    }

    #[test]
    fn exit_rates_and_absorbing() {
        let c = two_state();
        assert_eq!(c.exit_rate(0), 2.0);
        assert_eq!(c.exit_rate(1), 3.0);
        assert_eq!(c.exit_rates(), &[2.0, 3.0]);
        assert_eq!(c.max_exit_rate(), 3.0);
        assert!(!c.is_absorbing(0));

        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(c.is_absorbing(1));
    }

    #[test]
    fn labels_and_lookup() {
        let c = two_state();
        assert_eq!(c.state_label(0), "on");
        assert_eq!(c.find_state("off"), Some(1));
        assert_eq!(c.find_state("missing"), None);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let c = two_state();
        let q = c.generator_dense();
        for i in 0..2 {
            let s: f64 = q.row(i).iter().sum();
            assert!(s.abs() < 1e-15);
        }
        assert_eq!(q[(0, 0)], -2.0);
        assert_eq!(q[(0, 1)], 2.0);
    }

    #[test]
    fn uniformised_is_stochastic() {
        let c = two_state();
        let (p, nu) = c.uniformised(1.02).unwrap();
        assert!((nu - 3.06).abs() < 1e-12);
        for i in 0..2 {
            let total: f64 = p.row(i).map(|(_, v)| v).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
        // Fastest state keeps positive self-loop thanks to factor > 1.
        assert!(p.get(1, 1) > 0.0);
        assert!(c.uniformised(0.5).is_err());
    }

    #[test]
    fn uniformised_all_absorbing() {
        let c = CtmcBuilder::new(3).build().unwrap();
        let (p, nu) = c.uniformised(1.0).unwrap();
        assert_eq!(nu, 0.0);
        for i in 0..3 {
            assert_eq!(p.get(i, i), 1.0);
        }
    }

    #[test]
    fn distribution_checks() {
        let c = two_state();
        assert!(c.check_distribution(&[0.5, 0.5]).is_ok());
        assert!(c.check_distribution(&[0.5]).is_err());
        assert!(c.check_distribution(&[0.7, 0.7]).is_err());
        assert!(c.check_distribution(&[-0.1, 1.1]).is_err());
        assert_eq!(c.point_distribution(1).unwrap(), vec![0.0, 1.0]);
        assert!(c.point_distribution(7).is_err());
    }

    #[test]
    fn dot_export_mentions_labels_and_rates() {
        let dot = two_state().to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"on\""));
        assert!(dot.contains("0 -> 1 [label=\"2\"]"));
    }
}
