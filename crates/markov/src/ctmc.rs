//! Continuous-time Markov chains: validated construction, exit rates,
//! uniformisation and export.
//!
//! A CTMC here is stored as its off-diagonal rate matrix in CSR form plus
//! the per-state exit rates; the diagonal of the generator is implicit
//! (`q_{ii} = −q_i`). This matches the workload models of the paper
//! (Figs. 3–5) as well as the huge derived chains of Section 5.

use crate::banded::{BandedMatrix, TransitionMatrix};
use crate::sparse::CsrMatrix;
use crate::MarkovError;

/// Incremental builder for a [`Ctmc`].
///
/// # Examples
///
/// Building the paper's simple cell-phone workload (Fig. 4, rates per
/// hour):
///
/// ```
/// use markov::ctmc::CtmcBuilder;
///
/// let mut b = CtmcBuilder::new(3);
/// b.label(0, "idle").label(1, "send").label(2, "sleep");
/// b.rate(0, 1, 2.0).unwrap(); // λ: data arrives
/// b.rate(1, 0, 6.0).unwrap(); // µ: sending completes
/// b.rate(0, 2, 1.0).unwrap(); // τ: timeout to sleep
/// b.rate(2, 1, 2.0).unwrap(); // λ: data arrival wakes the device
/// let chain = b.build().unwrap();
/// assert_eq!(chain.n_states(), 3);
/// assert_eq!(chain.exit_rate(0), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    n: usize,
    triplets: Vec<(usize, usize, f64)>,
    /// Materialised lazily on the first `label()` call: huge derived
    /// chains never pay for `n` default label strings.
    labels: Option<Vec<String>>,
}

impl CtmcBuilder {
    /// Starts a builder for a chain with `n` states (indexed `0..n`).
    pub fn new(n: usize) -> Self {
        CtmcBuilder {
            n,
            triplets: Vec::new(),
            labels: None,
        }
    }

    /// Adds (accumulates) transition rate `rate` from `from` to `to`.
    ///
    /// Zero rates are accepted and ignored, which lets callers write
    /// uniform model-generation loops.
    ///
    /// # Errors
    ///
    /// [`MarkovError::StateOutOfRange`] for bad indices,
    /// [`MarkovError::SelfLoop`] when `from == to`, and
    /// [`MarkovError::InvalidRate`] for negative or non-finite rates.
    pub fn rate(&mut self, from: usize, to: usize, rate: f64) -> Result<&mut Self, MarkovError> {
        if from >= self.n {
            return Err(MarkovError::StateOutOfRange {
                state: from,
                n_states: self.n,
            });
        }
        if to >= self.n {
            return Err(MarkovError::StateOutOfRange {
                state: to,
                n_states: self.n,
            });
        }
        if from == to {
            return Err(MarkovError::SelfLoop { state: from });
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(MarkovError::InvalidRate { from, to, rate });
        }
        if rate > 0.0 {
            self.triplets.push((from, to, rate));
        }
        Ok(self)
    }

    /// Sets a human-readable label on state `i` (ignored when out of
    /// range, so chained label calls never fail).
    pub fn label(&mut self, i: usize, name: &str) -> &mut Self {
        if i < self.n {
            let labels = self
                .labels
                .get_or_insert_with(|| (0..self.n).map(|i| format!("s{i}")).collect());
            labels[i] = name.to_owned();
        }
        self
    }

    /// Number of accumulated (non-zero) transitions so far.
    pub fn transition_count(&self) -> usize {
        self.triplets.len()
    }

    /// Finalises the chain.
    ///
    /// # Errors
    ///
    /// [`MarkovError::EmptyChain`] when `n == 0`, or an error propagated
    /// from sparse-matrix assembly.
    pub fn build(self) -> Result<Ctmc, MarkovError> {
        if self.n == 0 {
            return Err(MarkovError::EmptyChain);
        }
        let rates = CsrMatrix::from_triplets(self.n, self.n, self.triplets)?;
        let exit = rates.row_sums();
        Ok(Ctmc {
            n: self.n,
            rates,
            exit,
            labels: match self.labels {
                Some(v) => Labels::Named(v),
                None => Labels::Default,
            },
        })
    }
}

/// State labels: either lazily-derived defaults (`s0`, `s1`, …; zero
/// storage, the choice for million-state derived chains) or an explicit
/// per-state vector.
#[derive(Debug, Clone, PartialEq)]
enum Labels {
    Default,
    Named(Vec<String>),
}

/// A validated continuous-time Markov chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    n: usize,
    rates: CsrMatrix,
    exit: Vec<f64>,
    labels: Labels,
}

impl Ctmc {
    /// Wraps an already-assembled off-diagonal rate matrix as a CTMC,
    /// validating the generator invariants in one `O(nnz)` pass. This is
    /// the bulk-construction path for huge derived chains (the paper's
    /// §5 discretisation) whose rate matrices are built by two-pass
    /// counted CSR assembly ([`crate::sparse::CsrAssembler`]) — no
    /// triplet temporary, no per-rate builder call.
    ///
    /// States get default labels (`s0`, `s1`, …).
    ///
    /// # Errors
    ///
    /// [`MarkovError::EmptyChain`] for a 0×0 matrix,
    /// [`MarkovError::InvalidArgument`] for a non-square matrix,
    /// [`MarkovError::SelfLoop`] when a diagonal entry is stored, and
    /// [`MarkovError::InvalidRate`] for a negative rate (non-finite
    /// values are already rejected by CSR assembly).
    pub fn from_rate_matrix(rates: CsrMatrix) -> Result<Ctmc, MarkovError> {
        if rates.rows() == 0 {
            return Err(MarkovError::EmptyChain);
        }
        if rates.rows() != rates.cols() {
            return Err(MarkovError::InvalidArgument(format!(
                "rate matrix must be square, got {}x{}",
                rates.rows(),
                rates.cols()
            )));
        }
        for (i, j, r) in rates.iter() {
            if i == j {
                return Err(MarkovError::SelfLoop { state: i });
            }
            if !r.is_finite() || r < 0.0 {
                return Err(MarkovError::InvalidRate {
                    from: i,
                    to: j,
                    rate: r,
                });
            }
        }
        let n = rates.rows();
        let exit = rates.row_sums();
        Ok(Ctmc {
            n,
            rates,
            exit,
            labels: Labels::Default,
        })
    }

    /// Pattern-reuse constructor: a chain with this chain's transition
    /// **pattern** (same state count, same `(from, to)` pairs in the same
    /// CSR order) and new rate `values`. Exit rates are recomputed in one
    /// `O(nnz)` pass; labels carry over; the structural arrays are shared
    /// by clone — no assembly, no sort, no self-loop re-scan (the pattern
    /// was validated when this chain was built). Sweep planners key calls
    /// to this on [`Ctmc::structural_fingerprint`].
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `values.len()` differs from
    /// [`Ctmc::n_transitions`] or a value is non-finite;
    /// [`MarkovError::InvalidRate`] for a negative rate.
    pub fn with_rate_values(&self, values: Vec<f64>) -> Result<Ctmc, MarkovError> {
        let rates = self.rates.with_values(values)?;
        for (i, j, r) in rates.iter() {
            if r < 0.0 {
                return Err(MarkovError::InvalidRate {
                    from: i,
                    to: j,
                    rate: r,
                });
            }
        }
        let exit = rates.row_sums();
        Ok(Ctmc {
            n: self.n,
            rates,
            exit,
            labels: self.labels.clone(),
        })
    }

    /// A 64-bit fingerprint of the chain's transition **structure** (the
    /// rate matrix's sparsity pattern; values excluded). Chains with equal
    /// fingerprints can share every pattern-derived artefact — CSR
    /// layout, DIA offsets, active-window growth bounds — which is what
    /// the sweep planner groups scenarios by.
    pub fn structural_fingerprint(&self) -> u64 {
        self.rates.pattern_fingerprint()
    }

    /// Number of states.
    #[inline]
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// The off-diagonal rate matrix in CSR form.
    #[inline]
    pub fn rates(&self) -> &CsrMatrix {
        &self.rates
    }

    /// Total number of (off-diagonal) transitions.
    #[inline]
    pub fn n_transitions(&self) -> usize {
        self.rates.nnz()
    }

    /// Exit rate `q_i = Σ_{j≠i} q_{ij}` of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_states()`.
    #[inline]
    pub fn exit_rate(&self, i: usize) -> f64 {
        self.exit[i]
    }

    /// All exit rates.
    #[inline]
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// The largest exit rate, i.e. the minimal uniformisation rate.
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// `true` when state `i` is absorbing (no outgoing rate).
    pub fn is_absorbing(&self, i: usize) -> bool {
        self.exit[i] == 0.0
    }

    /// Label of state `i` (borrowed when explicitly named, derived on the
    /// fly for default-labelled chains).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_states()`.
    pub fn state_label(&self, i: usize) -> std::borrow::Cow<'_, str> {
        match &self.labels {
            Labels::Named(v) => std::borrow::Cow::Borrowed(v[i].as_str()),
            Labels::Default => {
                assert!(i < self.n, "state {i} out of range for {} states", self.n);
                std::borrow::Cow::Owned(format!("s{i}"))
            }
        }
    }

    /// `true` when the chain carries explicitly assigned labels (as
    /// opposed to the lazily-derived `s0`, `s1`, … defaults). Chain
    /// transformations use this to skip copying labels that the rebuilt
    /// chain would derive identically for free — keeping million-state
    /// derived chains label-storage-free end to end.
    pub fn has_custom_labels(&self) -> bool {
        matches!(self.labels, Labels::Named(_))
    }

    /// Index of the first state carrying `label`, if any.
    pub fn find_state(&self, label: &str) -> Option<usize> {
        match &self.labels {
            Labels::Named(v) => v.iter().position(|l| l == label),
            Labels::Default => label
                .strip_prefix('s')
                .and_then(|digits| digits.parse::<usize>().ok())
                // Round-trip to reject non-canonical spellings ("s007").
                .filter(|&i| i < self.n && format!("s{i}") == label),
        }
    }

    /// The dense generator matrix `Q` (diagonal filled in). Intended for
    /// small chains only — memory is `O(n²)`.
    pub fn generator_dense(&self) -> numerics::linalg::DenseMatrix {
        let mut q = numerics::linalg::DenseMatrix::zeros(self.n, self.n);
        for (i, j, r) in self.rates.iter() {
            q[(i, j)] = r;
        }
        for i in 0..self.n {
            q[(i, i)] = -self.exit[i];
        }
        q
    }

    /// The uniformised DTMC `P = I + Q/ν` with `ν = factor · max_i q_i`,
    /// returned together with ν. `factor > 1` leaves strictly positive
    /// self-loop probability on the fastest states, which damps the
    /// periodicity artefacts of uniformisation.
    ///
    /// For a chain whose states are all absorbing, `ν = 0` and `P = I` is
    /// returned with `ν` set to 0; callers special-case this (the
    /// transient distribution is constant).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `factor < 1`.
    pub fn uniformised(&self, factor: f64) -> Result<(CsrMatrix, f64), MarkovError> {
        let (nu, stay) = self.uniformisation_diagonal(factor)?;
        if nu == 0.0 {
            let eye: Vec<_> = (0..self.n).map(|i| (i, i, 1.0)).collect();
            return Ok((CsrMatrix::from_triplets(self.n, self.n, eye)?, 0.0));
        }
        // Direct CSR assembly: rows stay sorted, the diagonal is spliced
        // in place — no triplet temporary, no O(nnz log nnz) sort.
        Ok((self.rates.scaled_add_diag(1.0 / nu, &stay)?, nu))
    }

    /// The **transposed** uniformised DTMC `Pᵀ = (I + Q/ν)ᵀ`, built
    /// directly from the rate matrix in one `O(nnz)` counting pass —
    /// no intermediate `P`, no transpose copy.
    ///
    /// The transient engines iterate `vₙ₊₁ᵀ = vₙᵀ P`, i.e. repeated
    /// `Pᵀ·v` products, so this is the matrix the hot path actually
    /// wants. Semantics of ν and the all-absorbing case match
    /// [`Ctmc::uniformised`] (the identity is its own transpose).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `factor < 1`.
    pub fn uniformised_transposed(&self, factor: f64) -> Result<(CsrMatrix, f64), MarkovError> {
        let (nu, stay) = self.uniformisation_diagonal(factor)?;
        if nu == 0.0 {
            let eye: Vec<_> = (0..self.n).map(|i| (i, i, 1.0)).collect();
            return Ok((CsrMatrix::from_triplets(self.n, self.n, eye)?, 0.0));
        }
        Ok((self.rates.transpose_scaled_add_diag(1.0 / nu, &stay)?, nu))
    }

    /// [`Ctmc::uniformised_transposed`] with automatic representation
    /// selection: when the rate matrix occupies a small fixed set of
    /// diagonals (every discretised battery lattice does — workload hop,
    /// consumption, recovery are constant index deltas), `Pᵀ` is emitted
    /// **directly in banded (DIA) form** and the generic CSR matrix is
    /// never materialised on the hot path. Unstructured chains fall back
    /// to the CSR emission unchanged.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `factor < 1`.
    pub fn uniformised_transposed_auto(
        &self,
        factor: f64,
    ) -> Result<(TransitionMatrix, f64), MarkovError> {
        let (nu, stay) = self.uniformisation_diagonal(factor)?;
        if nu == 0.0 {
            let (eye, _) = self.uniformised_transposed(factor)?;
            return Ok((TransitionMatrix::Csr(eye), 0.0));
        }
        match BandedMatrix::transposed_scaled_add_diag(&self.rates, 1.0 / nu, &stay)? {
            Some(banded) => Ok((TransitionMatrix::Banded(banded), nu)),
            None => Ok((
                TransitionMatrix::Csr(self.rates.transpose_scaled_add_diag(1.0 / nu, &stay)?),
                nu,
            )),
        }
    }

    /// [`Ctmc::uniformised_transposed_auto`] forced to banded storage,
    /// regardless of profitability (benchmark baselines compare the
    /// representations; production code should use the auto variant).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `factor < 1`.
    pub fn uniformised_transposed_banded(
        &self,
        factor: f64,
    ) -> Result<(BandedMatrix, f64), MarkovError> {
        let (nu, stay) = self.uniformisation_diagonal(factor)?;
        if nu == 0.0 {
            let (eye, _) = self.uniformised_transposed(factor)?;
            return Ok((BandedMatrix::from_csr(&eye)?, 0.0));
        }
        match BandedMatrix::transposed_scaled_add_diag(&self.rates, 1.0 / nu, &stay)? {
            Some(banded) => Ok((banded, nu)),
            None => {
                let pt = self.rates.transpose_scaled_add_diag(1.0 / nu, &stay)?;
                Ok((BandedMatrix::from_csr(&pt)?, nu))
            }
        }
    }

    /// [`Ctmc::uniformised_transposed_banded`] with the diagonal offsets
    /// supplied by the caller — the pattern-reuse fast path for sweep
    /// plans: the offsets were detected once on a structurally identical
    /// chain (equal [`Ctmc::structural_fingerprint`]) and every later
    /// member emits its `Pᵀ` straight onto them, skipping detection and
    /// the profitability probe. A structural mismatch (an entry on a
    /// missing diagonal) is an error; callers fall back to
    /// [`Ctmc::uniformised_transposed_auto`].
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `factor < 1` or the offsets
    /// do not cover this chain's transposed pattern.
    pub fn uniformised_transposed_banded_with_offsets(
        &self,
        factor: f64,
        offsets: &[isize],
    ) -> Result<(BandedMatrix, f64), MarkovError> {
        let (nu, stay) = self.uniformisation_diagonal(factor)?;
        if nu == 0.0 {
            let (eye, _) = self.uniformised_transposed(factor)?;
            return Ok((BandedMatrix::from_csr(&eye)?, 0.0));
        }
        let banded = BandedMatrix::transposed_scaled_add_diag_with_offsets(
            &self.rates,
            1.0 / nu,
            &stay,
            offsets,
        )?;
        Ok((banded, nu))
    }

    /// Shared uniformisation setup: validates `factor`, computes ν and
    /// the self-loop probabilities `1 − qᵢ/ν` (empty when ν = 0).
    fn uniformisation_diagonal(&self, factor: f64) -> Result<(f64, Vec<f64>), MarkovError> {
        if !(factor >= 1.0) {
            return Err(MarkovError::InvalidArgument(format!(
                "uniformisation factor must be ≥ 1, got {factor}"
            )));
        }
        let nu = self.max_exit_rate() * factor;
        if nu == 0.0 {
            return Ok((0.0, Vec::new()));
        }
        Ok((nu, self.exit.iter().map(|&q| 1.0 - q / nu).collect()))
    }

    /// Graphviz/DOT rendering of the chain with labels and rates, for
    /// documentation and debugging of workload models.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph ctmc {\n  rankdir=LR;\n");
        for i in 0..self.n {
            let l = self.state_label(i);
            out.push_str(&format!("  {i} [label=\"{l}\"];\n"));
        }
        for (i, j, r) in self.rates.iter() {
            out.push_str(&format!("  {i} -> {j} [label=\"{r}\"];\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Validates that `alpha` is a probability distribution over the state
    /// space (length `n`, entries in `[0,1]`, sum ≈ 1).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidDistribution`] describing the violation.
    pub fn check_distribution(&self, alpha: &[f64]) -> Result<(), MarkovError> {
        if alpha.len() != self.n {
            return Err(MarkovError::InvalidDistribution(format!(
                "length {} but chain has {} states",
                alpha.len(),
                self.n
            )));
        }
        if alpha.iter().any(|&p| !(0.0..=1.0 + 1e-9).contains(&p)) {
            return Err(MarkovError::InvalidDistribution(
                "entry outside [0, 1]".into(),
            ));
        }
        let total: f64 = alpha.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(MarkovError::InvalidDistribution(format!("sums to {total}")));
        }
        Ok(())
    }

    /// The point distribution concentrated on `state`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::StateOutOfRange`] when `state >= n_states()`.
    pub fn point_distribution(&self, state: usize) -> Result<Vec<f64>, MarkovError> {
        if state >= self.n {
            return Err(MarkovError::StateOutOfRange {
                state,
                n_states: self.n,
            });
        }
        let mut alpha = vec![0.0; self.n];
        alpha[state] = 1.0;
        Ok(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        b.rate(1, 0, 3.0).unwrap();
        b.label(0, "on").label(1, "off");
        b.build().unwrap()
    }

    #[test]
    fn builder_validation() {
        let mut b = CtmcBuilder::new(2);
        assert!(matches!(
            b.rate(2, 0, 1.0),
            Err(MarkovError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            b.rate(0, 5, 1.0),
            Err(MarkovError::StateOutOfRange { .. })
        ));
        assert!(matches!(
            b.rate(0, 0, 1.0),
            Err(MarkovError::SelfLoop { .. })
        ));
        assert!(matches!(
            b.rate(0, 1, -1.0),
            Err(MarkovError::InvalidRate { .. })
        ));
        assert!(matches!(
            b.rate(0, 1, f64::NAN),
            Err(MarkovError::InvalidRate { .. })
        ));
        b.rate(0, 1, 0.0).unwrap(); // zero rates allowed, ignored
        assert_eq!(b.transition_count(), 0);
        assert!(matches!(
            CtmcBuilder::new(0).build(),
            Err(MarkovError::EmptyChain)
        ));
    }

    #[test]
    fn rates_accumulate() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.5).unwrap();
        b.rate(0, 1, 0.5).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.rates().get(0, 1), 2.0);
        assert_eq!(c.exit_rate(0), 2.0);
    }

    #[test]
    fn exit_rates_and_absorbing() {
        let c = two_state();
        assert_eq!(c.exit_rate(0), 2.0);
        assert_eq!(c.exit_rate(1), 3.0);
        assert_eq!(c.exit_rates(), &[2.0, 3.0]);
        assert_eq!(c.max_exit_rate(), 3.0);
        assert!(!c.is_absorbing(0));

        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let c = b.build().unwrap();
        assert!(c.is_absorbing(1));
    }

    #[test]
    fn labels_and_lookup() {
        let c = two_state();
        assert_eq!(c.state_label(0), "on");
        assert_eq!(c.find_state("off"), Some(1));
        assert_eq!(c.find_state("missing"), None);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let c = two_state();
        let q = c.generator_dense();
        for i in 0..2 {
            let s: f64 = q.row(i).iter().sum();
            assert!(s.abs() < 1e-15);
        }
        assert_eq!(q[(0, 0)], -2.0);
        assert_eq!(q[(0, 1)], 2.0);
    }

    #[test]
    fn uniformised_is_stochastic() {
        let c = two_state();
        let (p, nu) = c.uniformised(1.02).unwrap();
        assert!((nu - 3.06).abs() < 1e-12);
        for i in 0..2 {
            let total: f64 = p.row(i).map(|(_, v)| v).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
        // Fastest state keeps positive self-loop thanks to factor > 1.
        assert!(p.get(1, 1) > 0.0);
        assert!(c.uniformised(0.5).is_err());
    }

    #[test]
    fn uniformised_transposed_is_transpose_of_uniformised() {
        let mut b = CtmcBuilder::new(4);
        for (f, t, r) in [
            (0usize, 1usize, 1.2),
            (0, 3, 0.4),
            (1, 2, 2.3),
            (2, 3, 1.7),
            (3, 0, 0.9),
        ] {
            b.rate(f, t, r).unwrap();
        }
        let c = b.build().unwrap();
        let (p, nu) = c.uniformised(1.02).unwrap();
        let (pt, nu_t) = c.uniformised_transposed(1.02).unwrap();
        assert_eq!(nu, nu_t);
        assert_eq!(pt, p.transpose());
        // Columns of Pᵀ sum to 1 (rows of the stochastic P).
        let col_sums = pt.vec_mul(&[1.0; 4]).unwrap();
        for s in col_sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert!(c.uniformised_transposed(0.5).is_err());
        // All-absorbing: Pᵀ = I with ν = 0.
        let absorbing = CtmcBuilder::new(2).build().unwrap();
        let (pt, nu) = absorbing.uniformised_transposed(1.0).unwrap();
        assert_eq!(nu, 0.0);
        assert_eq!(pt.get(0, 0), 1.0);
        assert_eq!(pt.get(1, 1), 1.0);
    }

    #[test]
    fn auto_representation_picks_banded_for_lattices_only() {
        // A birth–death lattice: 2 offsets on many states → banded.
        let n = 64;
        let mut b = CtmcBuilder::new(n);
        for i in 1..n {
            b.rate(i, i - 1, 1.0).unwrap();
            if i + 1 < n {
                b.rate(i, i + 1, 0.5).unwrap();
            }
        }
        let lattice = b.build().unwrap();
        let (auto, nu) = lattice.uniformised_transposed_auto(1.02).unwrap();
        let (csr, nu_csr) = lattice.uniformised_transposed(1.02).unwrap();
        assert_eq!(nu, nu_csr);
        let banded = auto.as_banded().expect("lattice goes banded");
        assert_eq!(banded.to_csr(), csr, "same matrix either way");
        // The forced-banded variant agrees too.
        let (forced, nu_b) = lattice.uniformised_transposed_banded(1.02).unwrap();
        assert_eq!(nu_b, nu);
        assert_eq!(&forced, banded);

        // A tiny dense-ish chain scatters over too many diagonals for
        // its size: auto falls back to CSR (forced banded still works).
        let mut b = CtmcBuilder::new(4);
        for (f, t, r) in [(0usize, 1usize, 1.2), (0, 3, 0.4), (1, 2, 2.3), (3, 0, 0.9)] {
            b.rate(f, t, r).unwrap();
        }
        let dense = b.build().unwrap();
        let (auto, _) = dense.uniformised_transposed_auto(1.02).unwrap();
        assert!(auto.as_banded().is_none(), "unstructured chain stays CSR");
        let (pt_csr, _) = dense.uniformised_transposed(1.02).unwrap();
        let (forced, _) = dense.uniformised_transposed_banded(1.02).unwrap();
        assert_eq!(forced.to_csr(), pt_csr);

        // All-absorbing: identity at ν = 0, in both variants.
        let absorbing = CtmcBuilder::new(3).build().unwrap();
        let (eye, nu) = absorbing.uniformised_transposed_auto(1.0).unwrap();
        assert_eq!(nu, 0.0);
        assert_eq!(eye.rows(), 3);
        assert_eq!(eye.entries_per_product(), 3);
        let (eye_b, nu_b) = absorbing.uniformised_transposed_banded(1.0).unwrap();
        assert_eq!(nu_b, 0.0);
        assert_eq!(eye_b.offsets(), &[0]);
        assert!(absorbing.uniformised_transposed_auto(0.5).is_err());
        assert!(absorbing.uniformised_transposed_banded(0.5).is_err());
    }

    #[test]
    fn from_rate_matrix_validates_generator_invariants() {
        let rates = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let c = Ctmc::from_rate_matrix(rates).unwrap();
        assert_eq!(c.n_states(), 2);
        assert_eq!(c.exit_rate(0), 2.0);
        assert_eq!(c.state_label(1), "s1");

        let self_loop = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            Ctmc::from_rate_matrix(self_loop),
            Err(MarkovError::SelfLoop { state: 0 })
        ));
        let negative = CsrMatrix::from_triplets(2, 2, vec![(0, 1, -1.0)]).unwrap();
        assert!(matches!(
            Ctmc::from_rate_matrix(negative),
            Err(MarkovError::InvalidRate { .. })
        ));
        let rect = CsrMatrix::zeros(2, 3);
        assert!(Ctmc::from_rate_matrix(rect).is_err());
        assert!(matches!(
            Ctmc::from_rate_matrix(CsrMatrix::zeros(0, 0)),
            Err(MarkovError::EmptyChain)
        ));
    }

    #[test]
    fn with_rate_values_reuses_the_pattern() {
        let c = two_state();
        let scaled = c.with_rate_values(vec![4.0, 6.0]).unwrap();
        assert_eq!(scaled.rates().get(0, 1), 4.0);
        assert_eq!(scaled.rates().get(1, 0), 6.0);
        assert_eq!(scaled.exit_rate(0), 4.0);
        assert_eq!(scaled.exit_rate(1), 6.0);
        // Labels and the structural fingerprint carry over.
        assert_eq!(scaled.state_label(0), "on");
        assert_eq!(c.structural_fingerprint(), scaled.structural_fingerprint());
        assert!(c.rates().same_pattern(scaled.rates()));
        // Validation still applies to the new values.
        assert!(c.with_rate_values(vec![1.0]).is_err());
        assert!(c.with_rate_values(vec![-1.0, 2.0]).is_err());
        assert!(c.with_rate_values(vec![f64::INFINITY, 2.0]).is_err());
        // A structurally different chain fingerprints differently.
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 2.0).unwrap();
        let one_way = b.build().unwrap();
        assert_ne!(c.structural_fingerprint(), one_way.structural_fingerprint());
    }

    #[test]
    fn default_labels_are_lazy_but_searchable() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.state_label(0), "s0");
        assert_eq!(c.state_label(2), "s2");
        assert_eq!(c.find_state("s1"), Some(1));
        assert_eq!(c.find_state("s3"), None, "out of range");
        assert_eq!(c.find_state("s01"), None, "non-canonical spelling");
        assert_eq!(c.find_state("x0"), None);
        assert!(c.to_dot().contains("\"s2\""));
    }

    #[test]
    fn uniformised_all_absorbing() {
        let c = CtmcBuilder::new(3).build().unwrap();
        let (p, nu) = c.uniformised(1.0).unwrap();
        assert_eq!(nu, 0.0);
        for i in 0..3 {
            assert_eq!(p.get(i, i), 1.0);
        }
    }

    #[test]
    fn distribution_checks() {
        let c = two_state();
        assert!(c.check_distribution(&[0.5, 0.5]).is_ok());
        assert!(c.check_distribution(&[0.5]).is_err());
        assert!(c.check_distribution(&[0.7, 0.7]).is_err());
        assert!(c.check_distribution(&[-0.1, 1.1]).is_err());
        assert_eq!(c.point_distribution(1).unwrap(), vec![0.0, 1.0]);
        assert!(c.point_distribution(7).is_err());
    }

    #[test]
    fn dot_export_mentions_labels_and_rates() {
        let dot = two_state().to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"on\""));
        assert!(dot.contains("0 -> 1 [label=\"2\"]"));
    }
}
