//! Continuous-time Markov chain substrate for `kibam-rs`.
//!
//! The Markovian approximation of Cloth, Jongerden & Haverkort (DSN'07)
//! reduces battery-lifetime analysis to the **transient solution of a large
//! sparse CTMC**. This crate provides everything that reduction needs:
//!
//! * [`sparse`] — compressed-sparse-row matrices with sequential and
//!   multi-threaded matrix–vector products;
//! * [`banded`] — DIA-style diagonal storage for the lattice-structured
//!   chains of the discretisation, with branch-free fused kernels and
//!   automatic conversion from CSR;
//! * [`ctmc`] — validated CTMC construction (generators, exit rates,
//!   uniformisation, Graphviz export);
//! * [`foxglynn`] — Poisson probability weights with left/right truncation
//!   for uniformisation sums up to `λt ≈ 10⁵`;
//! * [`transient`] — the uniformisation engine, including a *curve* variant
//!   that reuses one sweep of sparse matrix–vector products for every time
//!   point of a lifetime-distribution curve, with steady-state detection;
//! * [`steady_state`] — Grassmann–Taksar–Heyman elimination (dense) and
//!   Gauss–Seidel (sparse) stationary solvers, used to calibrate the
//!   paper's burst workload (`λ_burst = 182/h`);
//! * [`absorbing`] — absorption probabilities and mean time to absorption,
//!   giving mean battery lifetimes directly from the discretised chain;
//! * [`budget`] — cooperative cancellation tokens (shared cancel flag +
//!   deadline) that the transient engines check once per iteration,
//!   surfacing [`MarkovError::DeadlineExceeded`] with the work done;
//! * [`dtmc`] — embedded jump chains;
//! * [`reachability`] — CSRL-style time-bounded reachability (the query
//!   class the battery-lifetime distribution instantiates);
//! * [`mrm`] — homogeneous Markov reward models;
//! * [`sericola`] — Sericola's exact uniformisation-based algorithm for the
//!   performability distribution `Pr{Y(t) > y}`, the "exact" curve of the
//!   paper's Fig. 10.
//!
//! # Examples
//!
//! Transient analysis of a two-state on/off chain:
//!
//! ```
//! use markov::ctmc::CtmcBuilder;
//! use markov::transient::transient_distribution;
//!
//! let mut b = CtmcBuilder::new(2);
//! b.rate(0, 1, 2.0).unwrap();
//! b.rate(1, 0, 2.0).unwrap();
//! let chain = b.build().unwrap();
//! let sol = transient_distribution(&chain, &[1.0, 0.0], 0.5, 1e-12).unwrap();
//! // Closed form: π₀(t) = (1 + e^{-4t})/2.
//! assert!((sol.distribution[0] - 0.5 * (1.0 + (-2.0f64).exp())).abs() < 1e-10);
//! ```

pub mod absorbing;
pub mod banded;
pub mod budget;
pub mod ctmc;
pub mod dtmc;
pub mod foxglynn;
pub mod mrm;
pub mod pool;
pub mod reachability;
pub mod sericola;
pub mod sparse;
pub mod steady_state;
pub mod transient;

mod error;
mod simd;

pub use budget::Budget;
pub use error::MarkovError;
