//! Explicit vector inner loops for the branch-free DIA interior.
//!
//! The banded kernel's interior is a chain of elementwise
//! multiply–accumulate passes `y[i] += v[i]·x[i]` (one per stored
//! diagonal, over a cache-blocked output segment). Each element is
//! updated independently — no horizontal reduction — so *any* lane
//! width or unroll factor produces results bit-identical to the naive
//! loop. That independence is what lets the `simd` feature gate swap
//! implementations without perturbing a single bit of engine output,
//! and it is asserted by the tests below.
//!
//! Two implementations sit behind [`mul_add`]:
//!
//! * **default** — a manual 4-lane unrolled scalar loop. Plain stable
//!   Rust, no `unsafe`; the fixed-width chunks give the compiler
//!   straight-line code it reliably auto-vectorises.
//! * **`--features simd`** — SSE2 intrinsics on `x86_64`
//!   (`std::arch`; SSE2 is part of the x86_64 baseline, so no runtime
//!   detection is needed). `core::simd` is still nightly-only, so the
//!   stable build uses the intrinsics directly: elementwise
//!   `_mm_mul_pd`/`_mm_add_pd` — exact IEEE multiply then add, **no
//!   FMA** — hence bit-identical to the scalar path. Non-x86_64
//!   targets fall back to the scalar loop.

/// `y[i] += v[i] * x[i]` over three equal-length slices.
///
/// Bit-identical across both implementations (see the module docs);
/// the active one is selected at compile time by the `simd` feature.
#[inline]
pub(crate) fn mul_add(y: &mut [f64], v: &[f64], x: &[f64]) {
    debug_assert_eq!(y.len(), v.len());
    debug_assert_eq!(y.len(), x.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        mul_add_sse2(y, v, x);
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        mul_add_scalar(y, v, x);
    }
}

/// The default path: 4-lane manually unrolled scalar multiply–add.
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(dead_code))]
#[inline]
fn mul_add_scalar(y: &mut [f64], v: &[f64], x: &[f64]) {
    let mut yq = y.chunks_exact_mut(4);
    let mut vq = v.chunks_exact(4);
    let mut xq = x.chunks_exact(4);
    for ((yc, vc), xc) in (&mut yq).zip(&mut vq).zip(&mut xq) {
        yc[0] += vc[0] * xc[0];
        yc[1] += vc[1] * xc[1];
        yc[2] += vc[2] * xc[2];
        yc[3] += vc[3] * xc[3];
    }
    for ((yr, &vr), &xr) in yq
        .into_remainder()
        .iter_mut()
        .zip(vq.remainder())
        .zip(xq.remainder())
    {
        *yr += vr * xr;
    }
}

/// The `simd` path on x86_64: two 128-bit lanes per step via SSE2.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn mul_add_sse2(y: &mut [f64], v: &[f64], x: &[f64]) {
    use std::arch::x86_64::{_mm_add_pd, _mm_loadu_pd, _mm_mul_pd, _mm_storeu_pd};
    let n = y.len();
    let pairs = n & !1;
    // SAFETY: SSE2 is unconditionally available on x86_64; every
    // unaligned load/store below stays within the equal-length slices
    // (`i + 1 < n` for all `i < pairs`).
    unsafe {
        let mut i = 0;
        while i < pairs {
            let yv = _mm_loadu_pd(y.as_ptr().add(i));
            let vv = _mm_loadu_pd(v.as_ptr().add(i));
            let xv = _mm_loadu_pd(x.as_ptr().add(i));
            _mm_storeu_pd(y.as_mut_ptr().add(i), _mm_add_pd(yv, _mm_mul_pd(vv, xv)));
            i += 2;
        }
    }
    if pairs < n {
        y[pairs] += v[pairs] * x[pairs];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(y: &mut [f64], v: &[f64], x: &[f64]) {
        for ((out, &a), &b) in y.iter_mut().zip(v).zip(x) {
            *out += a * b;
        }
    }

    #[test]
    fn dispatch_is_bit_identical_to_the_naive_loop() {
        // Every length through several unroll remainders, with values
        // chosen to exercise rounding (irrational-ish magnitudes).
        for n in 0..33 {
            let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7311).sin() * 3.0).collect();
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 1.133).cos() / 7.0).collect();
            let base: Vec<f64> = (0..n).map(|i| (i as f64) * 0.01 - 0.1).collect();
            let mut expect = base.clone();
            naive(&mut expect, &v, &x);
            let mut got = base.clone();
            mul_add(&mut got, &v, &x);
            assert_eq!(got, expect, "n = {n}");
            let mut scalar = base.clone();
            mul_add_scalar(&mut scalar, &v, &x);
            assert_eq!(scalar, expect, "scalar n = {n}");
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            {
                let mut sse = base;
                mul_add_sse2(&mut sse, &v, &x);
                assert_eq!(sse, expect, "sse2 n = {n}");
            }
        }
    }
}
