//! Time-bounded reachability for CTMCs.
//!
//! `Pr[reach B within t]` is the workhorse query of CSRL model checking —
//! the line of work this paper's algorithm grew out of (its refs. \[15\],
//! \[16\]) — and the battery-lifetime distribution itself is exactly such a
//! query on the derived chain (`B` = the battery-empty states). This
//! module exposes the standard reduction for *any* CTMC and target set:
//! make `B` absorbing, then the transient probability of sitting in `B`
//! at time `t` equals the probability of having reached it by `t`.

use crate::ctmc::{Ctmc, CtmcBuilder};
use crate::transient::{measure_curve, TransientOptions};
use crate::MarkovError;

/// `Pr[reach a target state within each t]` from initial distribution
/// `alpha`, for an increasing-or-not grid of time bounds.
///
/// # Errors
///
/// [`MarkovError::InvalidArgument`] when `targets` has the wrong length
/// or selects no state; propagates transient-solver errors.
///
/// # Examples
///
/// ```
/// use markov::ctmc::CtmcBuilder;
/// use markov::reachability::time_bounded_reachability;
/// use markov::transient::TransientOptions;
///
/// // 0 → 1 at rate 2: Pr[reach 1 by t] = 1 − e^{−2t}.
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 2.0).unwrap();
/// let chain = b.build().unwrap();
/// let ps = time_bounded_reachability(
///     &chain, &[false, true], &[1.0, 0.0], &[1.0], &TransientOptions::default(),
/// ).unwrap();
/// assert!((ps[0].1 - (1.0 - (-2.0f64).exp())).abs() < 1e-10);
/// ```
pub fn time_bounded_reachability(
    ctmc: &Ctmc,
    targets: &[bool],
    alpha: &[f64],
    times: &[f64],
    opts: &TransientOptions,
) -> Result<Vec<(f64, f64)>, MarkovError> {
    let n = ctmc.n_states();
    if targets.len() != n {
        return Err(MarkovError::InvalidArgument(format!(
            "target mask has {} entries for {} states",
            targets.len(),
            n
        )));
    }
    if !targets.iter().any(|&b| b) {
        return Err(MarkovError::InvalidArgument("empty target set".into()));
    }
    // Build the absorbing transformation: cut all outgoing transitions of
    // target states.
    let mut builder = CtmcBuilder::new(n);
    // Default-labelled chains re-derive identical labels for free; only
    // explicitly named states are worth copying (a million-state derived
    // chain must not materialise a label vector here).
    let copy_labels = ctmc.has_custom_labels();
    for i in 0..n {
        if copy_labels {
            builder.label(i, ctmc.state_label(i).as_ref());
        }
        if targets[i] {
            continue;
        }
        for (j, rate) in ctmc.rates().row(i) {
            builder.rate(i, j, rate)?;
        }
    }
    let absorbed = builder.build()?;
    let measure: Vec<f64> = targets.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    let curve = measure_curve(&absorbed, alpha, times, &measure, opts)?;
    Ok(curve.points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_hitting_time() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 3.0).unwrap();
        b.rate(1, 0, 100.0).unwrap(); // would bounce back — must be cut
        let chain = b.build().unwrap();
        let ps = time_bounded_reachability(
            &chain,
            &[false, true],
            &[1.0, 0.0],
            &[0.1, 0.5, 2.0],
            &TransientOptions::default(),
        )
        .unwrap();
        for (t, p) in ps {
            let expect = 1.0 - (-3.0 * t).exp();
            assert!((p - expect).abs() < 1e-10, "t = {t}: {p} vs {expect}");
        }
    }

    #[test]
    fn two_hop_chain_erlang_cdf() {
        // 0 → 1 → 2 at equal rates λ: hitting time of 2 is Erlang-2.
        let lambda = 2.0;
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, lambda).unwrap();
        b.rate(1, 2, lambda).unwrap();
        let chain = b.build().unwrap();
        let ps = time_bounded_reachability(
            &chain,
            &[false, false, true],
            &[1.0, 0.0, 0.0],
            &[0.3, 1.0, 3.0],
            &TransientOptions::default(),
        )
        .unwrap();
        for (t, p) in ps {
            let x = lambda * t;
            let expect = 1.0 - (-x).exp() * (1.0 + x);
            assert!((p - expect).abs() < 1e-10, "t = {t}: {p} vs {expect}");
        }
    }

    #[test]
    fn starting_inside_target_is_immediate() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 1.0).unwrap();
        let chain = b.build().unwrap();
        let ps = time_bounded_reachability(
            &chain,
            &[true, false],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &TransientOptions::default(),
        )
        .unwrap();
        assert_eq!(ps[0].1, 1.0, "t = 0 is computed without a Poisson sum");
        assert!((ps[1].1 - 1.0).abs() < 1e-12, "p = {}", ps[1].1);
    }

    #[test]
    fn probability_monotone_in_time() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(1, 0, 0.5).unwrap();
        b.rate(1, 2, 0.25).unwrap();
        let chain = b.build().unwrap();
        let times: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let ps = time_bounded_reachability(
            &chain,
            &[false, false, true],
            &[1.0, 0.0, 0.0],
            &times,
            &TransientOptions::default(),
        )
        .unwrap();
        let mut prev = 0.0;
        for (t, p) in ps {
            assert!(p >= prev - 1e-12, "not monotone at t = {t}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn validation() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 1.0).unwrap();
        let chain = b.build().unwrap();
        let opts = TransientOptions::default();
        assert!(time_bounded_reachability(&chain, &[true], &[1.0, 0.0], &[1.0], &opts).is_err());
        assert!(
            time_bounded_reachability(&chain, &[false, false], &[1.0, 0.0], &[1.0], &opts).is_err()
        );
    }
}
