//! Compressed-sparse-row matrices sized for the discretised battery chains.
//!
//! The paper's Fig. 8 experiment discretises a two-well battery at `Δ = 5`,
//! producing a CTMC with ≈ 10⁶ states and ≈ 3.2·10⁶ non-zero rates whose
//! transient solution takes > 4.6·10⁴ matrix–vector products. The format
//! here is plain CSR with `u32` column indices (halving index memory) and a
//! row-parallel product using `std::thread::scope`.

use crate::MarkovError;
use std::ops::Range;

/// Row count below which parallel SpMV never pays for itself: both the
/// spawn-per-call path ([`CsrMatrix::mul_vec_parallel`]) and the
/// persistent-pool engines fall back to the sequential kernel for
/// smaller matrices. One shared constant so the engines, the legacy
/// path and the benchmark metadata cannot drift apart.
pub const PARALLEL_SPMV_MIN_ROWS: usize = 4096;

/// 64-bit FNV-1a over a sequence of `u64` words — the one hash fold
/// behind every structural fingerprint in the workspace
/// ([`CsrMatrix::pattern_fingerprint`], the discretiser's lattice
/// fingerprint), so widening or swapping the hash is a single change.
pub fn fnv1a_u64(words: impl IntoIterator<Item = u64>) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for word in words {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// A sparse `rows × cols` matrix in compressed-sparse-row format.
///
/// Built from `(row, col, value)` triplets; duplicate entries are summed
/// and any cell whose merged sum is exactly zero is dropped.
///
/// # Examples
///
/// ```
/// use markov::sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 2.0), (1, 0, 3.0), (0, 1, 1.0)]).unwrap();
/// assert_eq!(m.nnz(), 2); // duplicates merged
/// assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

/// One column of a multi-curve panel product: an independent
/// `(x, y, measure, rows)` quadruple advanced through the **same**
/// matrix as every other column of the panel, so the matrix is read
/// once per row (CSR) or once per diagonal segment (DIA) for the whole
/// panel instead of once per column.
///
/// `y` and `measure` are full-length vectors — the kernels write
/// exactly `y[rows]` and read exactly `measure[rows]` — matching the
/// windowed uniformisation engine, which keeps whole-state-space
/// iterates and restricts each product to the column's active window.
/// The variants without a fused dot ignore `measure` entirely (an empty
/// slice is fine there).
#[derive(Debug)]
pub struct PanelColumn<'a> {
    /// The iterate multiplied through the matrix.
    pub x: &'a [f64],
    /// Full-length output vector; exactly `y[rows]` is written.
    pub y: &'a mut [f64],
    /// Full-length measure vector for the fused dot.
    pub measure: &'a [f64],
    /// The row window this column's product is restricted to.
    pub rows: Range<usize>,
}

impl CsrMatrix {
    /// Assembles a matrix from already-validated CSR arrays. Callers must
    /// guarantee the CSR invariants: `row_ptr` has `rows + 1` monotone
    /// entries ending at `col_idx.len()`, every row's columns are strictly
    /// increasing and `< cols`, and `col_idx.len() == values.len()`.
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert_eq!(*row_ptr.last().expect("row_ptr nonempty"), col_idx.len());
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..rows).all(|r| {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            row.windows(2).all(|w| w[0] < w[1]) && row.iter().all(|&c| (c as usize) < cols)
        }));
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a CSR matrix from triplets, merging duplicates by summation
    /// and dropping cells whose merged value is exactly zero (including
    /// duplicates that cancel, e.g. `+1.0` then `−1.0` at the same cell).
    ///
    /// Assembly is two-pass counted scatter — `O(nnz)` up to the sort of
    /// each (small) row — rather than a global `O(nnz log nnz)` sort.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when an index is out of range,
    /// `cols` exceeds `u32` range, or a value is not finite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(usize, usize, f64)>,
    ) -> Result<Self, MarkovError> {
        let mut assembler = CsrAssembler::new(rows, cols)?;
        for &(r, _, _) in &triplets {
            if r >= rows {
                return Err(MarkovError::InvalidArgument(format!(
                    "triplet row {r} out of bounds for {rows}x{cols}"
                )));
            }
            assembler.count(r);
        }
        let mut filler = assembler.into_filler();
        for (r, c, v) in triplets {
            filler.entry(r, c, v)?;
        }
        filler.finish()
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(col, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// The position of entry `(r, c)` within [`CsrMatrix::values`], when
    /// stored. This is the slot a pattern-reuse refill
    /// ([`CsrMatrix::with_values`]) writes the cell's new value to.
    pub fn value_index(&self, r: usize, c: usize) -> Option<usize> {
        if r >= self.rows || c >= self.cols {
            return None;
        }
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .binary_search(&(c as u32))
            .ok()
            .map(|pos| lo + pos)
    }

    /// Looks up entry `(r, c)` (zero when absent).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        if r >= self.rows || c >= self.cols {
            return 0.0;
        }
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&(c as u32)) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Dense matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, MarkovError> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free `y = A·x` into a caller buffer.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), MarkovError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "mul_vec: x has {} (need {}), y has {} (need {})",
                x.len(),
                self.cols,
                y.len(),
                self.rows
            )));
        }
        self.mul_vec_range_into(x, y, 0..self.rows);
        Ok(())
    }

    /// The shared row-block kernel: computes `y_block[i] = (A·x)[rows.start + i]`
    /// for the given row range. `y_block.len()` must equal `rows.len()` and
    /// `x.len()` must equal `cols`. Every row is accumulated left-to-right by
    /// exactly one caller, so any disjoint partition of the rows produces
    /// output bit-identical to the sequential kernel.
    #[inline]
    pub fn mul_vec_range_into(&self, x: &[f64], y_block: &mut [f64], rows: Range<usize>) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y_block.len(), rows.len());
        debug_assert!(rows.end <= self.rows);
        let start = rows.start;
        for (offset, out) in y_block.iter_mut().enumerate() {
            let r = start + offset;
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = acc;
        }
    }

    /// Fused row-block kernel: computes the row range of `y = A·x` like
    /// [`CsrMatrix::mul_vec_range_into`] **and** returns the partial dot
    /// `Σ_i measure_block[i]·y_block[i]` in the same pass, so measuring a
    /// linear functional of the iterate costs no extra sweep over `y`.
    /// `measure_block` is the same row range of the measure vector.
    #[inline]
    pub fn mul_vec_dot_range(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        measure_block: &[f64],
        rows: Range<usize>,
    ) -> f64 {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y_block.len(), rows.len());
        debug_assert_eq!(measure_block.len(), rows.len());
        debug_assert!(rows.end <= self.rows);
        let start = rows.start;
        let mut dot = 0.0;
        for (offset, (out, &m)) in y_block.iter_mut().zip(measure_block).enumerate() {
            let r = start + offset;
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = acc;
            dot += m * acc;
        }
        dot
    }

    /// Row-block kernel fused with the steady-state detector for square
    /// iteration matrices: computes the row range of `y = A·x` and
    /// returns the partial sup-norm `max_i |y[i] − x[i]|` from the same
    /// pass (no measure dot). See [`CsrMatrix::mul_vec_dot_sup_range`]
    /// for the variant that also accumulates a measure.
    #[inline]
    pub fn mul_vec_sup_range(&self, x: &[f64], y_block: &mut [f64], rows: Range<usize>) -> f64 {
        debug_assert_eq!(self.rows, self.cols, "sup-norm needs a square matrix");
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y_block.len(), rows.len());
        debug_assert!(rows.end <= self.rows);
        let start = rows.start;
        let mut sup = 0.0f64;
        for (offset, out) in y_block.iter_mut().enumerate() {
            let r = start + offset;
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = acc;
            sup = sup.max((acc - x[r]).abs());
        }
        sup
    }

    /// Fully fused row-block kernel for square iteration matrices:
    /// computes the row range of `y = A·x`, the partial dot
    /// `Σ_i measure_block[i]·y_block[i]` **and** the partial sup-norm
    /// `max_i |y[i] − x[i]|` over the range, all in one pass. The
    /// sup-norm is the uniformisation engines' steady-state detector —
    /// fusing it saves a third full sweep over the iterate per product
    /// (at 10⁶ states that is 16 MB of avoided memory traffic per
    /// iteration).
    ///
    /// Requires `rows == cols` (the sup-norm compares `y[r]` with
    /// `x[r]`).
    #[inline]
    pub fn mul_vec_dot_sup_range(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        measure_block: &[f64],
        rows: Range<usize>,
    ) -> (f64, f64) {
        debug_assert_eq!(self.rows, self.cols, "sup-norm needs a square matrix");
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y_block.len(), rows.len());
        debug_assert_eq!(measure_block.len(), rows.len());
        debug_assert!(rows.end <= self.rows);
        let start = rows.start;
        let mut dot = 0.0;
        let mut sup = 0.0f64;
        for (offset, (out, &m)) in y_block.iter_mut().zip(measure_block).enumerate() {
            let r = start + offset;
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *out = acc;
            dot += m * acc;
            sup = sup.max((acc - x[r]).abs());
        }
        (dot, sup)
    }

    /// The shared multi-column kernel behind the `mul_panel_*` wrappers:
    /// one pass over the union of the columns' row windows, advancing
    /// every column whose window covers the current row. Each row's CSR
    /// slice (`col_idx`/`values`) is resolved once per row for the whole
    /// panel, so k columns sharing a matrix cost one matrix read per
    /// iteration instead of k.
    ///
    /// Per column the arithmetic — left-to-right accumulation within a
    /// row, the running dot fold over ascending rows, the sup max — is
    /// exactly the single-vector kernel's, so every column's outputs are
    /// bit-identical to a separate `mul_vec_*_range` call on its own
    /// window; k = 1 is the single-vector kernel plus one trivially
    /// predicted branch per row.
    fn panel_kernel<const DOT: bool, const SUP: bool>(
        &self,
        cols: &mut [PanelColumn<'_>],
    ) -> Vec<(f64, f64)> {
        if SUP {
            debug_assert_eq!(self.rows, self.cols, "sup-norm needs a square matrix");
        }
        for col in cols.iter() {
            debug_assert_eq!(col.x.len(), self.cols);
            debug_assert_eq!(col.y.len(), self.rows);
            debug_assert!(col.rows.end <= self.rows);
            if DOT {
                debug_assert_eq!(col.measure.len(), self.rows);
            }
        }
        let mut out: Vec<(f64, f64)> = vec![(0.0, 0.0); cols.len()];
        let lo_all = cols.iter().map(|c| c.rows.start).min().unwrap_or(0);
        let hi_all = cols.iter().map(|c| c.rows.end).max().unwrap_or(0);
        for r in lo_all..hi_all {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let idx = &self.col_idx[lo..hi];
            let vals = &self.values[lo..hi];
            for (col, acc) in cols.iter_mut().zip(&mut out) {
                if !col.rows.contains(&r) {
                    continue;
                }
                let mut row_acc = 0.0;
                for (&v, &c) in vals.iter().zip(idx) {
                    row_acc += v * col.x[c as usize];
                }
                col.y[r] = row_acc;
                if DOT {
                    acc.0 += col.measure[r] * row_acc;
                }
                if SUP {
                    acc.1 = acc.1.max((row_acc - col.x[r]).abs());
                }
            }
        }
        out
    }

    /// Multi-column product `y_j[rows_j] = (A·x_j)[rows_j]` over a panel
    /// of columns sharing this matrix. Bit-identical per column to
    /// [`CsrMatrix::mul_vec_range_into`] on that column's window.
    pub fn mul_panel_range(&self, cols: &mut [PanelColumn<'_>]) {
        self.panel_kernel::<false, false>(cols);
    }

    /// Panel variant of [`CsrMatrix::mul_vec_dot_range`]: one matrix
    /// pass for the whole panel, returning each column's partial dot
    /// `Σ_{r∈rows_j} measure_j[r]·y_j[r]` in column order.
    pub fn mul_panel_dot_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<f64> {
        self.panel_kernel::<true, false>(cols)
            .into_iter()
            .map(|(dot, _)| dot)
            .collect()
    }

    /// Panel variant of [`CsrMatrix::mul_vec_sup_range`]: one matrix
    /// pass for the whole panel, returning each column's partial
    /// sup-norm `max_{r∈rows_j} |y_j[r] − x_j[r]|` in column order.
    pub fn mul_panel_sup_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<f64> {
        self.panel_kernel::<false, true>(cols)
            .into_iter()
            .map(|(_, sup)| sup)
            .collect()
    }

    /// Fully fused panel variant of
    /// [`CsrMatrix::mul_vec_dot_sup_range`]: one matrix pass computing
    /// every column's product, measure dot and steady-state sup-norm,
    /// returned as `(dot, sup)` pairs in column order.
    pub fn mul_panel_dot_sup_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<(f64, f64)> {
        self.panel_kernel::<true, true>(cols)
    }

    /// Fused sequential `y = A·x` returning `measure·y` from the same pass.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension mismatch.
    pub fn mul_vec_dot_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        measure: &[f64],
    ) -> Result<f64, MarkovError> {
        if x.len() != self.cols || y.len() != self.rows || measure.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "mul_vec_dot: x has {} (need {}), y has {} (need {}), measure has {} (need {})",
                x.len(),
                self.cols,
                y.len(),
                self.rows,
                measure.len(),
                self.rows
            )));
        }
        Ok(self.mul_vec_dot_range(x, y, measure, 0..self.rows))
    }

    /// Splits the row space into `parts` contiguous ranges balanced by
    /// **non-zero count** rather than row count, so each range carries
    /// roughly `nnz / parts` of the multiply work even when the sparsity
    /// is skewed (e.g. absorbing rows are empty). Ranges are disjoint, in
    /// order, cover `0..rows`, and may be empty when the matrix has fewer
    /// populated rows than `parts`.
    pub fn nnz_partition(&self, parts: usize) -> Vec<Range<usize>> {
        let parts = parts.max(1);
        let total = self.nnz();
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 1..=parts {
            let end = if p == parts {
                self.rows
            } else {
                // First row boundary whose cumulative nnz reaches the
                // ideal p-th cut. row_ptr is monotone, so binary search.
                let target = (total as u128 * p as u128 / parts as u128) as usize;
                self.row_ptr
                    .partition_point(|&v| v < target)
                    .clamp(start, self.rows)
            };
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// Row-parallel `y = A·x` using `threads` OS threads spawned **per
    /// call**. Falls back to the sequential kernel for small matrices or
    /// `threads <= 1`.
    ///
    /// This is the legacy spawn-per-call path (retained as the benchmark
    /// baseline); repeated products should use a persistent
    /// [`SpmvPool`](crate::pool::SpmvPool) instead, which spawns its
    /// workers once and partitions rows by nnz.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension mismatch.
    pub fn mul_vec_parallel(
        &self,
        x: &[f64],
        y: &mut [f64],
        threads: usize,
    ) -> Result<(), MarkovError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "mul_vec_parallel: x has {} (need {}), y has {} (need {})",
                x.len(),
                self.cols,
                y.len(),
                self.rows
            )));
        }
        if threads <= 1 || self.rows < PARALLEL_SPMV_MIN_ROWS {
            return self.mul_vec_into(x, y);
        }
        let chunk = self.rows.div_ceil(threads);
        // Split `y` into disjoint row blocks so each worker owns its output.
        std::thread::scope(|scope| {
            for (block, y_block) in y.chunks_mut(chunk).enumerate() {
                let start = block * chunk;
                let end = start + y_block.len();
                scope.spawn(move || {
                    self.mul_vec_range_into(x, y_block, start..end);
                });
            }
        });
        Ok(())
    }

    /// Row-vector × matrix product `y = x·A`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if x.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "vec_mul: x has {} entries, need {}",
                x.len(),
                self.rows
            )));
        }
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                y[self.col_idx[k] as usize] += xr * self.values[k];
            }
        }
        Ok(y)
    }

    /// The transposed matrix, built with a counting sort in `O(nnz)`.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                let c = self.col_idx[k] as usize;
                let pos = cursor[c];
                cursor[c] += 1;
                col_idx[pos] = r as u32;
                values[pos] = self.values[k];
            }
        }
        CsrMatrix::from_parts(self.cols, self.rows, row_ptr, col_idx, values)
    }

    /// Builds `scale·A + diag(d)` directly in CSR form, in `O(nnz + n)`
    /// with no triplet temporary or sort: each row of `A` is already
    /// column-sorted, so the diagonal entry is spliced in at its ordered
    /// position (merged if the row already stores the diagonal). Entries
    /// whose merged value is exactly zero are dropped.
    ///
    /// This is the uniformisation assembly primitive: `P = I + Q/ν` is
    /// `scaled_add_diag(1/ν, stay)` over the off-diagonal rate matrix.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when the matrix is not square or
    /// `d.len()` differs from the dimension.
    pub fn scaled_add_diag(&self, scale: f64, d: &[f64]) -> Result<CsrMatrix, MarkovError> {
        if self.rows != self.cols || d.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "scaled_add_diag: matrix is {}x{}, diagonal has {} entries",
                self.rows,
                self.cols,
                d.len()
            )));
        }
        let n = self.rows;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.nnz() + n);
        let mut values = Vec::with_capacity(self.nnz() + n);
        row_ptr.push(0);
        for r in 0..n {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let rc = r as u32;
            let mut diag_pending = d[r] != 0.0;
            for k in lo..hi {
                let c = self.col_idx[k];
                let mut v = scale * self.values[k];
                if c == rc {
                    // The row stores an explicit diagonal: merge.
                    v += d[r];
                    diag_pending = false;
                } else if diag_pending && c > rc {
                    col_idx.push(rc);
                    values.push(d[r]);
                    diag_pending = false;
                }
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            if diag_pending {
                col_idx.push(rc);
                values.push(d[r]);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix::from_parts(n, n, row_ptr, col_idx, values))
    }

    /// Builds `(scale·A + diag(d))ᵀ` directly in CSR form, in `O(nnz + n)`
    /// with a single counting-scatter pass — no intermediate untransposed
    /// matrix, no triplet temporary, no sort.
    ///
    /// This is the uniformisation hot-path primitive: the transient engines
    /// iterate `vᵀP`, i.e. repeated products with `Pᵀ`, and this emits `Pᵀ`
    /// straight from the off-diagonal rate matrix, eliminating both
    /// full-matrix copies of the old `uniformised()` → `transpose()`
    /// round-trip.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when the matrix is not square or
    /// `d.len()` differs from the dimension.
    pub fn transpose_scaled_add_diag(
        &self,
        scale: f64,
        d: &[f64],
    ) -> Result<CsrMatrix, MarkovError> {
        if self.rows != self.cols || d.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "transpose_scaled_add_diag: matrix is {}x{}, diagonal has {} entries",
                self.rows,
                self.cols,
                d.len()
            )));
        }
        let n = self.rows;
        // Output row j holds {scale·A[i][j] : i} ∪ {d[j] if non-zero}.
        // The counting and scatter passes share one predicate per entry:
        // a stored entry (i, c) survives iff its *final* value
        // scale·v (+ d[i] when c == i, the merged diagonal) is non-zero,
        // and d[r] is emitted separately iff non-zero and not merged —
        // so exact cancellations are dropped, matching
        // [`CsrMatrix::scaled_add_diag`].
        let final_value = |i: usize, c: usize, v: f64| {
            let scaled = scale * v;
            if c == i {
                scaled + d[i]
            } else {
                scaled
            }
        };
        let mut counts = vec![0usize; n + 1];
        for r in 0..n {
            if d[r] != 0.0 && self.get(r, r) == 0.0 {
                counts[r + 1] += 1;
            }
        }
        for r in 0..n {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                let c = self.col_idx[k] as usize;
                if final_value(r, c, self.values[k]) != 0.0 {
                    counts[c + 1] += 1;
                }
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let nnz_out = row_ptr[n];
        let mut col_idx = vec![0u32; nnz_out];
        let mut values = vec![0.0; nnz_out];
        let mut cursor = counts;
        // Scatter in increasing source-row order; within each output row
        // the entries then arrive with strictly increasing column (source
        // row) index. The diagonal d[i] belongs to output row i with
        // column i, so it is emitted at step i, before row i's own
        // entries are scattered (those go to output rows ≠ i only when A
        // has an empty diagonal; an explicit A[i][i] is merged instead).
        for i in 0..n {
            if d[i] != 0.0 {
                let pos = cursor[i];
                if self.get(i, i) == 0.0 {
                    cursor[i] += 1;
                    col_idx[pos] = i as u32;
                    values[pos] = d[i];
                }
            }
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for k in lo..hi {
                let c = self.col_idx[k] as usize;
                let v = final_value(i, c, self.values[k]);
                if v != 0.0 {
                    let pos = cursor[c];
                    cursor[c] += 1;
                    col_idx[pos] = i as u32;
                    values[pos] = v;
                }
            }
        }
        Ok(CsrMatrix::from_parts(n, n, row_ptr, col_idx, values))
    }

    /// Sum of each row (e.g. exit rates when the matrix stores off-diagonal
    /// generator entries).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| {
                let lo = self.row_ptr[r];
                let hi = self.row_ptr[r + 1];
                self.values[lo..hi].iter().sum()
            })
            .collect()
    }

    /// Applies `f` to every stored value (used to build `P = I + Q/ν`).
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> CsrMatrix {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// The stored values in CSR order (row-major, columns increasing
    /// within each row) — the numeric half that pattern-sharing sweep
    /// plans re-solve per member while the structure stays fixed.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// A 64-bit FNV-1a fingerprint of the **sparsity pattern** only:
    /// dimensions, row extents and column indices — not the values. Two
    /// matrices with different fingerprints never share a pattern; equal
    /// fingerprints make [`CsrMatrix::same_pattern`] worth the exact
    /// check. Sweep planners key their pattern-reuse caches on this.
    pub fn pattern_fingerprint(&self) -> u64 {
        fnv1a_u64(
            [self.rows as u64, self.cols as u64]
                .into_iter()
                .chain(self.row_ptr.iter().map(|&p| p as u64))
                .chain(self.col_idx.iter().map(|&c| u64::from(c))),
        )
    }

    /// Whether `other` stores exactly the same sparsity pattern
    /// (dimensions, row extents, column indices) — the certain companion
    /// of [`CsrMatrix::pattern_fingerprint`].
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// Pattern-reuse constructor: a matrix with this matrix's sparsity
    /// pattern and new `values` (in CSR order, as laid out by
    /// [`CsrMatrix::values`]). The structural arrays are shared by clone;
    /// no counting pass, no per-row sort, no column validation is
    /// repeated.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `values.len() != nnz()` or a
    /// value is not finite.
    pub fn with_values(&self, values: Vec<f64>) -> Result<CsrMatrix, MarkovError> {
        if values.len() != self.values.len() {
            return Err(MarkovError::InvalidArgument(format!(
                "with_values: {} values for a pattern of {} entries",
                values.len(),
                self.values.len()
            )));
        }
        if let Some(bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(MarkovError::InvalidArgument(format!(
                "with_values: value {bad} is not finite"
            )));
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values,
        })
    }

    /// Iterates over all `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }
}

/// First pass of two-pass counted CSR assembly: tally how many entries
/// each row will receive, with no per-entry storage at all.
///
/// Generators that can enumerate their entries twice (like the paper's
/// discretised battery chain, whose transitions are pure arithmetic on
/// the state index) build matrices through this instead of a triplet
/// vector: pass 1 [`count`](CsrAssembler::count)s each emission, pass 2
/// [`entry`](CsrFiller::entry)s the same emissions, and
/// [`finish`](CsrFiller::finish) merges duplicates per row. Total cost is
/// `O(nnz)` (rows are sorted individually and are short in practice) and
/// the peak memory is the final matrix plus one small per-row scratch —
/// no `O(nnz)` triplet temporary, no global sort.
///
/// # Examples
///
/// ```
/// use markov::sparse::CsrAssembler;
///
/// let mut a = CsrAssembler::new(2, 2).unwrap();
/// a.count(0);
/// a.count(1);
/// let mut f = a.into_filler();
/// f.entry(0, 1, 2.0).unwrap();
/// f.entry(1, 0, 3.0).unwrap();
/// let m = f.finish().unwrap();
/// assert_eq!(m.get(0, 1), 2.0);
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct CsrAssembler {
    rows: usize,
    cols: usize,
    /// `counts[r + 1]` = number of entries counted for row `r` (offset by
    /// one so the prefix sum can run in place).
    counts: Vec<usize>,
}

impl CsrAssembler {
    /// Starts counting for a `rows × cols` matrix.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `cols` exceeds `u32` range.
    pub fn new(rows: usize, cols: usize) -> Result<Self, MarkovError> {
        if cols > u32::MAX as usize {
            return Err(MarkovError::InvalidArgument(format!(
                "column count {cols} exceeds u32 index range"
            )));
        }
        Ok(CsrAssembler {
            rows,
            cols,
            counts: vec![0; rows + 1],
        })
    }

    /// Registers one future entry in row `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row >= rows`; the filling pass re-validates the full
    /// `(row, col, value)` triple with a proper error.
    #[inline]
    pub fn count(&mut self, row: usize) {
        self.counts[row + 1] += 1;
    }

    /// Total entries counted so far.
    pub fn counted(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Seals the counts: prefix-sums them into row offsets and allocates
    /// the value storage for the filling pass.
    pub fn into_filler(mut self) -> CsrFiller {
        for i in 0..self.rows {
            self.counts[i + 1] += self.counts[i];
        }
        let nnz = self.counts[self.rows];
        CsrFiller {
            rows: self.rows,
            cols: self.cols,
            cursor: self.counts[..self.rows].to_vec(),
            row_ptr: self.counts,
            col_idx: vec![0; nnz],
            values: vec![0.0; nnz],
        }
    }
}

/// Second pass of two-pass counted CSR assembly; see [`CsrAssembler`].
#[derive(Debug, Clone)]
pub struct CsrFiller {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    cursor: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrFiller {
    /// Scatters one entry into its counted slot. Entries may arrive in any
    /// order; duplicates of a cell are merged (summed) by
    /// [`finish`](CsrFiller::finish).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when the index is out of bounds,
    /// the value is not finite, or row `row` receives more entries than
    /// were counted for it.
    #[inline]
    pub fn entry(&mut self, row: usize, col: usize, value: f64) -> Result<(), MarkovError> {
        if row >= self.rows || col >= self.cols {
            return Err(MarkovError::InvalidArgument(format!(
                "entry ({row}, {col}) out of bounds for {}x{}",
                self.rows, self.cols
            )));
        }
        if !value.is_finite() {
            return Err(MarkovError::InvalidArgument(format!(
                "non-finite value {value} at ({row}, {col})"
            )));
        }
        let pos = self.cursor[row];
        if pos >= self.row_ptr[row + 1] {
            return Err(MarkovError::InvalidArgument(format!(
                "row {row} received more entries than counted ({})",
                self.row_ptr[row + 1] - self.row_ptr[row]
            )));
        }
        self.cursor[row] = pos + 1;
        self.col_idx[pos] = col as u32;
        self.values[pos] = value;
        Ok(())
    }

    /// Sorts each row by column, merges duplicate cells by summation,
    /// drops cells whose merged value is exactly zero, and returns the
    /// finished matrix.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when any row received fewer
    /// entries than were counted for it.
    pub fn finish(mut self) -> Result<CsrMatrix, MarkovError> {
        for r in 0..self.rows {
            if self.cursor[r] != self.row_ptr[r + 1] {
                return Err(MarkovError::InvalidArgument(format!(
                    "row {r} received {} entries but {} were counted",
                    self.cursor[r] - self.row_ptr[r],
                    self.row_ptr[r + 1] - self.row_ptr[r]
                )));
            }
        }
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        let mut write = 0usize;
        let mut out_row_ptr = vec![0usize; self.rows + 1];
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            scratch.clear();
            scratch.extend(
                self.col_idx[lo..hi]
                    .iter()
                    .copied()
                    .zip(self.values[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|e| e.0);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut acc = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    acc += scratch[i].1;
                    i += 1;
                }
                if acc != 0.0 {
                    // Compaction only moves entries left, so the write
                    // cursor never overtakes the read window.
                    self.col_idx[write] = c;
                    self.values[write] = acc;
                    write += 1;
                }
            }
            out_row_ptr[r + 1] = write;
        }
        self.col_idx.truncate(write);
        self.values.truncate(write);
        self.col_idx.shrink_to_fit();
        self.values.shrink_to_fit();
        Ok(CsrMatrix::from_parts(
            self.rows,
            self.cols,
            out_row_ptr,
            self.col_idx,
            self.values,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn build_and_query() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(9, 9), 0.0);
        let row2: Vec<_> = m.row(2).collect();
        assert_eq!(row2, vec![(0, 3.0), (1, 4.0)]);
    }

    #[test]
    fn duplicates_merge_and_zeros_drop() {
        let m =
            CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5), (1, 1, 0.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn cancelling_duplicates_drop_the_entry() {
        // Regression: +1.0 then −1.0 at the same cell used to leave a
        // stored 0.0 behind.
        let m = CsrMatrix::from_triplets(
            2,
            2,
            vec![(0, 1, 1.0), (0, 1, -1.0), (1, 0, 2.0), (1, 0, -0.5)],
        )
        .unwrap();
        assert_eq!(m.nnz(), 1, "cancelled cell must not be stored");
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 0), 1.5);
        // A zero entry followed by a real one still merges correctly.
        let m = CsrMatrix::from_triplets(1, 2, vec![(0, 0, 0.0), (0, 0, 4.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 4.0);
    }

    #[test]
    fn assembler_two_pass_matches_from_triplets() {
        let trip = vec![
            (2, 1, 4.0),
            (0, 0, 1.0),
            (0, 2, 2.0),
            (2, 0, 3.0),
            (0, 2, 1.5), // duplicate, merged
            (1, 1, 0.0), // explicit zero, dropped
        ];
        let mut a = CsrAssembler::new(3, 3).unwrap();
        for &(r, _, _) in &trip {
            a.count(r);
        }
        assert_eq!(a.counted(), 6);
        let mut f = a.into_filler();
        for &(r, c, v) in &trip {
            f.entry(r, c, v).unwrap();
        }
        let m = f.finish().unwrap();
        assert_eq!(m, CsrMatrix::from_triplets(3, 3, trip).unwrap());
        assert_eq!(m.get(0, 2), 3.5);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn assembler_validates_bounds_counts_and_values() {
        assert!(CsrAssembler::new(1, u32::MAX as usize + 1).is_err());
        let mut a = CsrAssembler::new(2, 2).unwrap();
        a.count(0);
        let mut f = a.into_filler();
        assert!(f.entry(5, 0, 1.0).is_err(), "row out of bounds");
        assert!(f.entry(0, 5, 1.0).is_err(), "col out of bounds");
        assert!(f.entry(0, 0, f64::NAN).is_err(), "non-finite value");
        f.entry(0, 0, 1.0).unwrap();
        assert!(f.entry(0, 1, 1.0).is_err(), "row over-filled");
        // Under-filled rows are caught at finish().
        let mut a = CsrAssembler::new(2, 2).unwrap();
        a.count(1);
        assert!(a.clone().into_filler().finish().is_err());
        let mut f = a.into_filler();
        f.entry(1, 0, 2.0).unwrap();
        assert_eq!(f.finish().unwrap().get(1, 0), 2.0);
    }

    #[test]
    fn scaled_add_diag_splices_diagonal_in_order() {
        let m = sample(); // diag entry only at (0,0)
        let p = m.scaled_add_diag(2.0, &[10.0, 20.0, 30.0]).unwrap();
        // (0,0) merges 2·1 + 10; rows 1 and 2 gain fresh diagonals.
        assert_eq!(p.get(0, 0), 12.0);
        assert_eq!(p.get(0, 2), 4.0);
        assert_eq!(p.get(1, 1), 20.0);
        assert_eq!(p.get(2, 2), 30.0);
        assert_eq!(p.get(2, 0), 6.0);
        assert_eq!(p.nnz(), m.nnz() + 2);
        // Zero diagonal entries are not stored; exact cancellation drops
        // the merged cell.
        let q = m.scaled_add_diag(1.0, &[-1.0, 0.0, 5.0]).unwrap();
        assert_eq!(q.get(0, 0), 0.0);
        assert_eq!(q.nnz(), m.nnz()); // −1 cancels (0,0), row 2 gains (2,2)
        assert!(m.scaled_add_diag(1.0, &[1.0]).is_err());
        let rect = CsrMatrix::zeros(2, 3);
        assert!(rect.scaled_add_diag(1.0, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn transpose_scaled_add_diag_is_transpose_of_scaled_add_diag() {
        let m = sample();
        let d = [0.5, -2.0, 7.0];
        let direct = m.transpose_scaled_add_diag(3.0, &d).unwrap();
        let reference = m.scaled_add_diag(3.0, &d).unwrap().transpose();
        // Full structural equality, not just get(): stored zeros or
        // miscounted rows would differ in nnz/row_ptr.
        assert_eq!(direct, reference);
        assert!(m.transpose_scaled_add_diag(1.0, &[1.0]).is_err());
        // Exact cancellation of a merged diagonal drops the cell on both
        // paths (regression: the scatter pass used to store a 0.0).
        let one = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 1.0)]).unwrap();
        let cancelled = one.transpose_scaled_add_diag(1.0, &[-1.0]).unwrap();
        assert_eq!(cancelled.nnz(), 0);
        assert_eq!(
            cancelled,
            one.scaled_add_diag(1.0, &[-1.0]).unwrap().transpose()
        );
        // scale = 0 zeroes every off-diagonal entry; only diagonals stay.
        let zeroed = m.transpose_scaled_add_diag(0.0, &d).unwrap();
        assert_eq!(zeroed, m.scaled_add_diag(0.0, &d).unwrap().transpose());
        assert_eq!(zeroed.nnz(), 3);
    }

    #[test]
    fn same_column_adjacent_rows_not_merged() {
        // Regression: (0,3) and (1,3) share a column and are adjacent in the
        // sorted triplet order; they must stay separate entries.
        let m = CsrMatrix::from_triplets(2, 4, vec![(0, 3, 1.0), (1, 3, 2.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 3), 1.0);
        assert_eq!(m.get(1, 3), 2.0);
    }

    #[test]
    fn unsorted_triplets_ok() {
        let m = CsrMatrix::from_triplets(
            2,
            3,
            vec![(1, 2, 6.0), (0, 1, 2.0), (1, 0, 4.0), (0, 0, 1.0)],
        )
        .unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 10.0]);
    }

    #[test]
    fn out_of_bounds_and_nonfinite_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, vec![(0, 2, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, vec![(0, 0, f64::NAN)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, vec![(0, 0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn mul_vec_known() {
        let m = sample();
        assert_eq!(m.mul_vec(&[1.0, 2.0, 3.0]).unwrap(), vec![7.0, 0.0, 11.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn vec_mul_is_transpose_mul() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let a = m.vec_mul(&x).unwrap();
        let b = m.transpose().mul_vec(&x).unwrap();
        assert_eq!(a, b);
        assert!(m.vec_mul(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_sums_and_map() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        let d = m.map_values(|v| 2.0 * v);
        assert_eq!(d.get(2, 1), 8.0);
        assert_eq!(d.nnz(), m.nnz());
    }

    #[test]
    fn zeros_matrix() {
        let z = CsrMatrix::zeros(4, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.mul_vec(&[1.0, 1.0]).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn pattern_reuse_constructor_validates_and_shares_structure() {
        let m =
            CsrMatrix::from_triplets(3, 3, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap();
        assert_eq!(m.values(), &[2.0, 3.0, 4.0]);
        let swapped = m.with_values(vec![5.0, 6.0, 7.0]).unwrap();
        assert!(m.same_pattern(&swapped));
        assert_eq!(m.pattern_fingerprint(), swapped.pattern_fingerprint());
        assert_eq!(swapped.get(0, 1), 5.0);
        assert_eq!(swapped.get(2, 0), 7.0);
        // Wrong length and non-finite values are rejected.
        assert!(m.with_values(vec![1.0]).is_err());
        assert!(m.with_values(vec![1.0, f64::NAN, 2.0]).is_err());
        // A different pattern fingerprints differently and fails the
        // exact check, even at equal nnz.
        let other =
            CsrMatrix::from_triplets(3, 3, vec![(0, 2, 2.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap();
        assert!(!m.same_pattern(&other));
        assert_ne!(m.pattern_fingerprint(), other.pattern_fingerprint());
        // Dimensions are part of the pattern.
        let wide = CsrMatrix::zeros(3, 4);
        assert!(!CsrMatrix::zeros(3, 3).same_pattern(&wide));
        assert_ne!(
            CsrMatrix::zeros(3, 3).pattern_fingerprint(),
            wide.pattern_fingerprint()
        );
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        // Build a bigger random-ish banded matrix.
        let n = 10_000;
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, i, 1.0 + (i % 7) as f64));
            if i + 1 < n {
                trip.push((i, i + 1, 0.5));
            }
            if i >= 3 {
                trip.push((i, i - 3, 0.25));
            }
        }
        let m = CsrMatrix::from_triplets(n, n, trip).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut seq = vec![0.0; n];
        let mut par = vec![0.0; n];
        m.mul_vec_into(&x, &mut seq).unwrap();
        m.mul_vec_parallel(&x, &mut par, 4).unwrap();
        for i in 0..n {
            assert!((seq[i] - par[i]).abs() < 1e-12);
        }
        // Dimension mismatch still detected on the parallel path.
        assert!(m.mul_vec_parallel(&x[..5], &mut par, 4).is_err());
    }

    proptest! {
        #[test]
        fn mul_vec_linear(
            trip in proptest::collection::vec((0usize..8, 0usize..8, -5.0f64..5.0), 0..30),
            x in proptest::collection::vec(-3.0f64..3.0, 8),
            s in -2.0f64..2.0,
        ) {
            let m = CsrMatrix::from_triplets(8, 8, trip).unwrap();
            // A(s·x) = s·(Ax)
            let ax = m.mul_vec(&x).unwrap();
            let sx: Vec<f64> = x.iter().map(|v| s * v).collect();
            let asx = m.mul_vec(&sx).unwrap();
            for i in 0..8 {
                prop_assert!((asx[i] - s * ax[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn with_values_round_trips_under_any_pattern(
            trip in proptest::collection::vec((0usize..6, 0usize..6, 0.1f64..5.0), 1..20),
        ) {
            let mut seen = std::collections::HashSet::new();
            let trip: Vec<_> = trip.into_iter().filter(|&(r, c, _)| seen.insert((r, c))).collect();
            let m = CsrMatrix::from_triplets(6, 6, trip).unwrap();
            let doubled = m.with_values(m.values().iter().map(|v| v * 2.0).collect()).unwrap();
            prop_assert!(m.same_pattern(&doubled));
            prop_assert_eq!(m.pattern_fingerprint(), doubled.pattern_fingerprint());
            for (r, c, v) in m.iter() {
                prop_assert_eq!(doubled.get(r, c), 2.0 * v);
            }
        }

        #[test]
        fn transpose_preserves_entries(
            trip in proptest::collection::vec((0usize..6, 0usize..6, 0.1f64..5.0), 1..20),
        ) {
            // Use distinct cells to avoid merge ambiguity: dedupe by position.
            let mut seen = std::collections::HashSet::new();
            let trip: Vec<_> = trip.into_iter().filter(|&(r, c, _)| seen.insert((r, c))).collect();
            let m = CsrMatrix::from_triplets(6, 6, trip.clone()).unwrap();
            let t = m.transpose();
            for (r, c, v) in trip {
                prop_assert_eq!(t.get(c, r), v);
            }
        }
    }
}
