//! Compressed-sparse-row matrices sized for the discretised battery chains.
//!
//! The paper's Fig. 8 experiment discretises a two-well battery at `Δ = 5`,
//! producing a CTMC with ≈ 10⁶ states and ≈ 3.2·10⁶ non-zero rates whose
//! transient solution takes > 4.6·10⁴ matrix–vector products. The format
//! here is plain CSR with `u32` column indices (halving index memory) and a
//! row-parallel product using `std::thread::scope`.

use crate::MarkovError;

/// A sparse `rows × cols` matrix in compressed-sparse-row format.
///
/// Built from `(row, col, value)` triplets; duplicate entries are summed.
///
/// # Examples
///
/// ```
/// use markov::sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 2, vec![(0, 1, 2.0), (1, 0, 3.0), (0, 1, 1.0)]).unwrap();
/// assert_eq!(m.nnz(), 2); // duplicates merged
/// assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets, merging duplicates by summation
    /// and dropping explicit zeros.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when an index is out of range,
    /// `cols` exceeds `u32` range, or a value is not finite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(usize, usize, f64)>,
    ) -> Result<Self, MarkovError> {
        if cols > u32::MAX as usize {
            return Err(MarkovError::InvalidArgument(format!(
                "column count {cols} exceeds u32 index range"
            )));
        }
        for &(r, c, v) in &triplets {
            if r >= rows || c >= cols {
                return Err(MarkovError::InvalidArgument(format!(
                    "triplet ({r}, {c}) out of bounds for {rows}x{cols}"
                )));
            }
            if !v.is_finite() {
                return Err(MarkovError::InvalidArgument(format!(
                    "non-finite value {v} at ({r}, {c})"
                )));
            }
        }
        triplets.sort_unstable_by_key(|t| (t.0, t.1));

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        let mut current_row = 0usize;
        for (r, c, v) in triplets {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            // Merge with the previous entry only when it lies in the same
            // row (row_ptr.last() is the start of the current row) and the
            // same column.
            let row_start = *row_ptr.last().expect("row_ptr nonempty");
            if col_idx.len() > row_start && *col_idx.last().expect("nonempty") == c as u32 {
                *values.last_mut().expect("nonempty") += v;
                continue;
            }
            if v != 0.0 {
                col_idx.push(c as u32);
                values.push(v);
            }
        }
        while current_row < rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        debug_assert_eq!(row_ptr.len(), rows + 1);
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(col, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Looks up entry `(r, c)` (zero when absent).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        if r >= self.rows || c >= self.cols {
            return 0.0;
        }
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&(c as u32)) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Dense matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, MarkovError> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free `y = A·x` into a caller buffer.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), MarkovError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "mul_vec: x has {} (need {}), y has {} (need {})",
                x.len(),
                self.cols,
                y.len(),
                self.rows
            )));
        }
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[r] = acc;
        }
        Ok(())
    }

    /// Row-parallel `y = A·x` using `threads` OS threads. Falls back to the
    /// sequential kernel for small matrices or `threads <= 1`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] on dimension mismatch.
    pub fn mul_vec_parallel(
        &self,
        x: &[f64],
        y: &mut [f64],
        threads: usize,
    ) -> Result<(), MarkovError> {
        if x.len() != self.cols || y.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "mul_vec_parallel: x has {} (need {}), y has {} (need {})",
                x.len(),
                self.cols,
                y.len(),
                self.rows
            )));
        }
        if threads <= 1 || self.rows < 4096 {
            return self.mul_vec_into(x, y);
        }
        let chunk = self.rows.div_ceil(threads);
        // Split `y` into disjoint row blocks so each worker owns its output.
        std::thread::scope(|scope| {
            for (block, y_block) in y.chunks_mut(chunk).enumerate() {
                let start = block * chunk;
                scope.spawn(move || {
                    for (offset, out) in y_block.iter_mut().enumerate() {
                        let r = start + offset;
                        let lo = self.row_ptr[r];
                        let hi = self.row_ptr[r + 1];
                        let mut acc = 0.0;
                        for k in lo..hi {
                            acc += self.values[k] * x[self.col_idx[k] as usize];
                        }
                        *out = acc;
                    }
                });
            }
        });
        Ok(())
    }

    /// Row-vector × matrix product `y = x·A`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if x.len() != self.rows {
            return Err(MarkovError::InvalidArgument(format!(
                "vec_mul: x has {} entries, need {}",
                x.len(),
                self.rows
            )));
        }
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                y[self.col_idx[k] as usize] += xr * self.values[k];
            }
        }
        Ok(y)
    }

    /// The transposed matrix, built with a counting sort in `O(nnz)`.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                let c = self.col_idx[k] as usize;
                let pos = cursor[c];
                cursor[c] += 1;
                col_idx[pos] = r as u32;
                values[pos] = self.values[k];
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sum of each row (e.g. exit rates when the matrix stores off-diagonal
    /// generator entries).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| {
                let lo = self.row_ptr[r];
                let hi = self.row_ptr[r + 1];
                self.values[lo..hi].iter().sum()
            })
            .collect()
    }

    /// Applies `f` to every stored value (used to build `P = I + Q/ν`).
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> CsrMatrix {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Iterates over all `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn build_and_query() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(9, 9), 0.0);
        let row2: Vec<_> = m.row(2).collect();
        assert_eq!(row2, vec![(0, 3.0), (1, 4.0)]);
    }

    #[test]
    fn duplicates_merge_and_zeros_drop() {
        let m =
            CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5), (1, 1, 0.0)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn same_column_adjacent_rows_not_merged() {
        // Regression: (0,3) and (1,3) share a column and are adjacent in the
        // sorted triplet order; they must stay separate entries.
        let m = CsrMatrix::from_triplets(2, 4, vec![(0, 3, 1.0), (1, 3, 2.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 3), 1.0);
        assert_eq!(m.get(1, 3), 2.0);
    }

    #[test]
    fn unsorted_triplets_ok() {
        let m = CsrMatrix::from_triplets(
            2,
            3,
            vec![(1, 2, 6.0), (0, 1, 2.0), (1, 0, 4.0), (0, 0, 1.0)],
        )
        .unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 10.0]);
    }

    #[test]
    fn out_of_bounds_and_nonfinite_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, vec![(0, 2, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, vec![(0, 0, f64::NAN)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, vec![(0, 0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn mul_vec_known() {
        let m = sample();
        assert_eq!(m.mul_vec(&[1.0, 2.0, 3.0]).unwrap(), vec![7.0, 0.0, 11.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn vec_mul_is_transpose_mul() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let a = m.vec_mul(&x).unwrap();
        let b = m.transpose().mul_vec(&x).unwrap();
        assert_eq!(a, b);
        assert!(m.vec_mul(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_sums_and_map() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        let d = m.map_values(|v| 2.0 * v);
        assert_eq!(d.get(2, 1), 8.0);
        assert_eq!(d.nnz(), m.nnz());
    }

    #[test]
    fn zeros_matrix() {
        let z = CsrMatrix::zeros(4, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.mul_vec(&[1.0, 1.0]).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        // Build a bigger random-ish banded matrix.
        let n = 10_000;
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, i, 1.0 + (i % 7) as f64));
            if i + 1 < n {
                trip.push((i, i + 1, 0.5));
            }
            if i >= 3 {
                trip.push((i, i - 3, 0.25));
            }
        }
        let m = CsrMatrix::from_triplets(n, n, trip).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut seq = vec![0.0; n];
        let mut par = vec![0.0; n];
        m.mul_vec_into(&x, &mut seq).unwrap();
        m.mul_vec_parallel(&x, &mut par, 4).unwrap();
        for i in 0..n {
            assert!((seq[i] - par[i]).abs() < 1e-12);
        }
        // Dimension mismatch still detected on the parallel path.
        assert!(m.mul_vec_parallel(&x[..5], &mut par, 4).is_err());
    }

    proptest! {
        #[test]
        fn mul_vec_linear(
            trip in proptest::collection::vec((0usize..8, 0usize..8, -5.0f64..5.0), 0..30),
            x in proptest::collection::vec(-3.0f64..3.0, 8),
            s in -2.0f64..2.0,
        ) {
            let m = CsrMatrix::from_triplets(8, 8, trip).unwrap();
            // A(s·x) = s·(Ax)
            let ax = m.mul_vec(&x).unwrap();
            let sx: Vec<f64> = x.iter().map(|v| s * v).collect();
            let asx = m.mul_vec(&sx).unwrap();
            for i in 0..8 {
                prop_assert!((asx[i] - s * ax[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_preserves_entries(
            trip in proptest::collection::vec((0usize..6, 0usize..6, 0.1f64..5.0), 1..20),
        ) {
            // Use distinct cells to avoid merge ambiguity: dedupe by position.
            let mut seen = std::collections::HashSet::new();
            let trip: Vec<_> = trip.into_iter().filter(|&(r, c, _)| seen.insert((r, c))).collect();
            let m = CsrMatrix::from_triplets(6, 6, trip.clone()).unwrap();
            let t = m.transpose();
            for (r, c, v) in trip {
                prop_assert_eq!(t.get(c, r), v);
            }
        }
    }
}
