//! Poisson probability weights with left/right truncation for
//! uniformisation (Fox & Glynn, *CACM* 1988, in the numerically robust
//! mode-centred formulation used by probabilistic model checkers).
//!
//! Uniformisation evaluates `π(t) = Σ_n ψ(n; νt)·αPⁿ` where
//! `ψ(n; λ) = e^{-λ}λⁿ/n!`. For the paper's experiments `λ = νt` reaches
//! ≈ 4.6·10⁴, so the summation must be truncated to the `O(√λ)` window
//! around the mode that carries all but `ε` of the mass — that window is
//! exactly what [`poisson_weights`] returns.

use crate::MarkovError;
use numerics::special::poisson_ln_pmf;

/// A truncated, renormalised window of Poisson probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWeights {
    /// First retained index `L` (left truncation point).
    pub left: usize,
    /// Last retained index `R` (right truncation point, inclusive).
    pub right: usize,
    /// `weights[i] ≈ Pr{Poisson(λ) = left + i}`, renormalised to sum to 1.
    pub weights: Vec<f64>,
    /// Probability mass captured before renormalisation (`≥ 1 − ε`).
    pub mass_covered: f64,
}

impl PoissonWeights {
    /// The weight of index `n`, zero outside the window.
    pub fn weight(&self, n: usize) -> f64 {
        if n < self.left || n > self.right {
            0.0
        } else {
            self.weights[n - self.left]
        }
    }

    /// Number of retained terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when no terms are retained (cannot happen for valid input).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Computes the truncated Poisson distribution for rate `lambda`,
/// discarding at most `epsilon` of the total mass (split between the two
/// tails), then renormalising.
///
/// The evaluation starts from the exact log-pmf at the mode
/// `m = ⌊λ⌋` and extends outward with the multiplicative recurrences
/// `ψ(n+1) = ψ(n)·λ/(n+1)` and `ψ(n−1) = ψ(n)·n/λ`, entirely in the linear
/// domain — the mode value anchors the scale so no overflow is possible.
///
/// # Errors
///
/// [`MarkovError::InvalidArgument`] when `lambda` is negative/NaN or
/// `epsilon ∉ (0, 1)`.
///
/// # Examples
///
/// ```
/// let w = markov::foxglynn::poisson_weights(2.0, 1e-12).unwrap();
/// assert!((w.weight(0) - (-2.0f64).exp()).abs() < 1e-12);
/// assert!((w.weights.iter().sum::<f64>() - 1.0).abs() < 1e-14);
/// ```
pub fn poisson_weights(lambda: f64, epsilon: f64) -> Result<PoissonWeights, MarkovError> {
    let mut cache = FoxGlynnCache::new();
    cache.compute(lambda, epsilon)?;
    Ok(cache.to_weights())
}

/// A reusable Fox–Glynn workspace for evaluating many Poisson windows
/// with **zero allocations after the first** — the curve engine's answer
/// to "don't recompute the weights from scratch per time point".
///
/// [`measure_curve`](crate::transient::measure_curve) computes the window
/// once at the largest rate `λ_max = ν·t_max` (which also bounds every
/// smaller window's right truncation point, sizing the sweep), then
/// derives each smaller-`t` window into the same buffers: the recurrence
/// is re-anchored at the new mode — the numerically robust formulation —
/// but the `O(√λ)` storage and the two tail scratch vectors are reused
/// across all time points.
///
/// # Examples
///
/// ```
/// use markov::foxglynn::FoxGlynnCache;
///
/// let mut cache = FoxGlynnCache::new();
/// cache.compute(4000.0, 1e-10).unwrap();
/// let right_max = cache.right();
/// cache.compute(400.0, 1e-10).unwrap(); // reuses the buffers
/// assert!(cache.right() <= right_max);
/// assert!((cache.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FoxGlynnCache {
    left: usize,
    right: usize,
    mass_covered: f64,
    weights: Vec<f64>,
    right_scratch: Vec<f64>,
}

impl FoxGlynnCache {
    /// An empty cache; buffers grow on the first [`compute`](Self::compute).
    pub fn new() -> Self {
        FoxGlynnCache::default()
    }

    /// First retained index of the last computed window.
    pub fn left(&self) -> usize {
        self.left
    }

    /// Last retained index (inclusive) of the last computed window.
    pub fn right(&self) -> usize {
        self.right
    }

    /// Probability mass captured before renormalisation (`≥ 1 − ε`).
    pub fn mass_covered(&self) -> f64 {
        self.mass_covered
    }

    /// The renormalised weights of the last computed window;
    /// `weights()[i] ≈ Pr{Poisson(λ) = left() + i}`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The weight of index `n`, zero outside the window.
    pub fn weight(&self, n: usize) -> f64 {
        if n < self.left || n > self.right {
            0.0
        } else {
            self.weights[n - self.left]
        }
    }

    /// Copies the last computed window out as an owned [`PoissonWeights`].
    pub fn to_weights(&self) -> PoissonWeights {
        PoissonWeights {
            left: self.left,
            right: self.right,
            weights: self.weights.clone(),
            mass_covered: self.mass_covered,
        }
    }

    /// Computes the truncated, renormalised Poisson window for `lambda`
    /// into the cache's buffers, replacing the previous window. Semantics
    /// and error conditions are exactly those of [`poisson_weights`].
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `lambda` is negative/NaN or
    /// `epsilon ∉ (0, 1)`.
    pub fn compute(&mut self, lambda: f64, epsilon: f64) -> Result<(), MarkovError> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(MarkovError::InvalidArgument(format!(
                "Poisson rate must be finite and non-negative, got {lambda}"
            )));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(MarkovError::InvalidArgument(format!(
                "epsilon must lie in (0, 1), got {epsilon}"
            )));
        }
        if lambda == 0.0 {
            self.left = 0;
            self.right = 0;
            self.mass_covered = 1.0;
            self.weights.clear();
            self.weights.push(1.0);
            return Ok(());
        }

        let mode = lambda.floor() as usize;
        let p_mode = poisson_ln_pmf(lambda, mode as u64).exp();

        // Expand right from the mode until the right tail is provably
        // < ε/2: once past the mode the pmf decays at ratio
        // ρ = λ/(n+1) < 1, so the remaining tail is bounded by w·ρ/(1−ρ).
        let tail_bound = epsilon / 2.0;
        let right_weights = &mut self.right_scratch;
        right_weights.clear();
        let mut w = p_mode;
        let mut n = mode;
        loop {
            right_weights.push(w);
            let ratio = lambda / (n + 1) as f64;
            let next = w * ratio;
            if ratio < 1.0 {
                let tail = next / (1.0 - ratio);
                if tail < tail_bound || next < f64::MIN_POSITIVE {
                    break;
                }
            }
            n += 1;
            w = next;
            // Hard stop far beyond any realistic window (10⁹ keeps us
            // safe from pathological ε while bounding memory).
            if right_weights.len() > 1_000_000_000 {
                return Err(MarkovError::NoConvergence(
                    "right truncation point not found".into(),
                ));
            }
        }
        let right = n;

        // Expand left similarly (ratio n/λ < 1 below the mode), directly
        // into the output buffer, then reverse it into index order.
        let left_buf = &mut self.weights;
        left_buf.clear();
        let mut w = p_mode;
        let mut m = mode;
        while m > 0 {
            let ratio = m as f64 / lambda;
            let prev = w * ratio;
            if ratio < 1.0 {
                let tail = prev / (1.0 - ratio);
                if tail < tail_bound || prev < f64::MIN_POSITIVE {
                    break;
                }
            }
            m -= 1;
            w = prev;
            left_buf.push(w);
        }
        let left = m;

        // Stitch: left_buf holds indices mode−1, mode−2, …; reverse in
        // place, then append the right expansion.
        left_buf.reverse();
        left_buf.extend_from_slice(right_weights);

        let mass: f64 = self.weights.iter().sum();
        debug_assert!(mass > 0.0);
        for w in &mut self.weights {
            *w /= mass;
        }
        self.left = left;
        self.right = right;
        self.mass_covered = mass;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::special::poisson_pmf;

    #[test]
    fn zero_lambda_degenerate() {
        let w = poisson_weights(0.0, 1e-10).unwrap();
        assert_eq!(w.left, 0);
        assert_eq!(w.right, 0);
        assert_eq!(w.weights, vec![1.0]);
        assert_eq!(w.weight(0), 1.0);
        assert_eq!(w.weight(1), 0.0);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn small_lambda_matches_direct_pmf() {
        let w = poisson_weights(3.5, 1e-14).unwrap();
        assert_eq!(w.left, 0, "small λ keeps the full left tail");
        for n in 0..w.right {
            let direct = poisson_pmf(3.5, n as u64);
            assert!(
                (w.weight(n) - direct).abs() < 1e-12,
                "n = {n}: {} vs {direct}",
                w.weight(n)
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for &lambda in &[0.1f64, 1.0, 17.3, 400.0, 46_000.0] {
            let w = poisson_weights(lambda, 1e-10).unwrap();
            let total: f64 = w.weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "λ = {lambda}");
            assert!(
                w.mass_covered > 1.0 - 1e-9,
                "λ = {lambda}: {}",
                w.mass_covered
            );
        }
    }

    #[test]
    fn window_is_mode_centred_and_sqrt_sized() {
        let lambda = 40_000.0;
        let w = poisson_weights(lambda, 1e-10).unwrap();
        let mode = lambda as usize;
        assert!(w.left < mode && mode < w.right);
        // Window should be O(√λ): ≈ ±7σ for ε = 1e-10 (σ = 200).
        let width = (w.right - w.left) as f64;
        assert!(width > 4.0 * lambda.sqrt(), "window too narrow: {width}");
        assert!(width < 20.0 * lambda.sqrt(), "window too wide: {width}");
        // The paper's regime: > 36 000 iterations needed at λ ≈ 38 000 means
        // R must exceed λ.
        assert!(w.right as f64 > lambda);
    }

    #[test]
    fn truncated_mass_within_epsilon() {
        let lambda = 1000.0;
        let eps = 1e-8;
        let w = poisson_weights(lambda, eps).unwrap();
        // Mass outside the window, computed directly.
        let mut outside = 0.0;
        for n in 0..w.left {
            outside += poisson_pmf(lambda, n as u64);
        }
        for n in (w.right + 1)..(w.right + 2000) {
            outside += poisson_pmf(lambda, n as u64);
        }
        assert!(outside <= eps * 1.01, "outside mass {outside} > ε = {eps}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(poisson_weights(-1.0, 1e-10).is_err());
        assert!(poisson_weights(f64::NAN, 1e-10).is_err());
        assert!(poisson_weights(1.0, 0.0).is_err());
        assert!(poisson_weights(1.0, 1.0).is_err());
    }

    #[test]
    fn cache_reuse_matches_fresh_computation() {
        // One workspace, many rates — the measure_curve usage pattern:
        // largest λ first, then smaller windows into the same buffers.
        let mut cache = FoxGlynnCache::new();
        cache.compute(46_000.0, 1e-10).unwrap();
        let right_max = cache.right();
        for &lambda in &[17.3, 400.0, 4_000.0, 46_000.0] {
            cache.compute(lambda, 1e-10).unwrap();
            let fresh = poisson_weights(lambda, 1e-10).unwrap();
            assert_eq!(cache.left(), fresh.left, "λ = {lambda}");
            assert_eq!(cache.right(), fresh.right, "λ = {lambda}");
            assert_eq!(cache.weights(), fresh.weights.as_slice(), "λ = {lambda}");
            assert_eq!(cache.mass_covered(), fresh.mass_covered);
            assert!(cache.right() <= right_max, "λ_max bounds every window");
            assert_eq!(cache.weight(fresh.left), fresh.weights[0]);
            assert_eq!(cache.weight(fresh.right + 1), 0.0);
            assert_eq!(cache.to_weights(), fresh);
        }
        // Degenerate and invalid inputs behave like poisson_weights.
        cache.compute(0.0, 1e-10).unwrap();
        assert_eq!(cache.weights(), &[1.0]);
        assert!(cache.compute(-1.0, 1e-10).is_err());
        assert!(cache.compute(1.0, 1.0).is_err());
    }

    #[test]
    fn weight_outside_window_is_zero() {
        let w = poisson_weights(500.0, 1e-10).unwrap();
        assert_eq!(w.weight(0), 0.0);
        assert_eq!(w.weight(10_000), 0.0);
    }
}
