//! Poisson probability weights with left/right truncation for
//! uniformisation (Fox & Glynn, *CACM* 1988, in the numerically robust
//! mode-centred formulation used by probabilistic model checkers).
//!
//! Uniformisation evaluates `π(t) = Σ_n ψ(n; νt)·αPⁿ` where
//! `ψ(n; λ) = e^{-λ}λⁿ/n!`. For the paper's experiments `λ = νt` reaches
//! ≈ 4.6·10⁴, so the summation must be truncated to the `O(√λ)` window
//! around the mode that carries all but `ε` of the mass — that window is
//! exactly what [`poisson_weights`] returns.

use crate::MarkovError;
use numerics::special::poisson_ln_pmf;

/// A truncated, renormalised window of Poisson probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWeights {
    /// First retained index `L` (left truncation point).
    pub left: usize,
    /// Last retained index `R` (right truncation point, inclusive).
    pub right: usize,
    /// `weights[i] ≈ Pr{Poisson(λ) = left + i}`, renormalised to sum to 1.
    pub weights: Vec<f64>,
    /// Probability mass captured before renormalisation (`≥ 1 − ε`).
    pub mass_covered: f64,
}

impl PoissonWeights {
    /// The weight of index `n`, zero outside the window.
    pub fn weight(&self, n: usize) -> f64 {
        if n < self.left || n > self.right {
            0.0
        } else {
            self.weights[n - self.left]
        }
    }

    /// Number of retained terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when no terms are retained (cannot happen for valid input).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Computes the truncated Poisson distribution for rate `lambda`,
/// discarding at most `epsilon` of the total mass (split between the two
/// tails), then renormalising.
///
/// The evaluation starts from the exact log-pmf at the mode
/// `m = ⌊λ⌋` and extends outward with the multiplicative recurrences
/// `ψ(n+1) = ψ(n)·λ/(n+1)` and `ψ(n−1) = ψ(n)·n/λ`, entirely in the linear
/// domain — the mode value anchors the scale so no overflow is possible.
///
/// # Errors
///
/// [`MarkovError::InvalidArgument`] when `lambda` is negative/NaN or
/// `epsilon ∉ (0, 1)`.
///
/// # Examples
///
/// ```
/// let w = markov::foxglynn::poisson_weights(2.0, 1e-12).unwrap();
/// assert!((w.weight(0) - (-2.0f64).exp()).abs() < 1e-12);
/// assert!((w.weights.iter().sum::<f64>() - 1.0).abs() < 1e-14);
/// ```
pub fn poisson_weights(lambda: f64, epsilon: f64) -> Result<PoissonWeights, MarkovError> {
    if !lambda.is_finite() || lambda < 0.0 {
        return Err(MarkovError::InvalidArgument(format!(
            "Poisson rate must be finite and non-negative, got {lambda}"
        )));
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(MarkovError::InvalidArgument(format!(
            "epsilon must lie in (0, 1), got {epsilon}"
        )));
    }
    if lambda == 0.0 {
        return Ok(PoissonWeights {
            left: 0,
            right: 0,
            weights: vec![1.0],
            mass_covered: 1.0,
        });
    }

    let mode = lambda.floor() as usize;
    let p_mode = poisson_ln_pmf(lambda, mode as u64).exp();

    // Expand right from the mode until the right tail is provably < ε/2:
    // once past the mode the pmf decays at ratio ρ = λ/(n+1) < 1, so the
    // remaining tail is bounded by w·ρ/(1−ρ).
    let tail_bound = epsilon / 2.0;
    let mut right_weights = Vec::new();
    let mut w = p_mode;
    let mut n = mode;
    loop {
        right_weights.push(w);
        let ratio = lambda / (n + 1) as f64;
        let next = w * ratio;
        if ratio < 1.0 {
            let tail = next / (1.0 - ratio);
            if tail < tail_bound || next < f64::MIN_POSITIVE {
                break;
            }
        }
        n += 1;
        w = next;
        // Hard stop far beyond any realistic window (10⁹ keeps us safe from
        // pathological ε while bounding memory).
        if right_weights.len() > 1_000_000_000 {
            return Err(MarkovError::NoConvergence(
                "right truncation point not found".into(),
            ));
        }
    }
    let right = n;

    // Expand left similarly (ratio n/λ < 1 below the mode).
    let mut left_weights = Vec::new();
    let mut w = p_mode;
    let mut m = mode;
    while m > 0 {
        let ratio = m as f64 / lambda;
        let prev = w * ratio;
        if ratio < 1.0 {
            let tail = prev / (1.0 - ratio);
            if tail < tail_bound || prev < f64::MIN_POSITIVE {
                break;
            }
        }
        m -= 1;
        w = prev;
        left_weights.push(w);
    }
    let left = m;

    // Stitch: left_weights holds indices mode−1, mode−2, … ; reverse them.
    let mut weights = Vec::with_capacity(left_weights.len() + right_weights.len());
    weights.extend(left_weights.into_iter().rev());
    weights.extend(right_weights);

    let mass: f64 = weights.iter().sum();
    debug_assert!(mass > 0.0);
    for w in &mut weights {
        *w /= mass;
    }
    Ok(PoissonWeights {
        left,
        right,
        weights,
        mass_covered: mass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::special::poisson_pmf;

    #[test]
    fn zero_lambda_degenerate() {
        let w = poisson_weights(0.0, 1e-10).unwrap();
        assert_eq!(w.left, 0);
        assert_eq!(w.right, 0);
        assert_eq!(w.weights, vec![1.0]);
        assert_eq!(w.weight(0), 1.0);
        assert_eq!(w.weight(1), 0.0);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn small_lambda_matches_direct_pmf() {
        let w = poisson_weights(3.5, 1e-14).unwrap();
        assert_eq!(w.left, 0, "small λ keeps the full left tail");
        for n in 0..w.right {
            let direct = poisson_pmf(3.5, n as u64);
            assert!(
                (w.weight(n) - direct).abs() < 1e-12,
                "n = {n}: {} vs {direct}",
                w.weight(n)
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for &lambda in &[0.1f64, 1.0, 17.3, 400.0, 46_000.0] {
            let w = poisson_weights(lambda, 1e-10).unwrap();
            let total: f64 = w.weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "λ = {lambda}");
            assert!(
                w.mass_covered > 1.0 - 1e-9,
                "λ = {lambda}: {}",
                w.mass_covered
            );
        }
    }

    #[test]
    fn window_is_mode_centred_and_sqrt_sized() {
        let lambda = 40_000.0;
        let w = poisson_weights(lambda, 1e-10).unwrap();
        let mode = lambda as usize;
        assert!(w.left < mode && mode < w.right);
        // Window should be O(√λ): ≈ ±7σ for ε = 1e-10 (σ = 200).
        let width = (w.right - w.left) as f64;
        assert!(width > 4.0 * lambda.sqrt(), "window too narrow: {width}");
        assert!(width < 20.0 * lambda.sqrt(), "window too wide: {width}");
        // The paper's regime: > 36 000 iterations needed at λ ≈ 38 000 means
        // R must exceed λ.
        assert!(w.right as f64 > lambda);
    }

    #[test]
    fn truncated_mass_within_epsilon() {
        let lambda = 1000.0;
        let eps = 1e-8;
        let w = poisson_weights(lambda, eps).unwrap();
        // Mass outside the window, computed directly.
        let mut outside = 0.0;
        for n in 0..w.left {
            outside += poisson_pmf(lambda, n as u64);
        }
        for n in (w.right + 1)..(w.right + 2000) {
            outside += poisson_pmf(lambda, n as u64);
        }
        assert!(outside <= eps * 1.01, "outside mass {outside} > ε = {eps}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(poisson_weights(-1.0, 1e-10).is_err());
        assert!(poisson_weights(f64::NAN, 1e-10).is_err());
        assert!(poisson_weights(1.0, 0.0).is_err());
        assert!(poisson_weights(1.0, 1.0).is_err());
    }

    #[test]
    fn weight_outside_window_is_zero() {
        let w = poisson_weights(500.0, 1e-10).unwrap();
        assert_eq!(w.weight(0), 0.0);
        assert_eq!(w.weight(10_000), 0.0);
    }
}
