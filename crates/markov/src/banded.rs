//! Banded (DIA-style) matrices for the discretised battery lattice.
//!
//! The paper's §5 chain lives on a regular 2-D lattice over
//! `(available, bound)` charge levels: every transition moves the state
//! index by one of a handful of fixed deltas (workload hop `±1`,
//! consumption `−J₂·|S|`, recovery `+(J₂−1)·|S|`), so the uniformised
//! matrix `Pᵀ` is **banded** — a few diagonals carry every non-zero.
//! [`BandedMatrix`] stores exactly those diagonals: no column indices
//! (CSR spends 4 bytes of index per 8-byte value), and the inner loops
//! are branch-free over a fixed offset list, so a product streams
//! roughly half the memory per non-zero.
//!
//! The format also makes *support growth* predictable: one product can
//! widen the support of a vector by at most the extreme offsets, which
//! is what the active-window iteration in [`crate::transient`] exploits
//! to skip the untouched part of the state space entirely.
//!
//! Conversion from [`CsrMatrix`] is automatic ([`BandedMatrix::from_csr`]
//! detects the occupied diagonals); [`BandedMatrix::is_profitable`] is
//! the storage heuristic callers use to decide between representations,
//! and [`TransitionMatrix`] / [`MatrixRef`] let the transient engines and
//! the [`SpmvPool`](crate::pool::SpmvPool) dispatch on whichever
//! representation a chain ended up with.

use crate::sparse::{CsrMatrix, PanelColumn};
use crate::MarkovError;
use std::ops::Range;

/// Interior rows processed per cache block of the banded kernel: the
/// output slice (8 bytes/row) stays L1-resident across the per-diagonal
/// axpy passes, so diagonal-major vectorisation costs no extra memory
/// traffic over a single row-major sweep.
const INTERIOR_BLOCK_ROWS: usize = 2048;

/// Cap on the number of distinct diagonals a matrix may occupy before
/// the DIA representation is considered degenerate regardless of its
/// storage footprint (the per-row offset loop stops being "a handful of
/// fixed stencil offsets" and CSR's indexed rows win).
pub const MAX_PROFITABLE_OFFSETS: usize = 64;

/// A square sparse matrix stored by diagonals (DIA format).
///
/// `values[d·n + r]` holds `A[r][r + offsets[d]]`; slots whose column
/// would fall outside the matrix are stored as `0.0` and never read by
/// the kernels. Offsets are strictly increasing and deduplicated.
///
/// # Examples
///
/// ```
/// use markov::banded::BandedMatrix;
/// use markov::sparse::CsrMatrix;
///
/// let csr = CsrMatrix::from_triplets(3, 3, vec![(0, 1, 2.0), (1, 2, 2.0), (2, 1, 5.0)]).unwrap();
/// let band = BandedMatrix::from_csr(&csr).unwrap();
/// assert_eq!(band.offsets(), &[-1, 1]);
/// assert_eq!(band.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![2.0, 2.0, 5.0]);
/// assert_eq!(band.to_csr(), csr);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix {
    n: usize,
    offsets: Vec<isize>,
    /// Row-aligned diagonal storage, `offsets.len() × n`.
    values: Vec<f64>,
}

impl BandedMatrix {
    /// The sorted distinct diagonal offsets `col − row` occupied by a
    /// square CSR matrix (empty for an all-zero matrix). This is the
    /// structure probe behind automatic representation selection and the
    /// discretiser's bandwidth metadata.
    pub fn detect_offsets(m: &CsrMatrix) -> Vec<isize> {
        let mut seen = std::collections::BTreeSet::new();
        for (r, c, _) in m.iter() {
            seen.insert(c as isize - r as isize);
        }
        seen.into_iter().collect()
    }

    /// Whether DIA storage pays off for a square matrix occupying
    /// `offsets` diagonals: the diagonal slots must not dwarf the CSR
    /// payload (each CSR entry costs 12 bytes against DIA's 8 per slot,
    /// so up to `1.5×` slots break even; empty diagonals beyond that
    /// waste bandwidth) and the offset list must stay a small fixed
    /// stencil ([`MAX_PROFITABLE_OFFSETS`]).
    pub fn is_profitable(n: usize, nnz: usize, offsets: usize) -> bool {
        offsets > 0
            && offsets <= MAX_PROFITABLE_OFFSETS
            && offsets.saturating_mul(n) <= 3 * (nnz + n) / 2
    }

    /// Converts a square CSR matrix to banded storage, detecting the
    /// occupied diagonals automatically. The conversion is exact for
    /// every square matrix (a dense matrix simply occupies `2n − 1`
    /// diagonals); use [`BandedMatrix::is_profitable`] to decide whether
    /// it is worth doing.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when the matrix is not square.
    pub fn from_csr(m: &CsrMatrix) -> Result<BandedMatrix, MarkovError> {
        if m.rows() != m.cols() {
            return Err(MarkovError::InvalidArgument(format!(
                "banded storage needs a square matrix, got {}x{}",
                m.rows(),
                m.cols()
            )));
        }
        let offsets = BandedMatrix::detect_offsets(m);
        let n = m.rows();
        let mut values = vec![0.0; offsets.len() * n];
        for (r, c, v) in m.iter() {
            let off = c as isize - r as isize;
            let d = offsets.binary_search(&off).expect("detected offset");
            values[d * n + r] = v;
        }
        Ok(BandedMatrix { n, offsets, values })
    }

    /// Builds `(scale·A + diag(d))ᵀ` in banded form straight from a
    /// square CSR matrix — the uniformisation hot-path primitive
    /// ([`crate::ctmc::Ctmc::uniformised_transposed`] emits CSR; this is
    /// its banded twin, so lattice chains never materialise a generic
    /// CSR `Pᵀ`). One pass over the CSR entries scatters each value onto
    /// the mirrored diagonal: `Aᵀ[c][c + (r − c)] = A[r][c]`.
    ///
    /// Returns `None` when the occupied diagonals fail
    /// [`BandedMatrix::is_profitable`] — the caller falls back to CSR.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when the matrix is not square or
    /// `diag.len()` differs from the dimension.
    pub fn transposed_scaled_add_diag(
        m: &CsrMatrix,
        scale: f64,
        diag: &[f64],
    ) -> Result<Option<BandedMatrix>, MarkovError> {
        if m.rows() != m.cols() || diag.len() != m.rows() {
            return Err(MarkovError::InvalidArgument(format!(
                "transposed_scaled_add_diag: matrix is {}x{}, diagonal has {} entries",
                m.rows(),
                m.cols(),
                diag.len()
            )));
        }
        let n = m.rows();
        // Offsets of the transpose are the negated source offsets, plus
        // the main diagonal for `diag`.
        let mut offsets: Vec<isize> = BandedMatrix::detect_offsets(m)
            .into_iter()
            .map(|o| -o)
            .collect();
        offsets.reverse(); // negation reverses the sort order
        if let Err(pos) = offsets.binary_search(&0) {
            offsets.insert(pos, 0);
        }
        if !BandedMatrix::is_profitable(n, m.nnz(), offsets.len()) {
            return Ok(None);
        }
        BandedMatrix::transposed_scaled_add_diag_with_offsets(m, scale, diag, &offsets).map(Some)
    }

    /// [`BandedMatrix::transposed_scaled_add_diag`] with the diagonal
    /// offsets supplied by the caller — the **pattern-reuse constructor**
    /// for sweep plans: within a group of structurally identical chains
    /// (equal [`CsrMatrix::pattern_fingerprint`]) the offsets are
    /// detected once on the representative and every later member skips
    /// the detection scan and the profitability probe. The supplied
    /// offsets are trusted to cover the matrix; an entry falling on a
    /// missing diagonal is a structural mismatch and errors out rather
    /// than being dropped.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when the matrix is not square,
    /// `diag.len()` differs from the dimension, `offsets` is not strictly
    /// increasing or lacks the main diagonal, or an entry of `m` falls
    /// outside the supplied offsets.
    pub fn transposed_scaled_add_diag_with_offsets(
        m: &CsrMatrix,
        scale: f64,
        diag: &[f64],
        offsets: &[isize],
    ) -> Result<BandedMatrix, MarkovError> {
        if m.rows() != m.cols() || diag.len() != m.rows() {
            return Err(MarkovError::InvalidArgument(format!(
                "transposed_scaled_add_diag_with_offsets: matrix is {}x{}, \
                 diagonal has {} entries",
                m.rows(),
                m.cols(),
                diag.len()
            )));
        }
        if offsets.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MarkovError::InvalidArgument(
                "transposed_scaled_add_diag_with_offsets: offsets must be \
                 strictly increasing"
                    .into(),
            ));
        }
        let n = m.rows();
        let d0 = offsets.binary_search(&0).map_err(|_| {
            MarkovError::InvalidArgument(
                "transposed_scaled_add_diag_with_offsets: offsets must include \
                 the main diagonal (the uniformisation self-loops live there)"
                    .into(),
            )
        })?;
        let mut values = vec![0.0; offsets.len() * n];
        for (r, c, v) in m.iter() {
            let off = r as isize - c as isize; // offset in the transpose
            let d = offsets.binary_search(&off).map_err(|_| {
                MarkovError::InvalidArgument(format!(
                    "transposed_scaled_add_diag_with_offsets: entry ({r}, {c}) \
                     falls on diagonal {off}, absent from the reused pattern"
                ))
            })?;
            values[d * n + c] = scale * v;
        }
        for (r, &dv) in diag.iter().enumerate() {
            values[d0 * n + r] += dv;
        }
        Ok(BandedMatrix {
            n,
            offsets: offsets.to_vec(),
            values,
        })
    }

    /// Dimension of the (square) matrix.
    #[inline]
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Dimension of the (square) matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The occupied diagonal offsets, strictly increasing.
    #[inline]
    pub fn offsets(&self) -> &[isize] {
        &self.offsets
    }

    /// The largest `|offset|` — how far one product can move support.
    pub fn bandwidth(&self) -> usize {
        self.offsets
            .iter()
            .map(|o| o.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Number of stored non-zero values (zero slots inside a stored
    /// diagonal do not count; they are padding, not entries).
    pub fn nnz(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0.0).count()
    }

    /// Number of in-range slots the kernels touch per full product
    /// (Σ over diagonals of their valid length) — the denominator of the
    /// active-window savings metric.
    pub fn stored_entries(&self) -> usize {
        self.offsets
            .iter()
            .map(|&off| self.valid_rows(off).len())
            .sum()
    }

    /// In-range slots touched by a product restricted to `rows` (the
    /// per-iteration cost of a windowed product).
    pub fn entries_in(&self, rows: &Range<usize>) -> usize {
        self.offsets
            .iter()
            .map(|&off| {
                let valid = self.valid_rows(off);
                valid
                    .end
                    .min(rows.end)
                    .saturating_sub(valid.start.max(rows.start))
            })
            .sum()
    }

    /// Looks up entry `(r, c)` (zero when absent).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        if r >= self.n || c >= self.n {
            return 0.0;
        }
        match self.offsets.binary_search(&(c as isize - r as isize)) {
            Ok(d) => self.values[d * self.n + r],
            Err(_) => 0.0,
        }
    }

    /// The same matrix in CSR form (round-trip partner of
    /// [`BandedMatrix::from_csr`]; padding zeros are dropped).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.values.len());
        for (d, &off) in self.offsets.iter().enumerate() {
            for r in self.valid_rows(off) {
                let v = self.values[d * self.n + r];
                if v != 0.0 {
                    triplets.push((r, (r as isize + off) as usize, v));
                }
            }
        }
        CsrMatrix::from_triplets(self.n, self.n, triplets).expect("in-range by construction")
    }

    /// The rows for which diagonal `off` has an in-range column.
    #[inline]
    fn valid_rows(&self, off: isize) -> Range<usize> {
        let lo = if off < 0 { (-off) as usize } else { 0 };
        let hi = if off > 0 {
            self.n - (off as usize).min(self.n)
        } else {
            self.n
        };
        lo..hi.max(lo)
    }

    /// Grows a support window by one product: if `x` is zero outside
    /// `window`, then `A·x` is zero outside the returned range. The
    /// result always contains the input window (so steady-state
    /// comparisons of `y` against `x` over the grown window see every
    /// non-zero of either), clamped to `0..n`.
    pub fn grow_window(&self, window: &Range<usize>) -> Range<usize> {
        if window.is_empty() || self.offsets.is_empty() {
            return window.clone();
        }
        let min_off = *self.offsets.first().expect("non-empty");
        let max_off = *self.offsets.last().expect("non-empty");
        // Row r reads x[r + off]: r can be non-zero for
        // r ∈ [window.start − max_off, window.end − min_off).
        let lo = (window.start as isize - max_off).max(0) as usize;
        let hi = ((window.end as isize - min_off).max(0) as usize).min(self.n);
        lo.min(window.start)..hi.max(window.end)
    }

    /// Dense matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if x.len() != self.n {
            return Err(MarkovError::InvalidArgument(format!(
                "mul_vec: x has {} entries, need {}",
                x.len(),
                self.n
            )));
        }
        let mut y = vec![0.0; self.n];
        self.mul_vec_range_into(x, &mut y, 0..self.n);
        Ok(y)
    }

    /// The shared row-block kernel, mirroring
    /// [`CsrMatrix::mul_vec_range_into`]: `y_block[i] = (A·x)[rows.start + i]`.
    /// Rows where every offset is in range run a branch-free inner loop;
    /// only the ≤ `bandwidth` edge rows at each end bounds-check.
    #[inline]
    pub fn mul_vec_range_into(&self, x: &[f64], y_block: &mut [f64], rows: Range<usize>) {
        self.kernel::<false, false>(x, y_block, &[], rows);
    }

    /// Fused product + measure dot over a row block; see
    /// [`CsrMatrix::mul_vec_dot_range`].
    #[inline]
    pub fn mul_vec_dot_range(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        measure_block: &[f64],
        rows: Range<usize>,
    ) -> f64 {
        self.kernel::<true, false>(x, y_block, measure_block, rows)
            .0
    }

    /// Fused product + steady-state sup-norm over a row block; see
    /// [`CsrMatrix::mul_vec_sup_range`].
    #[inline]
    pub fn mul_vec_sup_range(&self, x: &[f64], y_block: &mut [f64], rows: Range<usize>) -> f64 {
        self.kernel::<false, true>(x, y_block, &[], rows).1
    }

    /// Fully fused product + dot + sup over a row block; see
    /// [`CsrMatrix::mul_vec_dot_sup_range`].
    #[inline]
    pub fn mul_vec_dot_sup_range(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        measure_block: &[f64],
        rows: Range<usize>,
    ) -> (f64, f64) {
        self.kernel::<true, true>(x, y_block, measure_block, rows)
    }

    /// The one monomorphised kernel behind the four public variants.
    /// `DOT` folds `Σ measure[r]·y[r]` into the pass, `SUP` folds
    /// `max |y[r] − x[r]|` in; both compile away when unused.
    ///
    /// The requested row range is split into at most `bandwidth` edge
    /// rows at each end (bounds-checked, row-major) and the interior,
    /// where every diagonal is in range by construction. The interior
    /// runs **diagonal-major**: one zero fill of the output segment,
    /// then one elementwise multiply–accumulate per diagonal through
    /// [`crate::simd::mul_add`] — unrolled scalar by default, SSE2
    /// under the `simd` feature, bit-identical either way.
    /// Per row the contributions still arrive in increasing column
    /// order (diagonals are processed in offset order), matching the
    /// CSR kernel's accumulation order, so the output is bit-compatible
    /// with [`CsrMatrix::mul_vec_range_into`].
    fn kernel<const DOT: bool, const SUP: bool>(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        measure_block: &[f64],
        rows: Range<usize>,
    ) -> (f64, f64) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y_block.len(), rows.len());
        debug_assert!(rows.end <= self.n);
        if DOT {
            debug_assert_eq!(measure_block.len(), rows.len());
        }
        let start = rows.start;
        // Rows where every diagonal is in range: the vectorisable bulk.
        let mut interior_lo = 0usize;
        let mut interior_hi = self.n;
        for &off in &self.offsets {
            let valid = self.valid_rows(off);
            interior_lo = interior_lo.max(valid.start);
            interior_hi = interior_hi.min(valid.end);
        }
        let interior_hi = interior_hi.max(interior_lo);
        let ilo = rows.start.max(interior_lo).min(rows.end);
        let ihi = rows.end.min(interior_hi).max(ilo);
        let mut dot = 0.0;
        let mut sup = 0.0f64;

        // Edge rows (≤ bandwidth at each end): row-major with checks.
        let edge = |r: usize, out: &mut f64, dot: &mut f64, sup: &mut f64| {
            let mut acc = 0.0;
            for (d, &off) in self.offsets.iter().enumerate() {
                let c = r as isize + off;
                if c >= 0 && (c as usize) < self.n {
                    acc += self.values[d * self.n + r] * x[c as usize];
                }
            }
            *out = acc;
            if DOT {
                *dot += measure_block[r - start] * acc;
            }
            if SUP {
                *sup = sup.max((acc - x[r]).abs());
            }
        };
        {
            let (head, rest) = y_block.split_at_mut(ilo - start);
            let (mid, tail) = rest.split_at_mut(ihi - ilo);
            for (i, out) in head.iter_mut().enumerate() {
                edge(start + i, out, &mut dot, &mut sup);
            }
            // Interior, diagonal-major within cache-sized row blocks:
            // y[blk] = Σ_d diag_d ⊙ x≫off, one slice-zip axpy per
            // diagonal (auto-vectorised, no bounds checks), with the
            // block's output staying in L1 across the axpys and the
            // fused dot/sup folded in while it is still hot — so the
            // traffic per slot matches the single-pass row-major form.
            // The emptiness guard matters: a row range that lies wholly
            // inside the edge region clamps to an empty interior whose
            // shifted x-slice bounds would underflow.
            let mut blk_lo = ilo;
            while blk_lo < ihi {
                let blk_hi = (blk_lo + INTERIOR_BLOCK_ROWS).min(ihi);
                let yb = &mut mid[blk_lo - ilo..blk_hi - ilo];
                yb.fill(0.0);
                for (d, &off) in self.offsets.iter().enumerate() {
                    let vals = &self.values[d * self.n + blk_lo..d * self.n + blk_hi];
                    let xs = &x[(blk_lo as isize + off) as usize..(blk_hi as isize + off) as usize];
                    crate::simd::mul_add(yb, vals, xs);
                }
                if DOT || SUP {
                    for (i, out) in yb.iter().enumerate() {
                        let r = blk_lo + i;
                        if DOT {
                            dot += measure_block[r - start] * *out;
                        }
                        if SUP {
                            sup = sup.max((*out - x[r]).abs());
                        }
                    }
                }
                blk_lo = blk_hi;
            }
            for (i, out) in tail.iter_mut().enumerate() {
                edge(ihi + i, out, &mut dot, &mut sup);
            }
        }
        (dot, sup)
    }

    /// One bounds-checked edge row of the panel kernel — the single
    /// kernel's `edge` closure, restated over a column's full-length
    /// views. Contributions arrive in ascending offset order, matching
    /// both the single banded kernel and CSR's column order.
    #[inline]
    fn panel_edge<const DOT: bool, const SUP: bool>(
        &self,
        r: usize,
        col: &mut PanelColumn<'_>,
        acc: &mut (f64, f64),
    ) {
        let mut row_acc = 0.0;
        for (d, &off) in self.offsets.iter().enumerate() {
            let c = r as isize + off;
            if c >= 0 && (c as usize) < self.n {
                row_acc += self.values[d * self.n + r] * col.x[c as usize];
            }
        }
        col.y[r] = row_acc;
        if DOT {
            acc.0 += col.measure[r] * row_acc;
        }
        if SUP {
            acc.1 = acc.1.max((row_acc - col.x[r]).abs());
        }
    }

    /// Multi-column twin of [`BandedMatrix`]'s fused kernel: advances a
    /// panel of columns sharing this matrix in one pass over the
    /// diagonals. Edge rows run per column exactly as in the single
    /// kernel; the interior interleaves the columns within each cache
    /// block, so each diagonal's value segment is loaded once per block
    /// and applied to **every** column while L1-hot — k columns cost
    /// one matrix read per iteration instead of k.
    ///
    /// Per column the floating-point op sequence is identical to the
    /// single kernel on that column's own window: per-row contributions
    /// in ascending offset order, the dot folded over globally
    /// ascending rows (head edges, then interior, then tail edges —
    /// edge classification depends only on the matrix interior, never
    /// on the window), the sup a plain max. Blocking from the union's
    /// start instead of the column's own interior start only regroups
    /// the rows between blocks; it reorders nothing within a column, so
    /// the outputs stay bit-identical.
    fn panel_kernel<const DOT: bool, const SUP: bool>(
        &self,
        cols: &mut [PanelColumn<'_>],
    ) -> Vec<(f64, f64)> {
        for col in cols.iter() {
            debug_assert_eq!(col.x.len(), self.n);
            debug_assert_eq!(col.y.len(), self.n);
            debug_assert!(col.rows.end <= self.n);
            if DOT {
                debug_assert_eq!(col.measure.len(), self.n);
            }
        }
        let mut interior_lo = 0usize;
        let mut interior_hi = self.n;
        for &off in &self.offsets {
            let valid = self.valid_rows(off);
            interior_lo = interior_lo.max(valid.start);
            interior_hi = interior_hi.min(valid.end);
        }
        let interior_hi = interior_hi.max(interior_lo);
        // Each column's interior clamped to its window, exactly as the
        // single kernel computes `ilo..ihi`.
        let clamps: Vec<Range<usize>> = cols
            .iter()
            .map(|c| {
                let ilo = c.rows.start.max(interior_lo).min(c.rows.end);
                let ihi = c.rows.end.min(interior_hi).max(ilo);
                ilo..ihi
            })
            .collect();
        let mut out: Vec<(f64, f64)> = vec![(0.0, 0.0); cols.len()];

        // Head edge rows (≤ bandwidth per column).
        for ((col, clamp), acc) in cols.iter_mut().zip(&clamps).zip(&mut out) {
            for r in col.rows.start..clamp.start {
                self.panel_edge::<DOT, SUP>(r, col, acc);
            }
        }

        // Union interior, block-interleaved across the panel.
        let union_lo = clamps
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| c.start)
            .min();
        if let Some(union_lo) = union_lo {
            let union_hi = clamps.iter().map(|c| c.end).max().expect("non-empty");
            let mut blk_lo = union_lo;
            while blk_lo < union_hi {
                let blk_hi = (blk_lo + INTERIOR_BLOCK_ROWS).min(union_hi);
                for (col, clamp) in cols.iter_mut().zip(&clamps) {
                    let lo = blk_lo.max(clamp.start);
                    let hi = blk_hi.min(clamp.end);
                    if lo < hi {
                        col.y[lo..hi].fill(0.0);
                    }
                }
                for (d, &off) in self.offsets.iter().enumerate() {
                    for (col, clamp) in cols.iter_mut().zip(&clamps) {
                        let lo = blk_lo.max(clamp.start);
                        let hi = blk_hi.min(clamp.end);
                        if lo < hi {
                            let vals = &self.values[d * self.n + lo..d * self.n + hi];
                            let xs =
                                &col.x[(lo as isize + off) as usize..(hi as isize + off) as usize];
                            crate::simd::mul_add(&mut col.y[lo..hi], vals, xs);
                        }
                    }
                }
                if DOT || SUP {
                    for ((col, clamp), acc) in cols.iter_mut().zip(&clamps).zip(&mut out) {
                        let lo = blk_lo.max(clamp.start);
                        let hi = blk_hi.min(clamp.end);
                        for r in lo..hi {
                            if DOT {
                                acc.0 += col.measure[r] * col.y[r];
                            }
                            if SUP {
                                acc.1 = acc.1.max((col.y[r] - col.x[r]).abs());
                            }
                        }
                    }
                }
                blk_lo = blk_hi;
            }
        }

        // Tail edge rows.
        for ((col, clamp), acc) in cols.iter_mut().zip(&clamps).zip(&mut out) {
            for r in clamp.end..col.rows.end {
                self.panel_edge::<DOT, SUP>(r, col, acc);
            }
        }
        out
    }

    /// Multi-column product `y_j[rows_j] = (A·x_j)[rows_j]` over a
    /// panel sharing this matrix. Bit-identical per column to
    /// [`BandedMatrix::mul_vec_range_into`] on that column's window.
    pub fn mul_panel_range(&self, cols: &mut [PanelColumn<'_>]) {
        self.panel_kernel::<false, false>(cols);
    }

    /// Panel variant of [`BandedMatrix::mul_vec_dot_range`]: one pass
    /// over the diagonals for the whole panel, returning each column's
    /// partial dot in column order.
    pub fn mul_panel_dot_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<f64> {
        self.panel_kernel::<true, false>(cols)
            .into_iter()
            .map(|(dot, _)| dot)
            .collect()
    }

    /// Panel variant of [`BandedMatrix::mul_vec_sup_range`]: one pass
    /// over the diagonals for the whole panel, returning each column's
    /// partial sup-norm in column order.
    pub fn mul_panel_sup_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<f64> {
        self.panel_kernel::<false, true>(cols)
            .into_iter()
            .map(|(_, sup)| sup)
            .collect()
    }

    /// Fully fused panel variant of
    /// [`BandedMatrix::mul_vec_dot_sup_range`]: product, measure dot
    /// and steady-state sup-norm for every column from one pass over
    /// the diagonals, returned as `(dot, sup)` pairs in column order.
    pub fn mul_panel_dot_sup_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<(f64, f64)> {
        self.panel_kernel::<true, true>(cols)
    }
}

/// A borrowed matrix in whichever representation the chain ended up
/// with; the [`SpmvPool`](crate::pool::SpmvPool) kernels dispatch on
/// this, so one engine serves both formats. `&CsrMatrix` and
/// `&BandedMatrix` convert with `.into()`.
#[derive(Debug, Clone, Copy)]
pub enum MatrixRef<'a> {
    /// Generic compressed-sparse-row storage.
    Csr(&'a CsrMatrix),
    /// Diagonal (DIA) storage for banded lattices.
    Banded(&'a BandedMatrix),
}

impl<'a> From<&'a CsrMatrix> for MatrixRef<'a> {
    fn from(m: &'a CsrMatrix) -> Self {
        MatrixRef::Csr(m)
    }
}

impl<'a> From<&'a BandedMatrix> for MatrixRef<'a> {
    fn from(m: &'a BandedMatrix) -> Self {
        MatrixRef::Banded(m)
    }
}

impl<'a> From<&'a TransitionMatrix> for MatrixRef<'a> {
    fn from(m: &'a TransitionMatrix) -> Self {
        m.as_ref()
    }
}

impl MatrixRef<'_> {
    /// Row count.
    pub fn rows(&self) -> usize {
        match self {
            MatrixRef::Csr(m) => m.rows(),
            MatrixRef::Banded(m) => m.rows(),
        }
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        match self {
            MatrixRef::Csr(m) => m.cols(),
            MatrixRef::Banded(m) => m.cols(),
        }
    }

    /// Splits the rows into `parts` contiguous work ranges: nnz-balanced
    /// for CSR, evenly by row for banded (diagonal storage carries the
    /// same work per interior row by construction).
    pub fn partition(&self, parts: usize) -> Vec<Range<usize>> {
        match self {
            MatrixRef::Csr(m) => m.nnz_partition(parts),
            MatrixRef::Banded(m) => split_evenly(0..m.rows(), parts),
        }
    }

    /// Row-block product; see [`CsrMatrix::mul_vec_range_into`].
    #[inline]
    pub fn mul_vec_range_into(&self, x: &[f64], y_block: &mut [f64], rows: Range<usize>) {
        match self {
            MatrixRef::Csr(m) => m.mul_vec_range_into(x, y_block, rows),
            MatrixRef::Banded(m) => m.mul_vec_range_into(x, y_block, rows),
        }
    }

    /// Fused row-block product + dot; see [`CsrMatrix::mul_vec_dot_range`].
    #[inline]
    pub fn mul_vec_dot_range(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        measure_block: &[f64],
        rows: Range<usize>,
    ) -> f64 {
        match self {
            MatrixRef::Csr(m) => m.mul_vec_dot_range(x, y_block, measure_block, rows),
            MatrixRef::Banded(m) => m.mul_vec_dot_range(x, y_block, measure_block, rows),
        }
    }

    /// Fused row-block product + sup; see [`CsrMatrix::mul_vec_sup_range`].
    #[inline]
    pub fn mul_vec_sup_range(&self, x: &[f64], y_block: &mut [f64], rows: Range<usize>) -> f64 {
        match self {
            MatrixRef::Csr(m) => m.mul_vec_sup_range(x, y_block, rows),
            MatrixRef::Banded(m) => m.mul_vec_sup_range(x, y_block, rows),
        }
    }

    /// Fully fused row-block product + dot + sup; see
    /// [`CsrMatrix::mul_vec_dot_sup_range`].
    #[inline]
    pub fn mul_vec_dot_sup_range(
        &self,
        x: &[f64],
        y_block: &mut [f64],
        measure_block: &[f64],
        rows: Range<usize>,
    ) -> (f64, f64) {
        match self {
            MatrixRef::Csr(m) => m.mul_vec_dot_sup_range(x, y_block, measure_block, rows),
            MatrixRef::Banded(m) => m.mul_vec_dot_sup_range(x, y_block, measure_block, rows),
        }
    }

    /// Multi-column panel product; see [`CsrMatrix::mul_panel_range`]
    /// and [`BandedMatrix::mul_panel_range`].
    pub fn mul_panel_range(&self, cols: &mut [PanelColumn<'_>]) {
        match self {
            MatrixRef::Csr(m) => m.mul_panel_range(cols),
            MatrixRef::Banded(m) => m.mul_panel_range(cols),
        }
    }

    /// Fused panel product + per-column dot; see
    /// [`CsrMatrix::mul_panel_dot_range`].
    pub fn mul_panel_dot_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<f64> {
        match self {
            MatrixRef::Csr(m) => m.mul_panel_dot_range(cols),
            MatrixRef::Banded(m) => m.mul_panel_dot_range(cols),
        }
    }

    /// Fused panel product + per-column sup; see
    /// [`CsrMatrix::mul_panel_sup_range`].
    pub fn mul_panel_sup_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<f64> {
        match self {
            MatrixRef::Csr(m) => m.mul_panel_sup_range(cols),
            MatrixRef::Banded(m) => m.mul_panel_sup_range(cols),
        }
    }

    /// Fully fused panel product + per-column dot + sup; see
    /// [`CsrMatrix::mul_panel_dot_sup_range`].
    pub fn mul_panel_dot_sup_range(&self, cols: &mut [PanelColumn<'_>]) -> Vec<(f64, f64)> {
        match self {
            MatrixRef::Csr(m) => m.mul_panel_dot_sup_range(cols),
            MatrixRef::Banded(m) => m.mul_panel_dot_sup_range(cols),
        }
    }
}

/// An owned transition matrix in whichever representation
/// [`Ctmc::uniformised_transposed_auto`](crate::ctmc::Ctmc::uniformised_transposed_auto)
/// selected.
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionMatrix {
    /// Generic CSR (the fallback for unstructured chains).
    Csr(CsrMatrix),
    /// Banded storage (lattice chains).
    Banded(BandedMatrix),
}

impl TransitionMatrix {
    /// Borrows the matrix for kernel dispatch.
    pub fn as_ref(&self) -> MatrixRef<'_> {
        match self {
            TransitionMatrix::Csr(m) => MatrixRef::Csr(m),
            TransitionMatrix::Banded(m) => MatrixRef::Banded(m),
        }
    }

    /// Dimension of the (square) matrix.
    pub fn rows(&self) -> usize {
        self.as_ref().rows()
    }

    /// The banded matrix, when that representation was selected.
    pub fn as_banded(&self) -> Option<&BandedMatrix> {
        match self {
            TransitionMatrix::Banded(m) => Some(m),
            TransitionMatrix::Csr(_) => None,
        }
    }

    /// Slots a full product touches: CSR touches every stored non-zero,
    /// banded every in-range diagonal slot.
    pub fn entries_per_product(&self) -> usize {
        match self {
            TransitionMatrix::Csr(m) => m.nnz(),
            TransitionMatrix::Banded(m) => m.stored_entries(),
        }
    }
}

/// Splits `range` into `parts` contiguous near-equal subranges (some may
/// be empty when the range is shorter than `parts`). Used for banded
/// partitions and for per-iteration active-window dispatch.
pub(crate) fn split_evenly(range: Range<usize>, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let len = range.len();
    let mut out = Vec::with_capacity(parts);
    let mut start = range.start;
    for p in 1..=parts {
        let end = range.start + len * p / parts;
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lattice_like(n: usize) -> CsrMatrix {
        // Offsets {−3, −1, 0, +1}: a toy version of the battery lattice.
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, i, 1.0 + (i % 7) as f64 * 0.1));
            if i + 1 < n {
                trip.push((i, i + 1, 0.5));
            }
            if i >= 1 {
                trip.push((i, i - 1, 0.25 + (i % 3) as f64 * 0.05));
            }
            if i >= 3 {
                trip.push((i, i - 3, 0.125));
            }
        }
        CsrMatrix::from_triplets(n, n, trip).unwrap()
    }

    #[test]
    fn offsets_detected_and_round_trip() {
        let csr = lattice_like(64);
        let band = BandedMatrix::from_csr(&csr).unwrap();
        assert_eq!(band.offsets(), &[-3, -1, 0, 1]);
        assert_eq!(band.bandwidth(), 3);
        assert_eq!(band.to_csr(), csr);
        assert_eq!(band.nnz(), csr.nnz());
        // Every entry individually.
        for r in 0..64 {
            for c in 0..64 {
                assert_eq!(band.get(r, c), csr.get(r, c), "({r}, {c})");
            }
        }
        assert_eq!(band.get(99, 0), 0.0);
    }

    #[test]
    fn degenerate_shapes_round_trip() {
        // All-zero matrix: no offsets at all.
        let zero = CsrMatrix::zeros(5, 5);
        let band = BandedMatrix::from_csr(&zero).unwrap();
        assert!(band.offsets().is_empty());
        assert_eq!(band.to_csr(), zero);
        assert_eq!(band.stored_entries(), 0);
        assert_eq!(band.bandwidth(), 0);

        // Empty rows inside a single diagonal.
        let gaps = CsrMatrix::from_triplets(6, 6, vec![(0, 1, 2.0), (4, 5, 3.0)]).unwrap();
        let band = BandedMatrix::from_csr(&gaps).unwrap();
        assert_eq!(band.offsets(), &[1]);
        assert_eq!(band.to_csr(), gaps);
        assert_eq!(band.nnz(), 2);
        assert_eq!(band.stored_entries(), 5, "valid slots of offset +1");

        // Bandwidth ≥ n: the extreme corner diagonals.
        let corners =
            CsrMatrix::from_triplets(4, 4, vec![(0, 3, 1.0), (3, 0, 2.0), (1, 1, 4.0)]).unwrap();
        let band = BandedMatrix::from_csr(&corners).unwrap();
        assert_eq!(band.offsets(), &[-3, 0, 3]);
        assert_eq!(band.bandwidth(), 3);
        assert_eq!(band.to_csr(), corners);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(band.mul_vec(&x).unwrap(), corners.mul_vec(&x).unwrap());

        // 1×1 matrices: the only diagonal is the main one.
        let one = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 7.0)]).unwrap();
        let band = BandedMatrix::from_csr(&one).unwrap();
        assert_eq!(band.offsets(), &[0]);
        assert_eq!(band.mul_vec(&[2.0]).unwrap(), vec![14.0]);

        // Rectangular matrices are refused.
        assert!(BandedMatrix::from_csr(&CsrMatrix::zeros(2, 3)).is_err());
        assert!(BandedMatrix::from_csr(&lattice_like(8)).is_ok());
    }

    #[test]
    fn kernels_match_csr_on_all_ranges() {
        let n = 97;
        let csr = lattice_like(n);
        let band = BandedMatrix::from_csr(&csr).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let measure: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
        for rows in [0..n, 0..1, 5..17, 90..n, 40..40] {
            let mut yc = vec![0.0; rows.len()];
            let mut yb = vec![0.0; rows.len()];
            csr.mul_vec_range_into(&x, &mut yc, rows.clone());
            band.mul_vec_range_into(&x, &mut yb, rows.clone());
            assert_eq!(yc, yb, "rows {rows:?}");
            let m = &measure[rows.clone()];
            let dc = csr.mul_vec_dot_range(&x, &mut yc, m, rows.clone());
            let db = band.mul_vec_dot_range(&x, &mut yb, m, rows.clone());
            assert_eq!(yc, yb);
            assert!((dc - db).abs() < 1e-14, "rows {rows:?}: {dc} vs {db}");
            let sc = csr.mul_vec_sup_range(&x, &mut yc, rows.clone());
            let sb = band.mul_vec_sup_range(&x, &mut yb, rows.clone());
            assert_eq!(sc, sb);
            let (dc2, sc2) = csr.mul_vec_dot_sup_range(&x, &mut yc, m, rows.clone());
            let (db2, sb2) = band.mul_vec_dot_sup_range(&x, &mut yb, m, rows.clone());
            assert!((dc2 - db2).abs() < 1e-14);
            assert_eq!(sc2, sb2);
        }
        assert!(band.mul_vec(&x[..5]).is_err());
    }

    #[test]
    fn transposed_scaled_add_diag_matches_csr_reference() {
        let csr = lattice_like(40);
        let diag: Vec<f64> = (0..40).map(|i| 0.3 + (i % 4) as f64 * 0.2).collect();
        let band = BandedMatrix::transposed_scaled_add_diag(&csr, 0.7, &diag)
            .unwrap()
            .expect("profitable");
        let reference = csr.transpose_scaled_add_diag(0.7, &diag).unwrap();
        assert_eq!(band.to_csr(), reference);
        // Offsets are the mirrored source offsets plus the main diagonal.
        assert_eq!(band.offsets(), &[-1, 0, 1, 3]);
        assert!(BandedMatrix::transposed_scaled_add_diag(&csr, 1.0, &[1.0]).is_err());
        let rect = CsrMatrix::zeros(2, 3);
        assert!(BandedMatrix::transposed_scaled_add_diag(&rect, 1.0, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn transposed_with_offsets_is_the_pattern_reuse_twin() {
        let csr = lattice_like(40);
        let diag: Vec<f64> = (0..40).map(|i| 0.3 + (i % 4) as f64 * 0.2).collect();
        let detected = BandedMatrix::transposed_scaled_add_diag(&csr, 0.7, &diag)
            .unwrap()
            .expect("profitable");
        // Reusing the representative's offsets gives the identical matrix
        // without the detection scan.
        let reused = BandedMatrix::transposed_scaled_add_diag_with_offsets(
            &csr,
            0.7,
            &diag,
            detected.offsets(),
        )
        .unwrap();
        assert_eq!(reused, detected);
        // New values, same pattern: a structurally identical matrix with
        // scaled rates refills cleanly through the same offsets.
        let scaled_src = csr
            .with_values(csr.values().iter().map(|v| v * 2.0).collect())
            .unwrap();
        let refilled = BandedMatrix::transposed_scaled_add_diag_with_offsets(
            &scaled_src,
            0.7,
            &diag,
            detected.offsets(),
        )
        .unwrap();
        assert_eq!(
            refilled.to_csr(),
            scaled_src.transpose_scaled_add_diag(0.7, &diag).unwrap()
        );
        // Structural mismatches are errors, not silent drops: an entry on
        // a diagonal missing from the supplied offsets…
        let err = BandedMatrix::transposed_scaled_add_diag_with_offsets(&csr, 0.7, &diag, &[-1, 0]);
        assert!(err.is_err());
        // …unsorted offsets, and offsets without the main diagonal.
        assert!(BandedMatrix::transposed_scaled_add_diag_with_offsets(
            &csr,
            0.7,
            &diag,
            &[1, -1, 0]
        )
        .is_err());
        assert!(BandedMatrix::transposed_scaled_add_diag_with_offsets(
            &csr,
            0.7,
            &diag,
            &[-3, -1, 1, 3]
        )
        .is_err());
    }

    #[test]
    fn profitability_heuristic() {
        // A 4-offset lattice on 1000 rows: clearly profitable.
        assert!(BandedMatrix::is_profitable(1000, 3500, 4));
        // A matrix scattering over hundreds of diagonals is not.
        assert!(!BandedMatrix::is_profitable(1000, 3500, 200));
        // Nor one whose few diagonals are nearly empty.
        assert!(!BandedMatrix::is_profitable(1000, 40, 10));
        // Zero offsets (all-zero matrix): nothing to gain.
        assert!(!BandedMatrix::is_profitable(1000, 0, 0));
    }

    #[test]
    fn grow_window_contains_reachable_support() {
        let csr = lattice_like(50);
        let band = BandedMatrix::from_csr(&csr).unwrap();
        // x supported on [10, 12): products can reach [9, 15).
        let window = 10..12;
        let grown = band.grow_window(&window);
        assert_eq!(grown, 9..15);
        // The grown window really covers the product's support.
        let mut x = vec![0.0; 50];
        x[10] = 1.0;
        x[11] = 2.0;
        let y = band.mul_vec(&x).unwrap();
        for (r, &v) in y.iter().enumerate() {
            if !(grown.contains(&r)) {
                assert_eq!(v, 0.0, "row {r} outside grown window");
            }
        }
        // Clamped at the boundaries, and never shrinks the input window.
        assert_eq!(band.grow_window(&(0..2)), 0..5);
        assert_eq!(band.grow_window(&(48..50)), 47..50);
        assert_eq!(band.grow_window(&(3..3)), 3..3);
    }

    #[test]
    fn panel_kernels_bit_identical_to_single_columns() {
        let n = 211;
        let csr = lattice_like(n);
        let band = BandedMatrix::from_csr(&csr).unwrap();
        // Windows exercising every shape: full, head-only edge region,
        // tail-heavy, interior-only, empty, tiny, and a duplicate of the
        // full window so identical columns coexist in one panel.
        let windows = [0..n, 0..2, 100..n, 4..198, 7..7, 50..53, 0..n];
        let xs: Vec<Vec<f64>> = (0..windows.len())
            .map(|j| {
                (0..n)
                    .map(|i| ((i * (j + 2)) as f64 * 0.17).sin())
                    .collect()
            })
            .collect();
        let measure: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();
        for m in [MatrixRef::from(&csr), MatrixRef::from(&band)] {
            // References: each column through the single-vector kernel.
            let mut expect_y = Vec::new();
            let mut expect_ds = Vec::new();
            for (w, x) in windows.iter().zip(&xs) {
                let mut y = vec![0.0; n];
                let ds =
                    m.mul_vec_dot_sup_range(x, &mut y[w.clone()], &measure[w.clone()], w.clone());
                expect_y.push(y);
                expect_ds.push(ds);
            }
            fn make_panel<'p>(
                ys: &'p mut [Vec<f64>],
                windows: &[Range<usize>],
                xs: &'p [Vec<f64>],
                measure: &'p [f64],
            ) -> Vec<PanelColumn<'p>> {
                ys.iter_mut()
                    .zip(windows)
                    .zip(xs)
                    .map(|((y, w), x)| PanelColumn {
                        x,
                        y: &mut y[..],
                        measure,
                        rows: w.clone(),
                    })
                    .collect()
            }

            // Fully fused variant.
            let mut ys = vec![vec![0.0; n]; windows.len()];
            let mut cols = make_panel(&mut ys, &windows, &xs, &measure);
            let ds = m.mul_panel_dot_sup_range(&mut cols);
            drop(cols);
            assert_eq!(ds, expect_ds);
            assert_eq!(ys, expect_y);
            // Plain product.
            let mut ys = vec![vec![0.0; n]; windows.len()];
            let mut cols = make_panel(&mut ys, &windows, &xs, &measure);
            m.mul_panel_range(&mut cols);
            drop(cols);
            assert_eq!(ys, expect_y);
            // Dot-only and sup-only.
            let mut ys = vec![vec![0.0; n]; windows.len()];
            let mut cols = make_panel(&mut ys, &windows, &xs, &measure);
            let dots = m.mul_panel_dot_range(&mut cols);
            drop(cols);
            let expect_dots: Vec<f64> = expect_ds.iter().map(|&(d, _)| d).collect();
            assert_eq!(dots, expect_dots);
            assert_eq!(ys, expect_y);
            let mut ys = vec![vec![0.0; n]; windows.len()];
            let mut cols = make_panel(&mut ys, &windows, &xs, &measure);
            let sups = m.mul_panel_sup_range(&mut cols);
            drop(cols);
            let expect_sups: Vec<f64> = expect_ds.iter().map(|&(_, s)| s).collect();
            assert_eq!(sups, expect_sups);
            assert_eq!(ys, expect_y);
            // k = 1 degenerates to the single-vector kernel.
            let mut y1 = vec![vec![0.0; n]; 1];
            let mut col = vec![PanelColumn {
                x: &xs[0],
                y: &mut y1[0][..],
                measure: &measure,
                rows: windows[0].clone(),
            }];
            let ds1 = m.mul_panel_dot_sup_range(&mut col);
            drop(col);
            assert_eq!(ds1, vec![expect_ds[0]]);
            assert_eq!(y1[0], expect_y[0]);
        }
    }

    #[test]
    fn split_evenly_covers_and_balances() {
        let parts = split_evenly(10..50, 4);
        assert_eq!(parts, vec![10..20, 20..30, 30..40, 40..50]);
        let tiny = split_evenly(5..7, 4);
        assert_eq!(tiny.iter().map(Range::len).sum::<usize>(), 2);
        assert_eq!(tiny.first().map(|r| r.start), Some(5));
        assert_eq!(tiny.last().map(|r| r.end), Some(7));
        assert!(tiny.windows(2).all(|w| w[0].end == w[1].start));
        assert_eq!(split_evenly(3..3, 2), vec![3..3, 3..3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// CSR → banded → CSR is the identity, and every fused kernel
        /// agrees with its CSR counterpart, across random sparsity
        /// patterns including empty rows and full-corner offsets.
        #[test]
        fn random_round_trip_and_kernel_agreement(
            n in 1usize..24,
            trip in proptest::collection::vec((0usize..24, 0usize..24, -3.0f64..3.0), 0..60),
            seed in 0.0f64..10.0,
        ) {
            let trip: Vec<_> = trip
                .into_iter()
                .filter(|&(r, c, _)| r < n && c < n)
                .collect();
            let csr = CsrMatrix::from_triplets(n, n, trip).unwrap();
            let band = BandedMatrix::from_csr(&csr).unwrap();
            prop_assert_eq!(band.to_csr(), csr.clone());
            prop_assert_eq!(band.nnz(), csr.nnz());
            let x: Vec<f64> = (0..n).map(|i| ((i as f64 + seed) * 0.37).sin()).collect();
            let measure: Vec<f64> = (0..n).map(|i| ((i as f64 - seed) * 0.11).cos()).collect();
            let mut yc = vec![0.0; n];
            let mut yb = vec![0.0; n];
            let (dc, sc) = csr.mul_vec_dot_sup_range(&x, &mut yc, &measure, 0..n);
            let (db, sb) = band.mul_vec_dot_sup_range(&x, &mut yb, &measure, 0..n);
            prop_assert_eq!(&yc, &yb);
            prop_assert!((dc - db).abs() <= 1e-12 * dc.abs().max(1.0));
            prop_assert_eq!(sc, sb);
        }

        /// Panel kernels are bit-identical to advancing each column
        /// through the single-vector kernel, for both representations,
        /// across random matrices, panel widths and windows (empty,
        /// ragged and overlapping ones included).
        #[test]
        fn panel_matches_single_columns(
            n in 1usize..40,
            k in 1usize..7,
            trip in proptest::collection::vec((0usize..40, 0usize..40, -2.0f64..2.0), 0..80),
            bounds in proptest::collection::vec((0usize..40, 0usize..40), 8),
            seed in 0.0f64..10.0,
        ) {
            let trip: Vec<_> = trip
                .into_iter()
                .filter(|&(r, c, _)| r < n && c < n)
                .collect();
            let csr = CsrMatrix::from_triplets(n, n, trip).unwrap();
            let band = BandedMatrix::from_csr(&csr).unwrap();
            let measure: Vec<f64> = (0..n).map(|i| ((i as f64 - seed) * 0.23).cos()).collect();
            let windows: Vec<Range<usize>> = bounds[..k]
                .iter()
                .map(|&(a, b)| {
                    let (a, b) = (a.min(n), b.min(n));
                    a.min(b)..a.max(b)
                })
                .collect();
            let xs: Vec<Vec<f64>> = (0..k)
                .map(|j| (0..n).map(|i| (((i + j) as f64 + seed) * 0.31).sin()).collect())
                .collect();
            for m in [MatrixRef::from(&csr), MatrixRef::from(&band)] {
                let mut expect: Vec<(Vec<f64>, (f64, f64))> = Vec::new();
                for (w, x) in windows.iter().zip(&xs) {
                    let mut y = vec![0.0; n];
                    let ds = m.mul_vec_dot_sup_range(
                        x,
                        &mut y[w.clone()],
                        &measure[w.clone()],
                        w.clone(),
                    );
                    expect.push((y, ds));
                }
                let mut ys: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
                let mut cols: Vec<PanelColumn<'_>> = ys
                    .iter_mut()
                    .zip(&windows)
                    .zip(&xs)
                    .map(|((y, w), x)| PanelColumn {
                        x,
                        y: &mut y[..],
                        measure: &measure,
                        rows: w.clone(),
                    })
                    .collect();
                let ds = m.mul_panel_dot_sup_range(&mut cols);
                drop(cols);
                for (j, (ey, eds)) in expect.iter().enumerate() {
                    prop_assert_eq!(&ys[j], ey);
                    prop_assert_eq!(ds[j], *eds);
                }
            }
        }
    }
}
