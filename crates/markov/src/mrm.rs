//! Homogeneous Markov reward models.
//!
//! A homogeneous MRM attaches a constant reward rate `r_i` to each CTMC
//! state; the accumulated reward is `Y(t) = ∫₀ᵗ r_{X(s)} ds` (paper §4.1).
//! For batteries with `c = 1` (every bit of charge directly available) the
//! consumed charge is exactly such an accumulated reward, which is why the
//! paper can use an exact algorithm ([`crate::sericola`]) for the
//! `C = 800 mAh, c = 1` curve of Fig. 10.

use crate::ctmc::Ctmc;
use crate::foxglynn::poisson_weights;
use crate::MarkovError;

/// A CTMC equipped with one reward rate per state.
///
/// # Examples
///
/// ```
/// use markov::ctmc::CtmcBuilder;
/// use markov::mrm::MarkovRewardModel;
///
/// let mut b = CtmcBuilder::new(2);
/// b.rate(0, 1, 1.0).unwrap();
/// b.rate(1, 0, 1.0).unwrap();
/// let mrm = MarkovRewardModel::new(b.build().unwrap(), vec![0.2, 0.0]).unwrap();
/// assert_eq!(mrm.reward(0), 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovRewardModel {
    ctmc: Ctmc,
    rewards: Vec<f64>,
}

impl MarkovRewardModel {
    /// Attaches `rewards` to `ctmc`.
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidArgument`] when the lengths mismatch or a
    /// reward is non-finite.
    pub fn new(ctmc: Ctmc, rewards: Vec<f64>) -> Result<Self, MarkovError> {
        if rewards.len() != ctmc.n_states() {
            return Err(MarkovError::InvalidArgument(format!(
                "{} rewards for {} states",
                rewards.len(),
                ctmc.n_states()
            )));
        }
        if rewards.iter().any(|r| !r.is_finite()) {
            return Err(MarkovError::InvalidArgument(
                "non-finite reward rate".into(),
            ));
        }
        Ok(MarkovRewardModel { ctmc, rewards })
    }

    /// The underlying CTMC.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// Reward rate of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn reward(&self, i: usize) -> f64 {
        self.rewards[i]
    }

    /// All reward rates.
    pub fn rewards(&self) -> &[f64] {
        &self.rewards
    }

    /// Expected instantaneous reward rate at time `t`, `E[r_{X(t)}]`.
    ///
    /// # Errors
    ///
    /// Propagates transient-solution errors.
    pub fn expected_instantaneous_reward(
        &self,
        alpha: &[f64],
        t: f64,
        epsilon: f64,
    ) -> Result<f64, MarkovError> {
        let sol = crate::transient::transient_distribution(&self.ctmc, alpha, t, epsilon)?;
        Ok(sol
            .distribution
            .iter()
            .zip(&self.rewards)
            .map(|(p, r)| p * r)
            .sum())
    }

    /// Expected accumulated reward `E[Y(t)]` via the uniformisation
    /// identity `∫₀ᵗ ψ(n; νs) ds = (1/ν)·Pr{N(νt) > n}`:
    ///
    /// `E[Y(t)] = Σ_n (r·αPⁿ) · (1/ν) Pr{N(νt) > n}`.
    ///
    /// For a battery this is the expected charge drawn by time `t`.
    ///
    /// # Errors
    ///
    /// Propagates validation and Fox–Glynn errors.
    pub fn expected_accumulated_reward(
        &self,
        alpha: &[f64],
        t: f64,
        epsilon: f64,
    ) -> Result<f64, MarkovError> {
        self.ctmc.check_distribution(alpha)?;
        if !t.is_finite() || t < 0.0 {
            return Err(MarkovError::InvalidArgument(format!(
                "time must be finite and non-negative, got {t}"
            )));
        }
        if t == 0.0 {
            return Ok(0.0);
        }
        let (p, nu) = self.ctmc.uniformised(1.02)?;
        if nu == 0.0 {
            // No transitions at all: Y(t) = r_{X(0)}·t.
            return Ok(alpha
                .iter()
                .zip(&self.rewards)
                .map(|(a, r)| a * r * t)
                .sum());
        }
        let pt = p.transpose();
        let w = poisson_weights(nu * t, epsilon)?;

        // Tail probabilities Pr{N > n}: 1 for n < L, partial sums inside
        // the window, 0 beyond R.
        let mut v = alpha.to_vec();
        let mut next = vec![0.0; v.len()];
        let mut acc = 0.0;
        let mut cdf = 0.0;
        for n in 0..=w.right {
            cdf += w.weight(n);
            let tail = 1.0 - cdf; // Pr{N(νt) > n}
            let s: f64 = v.iter().zip(&self.rewards).map(|(p, r)| p * r).sum();
            acc += s * tail / nu;
            if n < w.right {
                pt.mul_vec_into(&v, &mut next)?;
                std::mem::swap(&mut v, &mut next);
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn two_state(a: f64, b: f64) -> Ctmc {
        let mut builder = CtmcBuilder::new(2);
        builder.rate(0, 1, a).unwrap();
        builder.rate(1, 0, b).unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn construction_validation() {
        let c = two_state(1.0, 1.0);
        assert!(MarkovRewardModel::new(c.clone(), vec![1.0]).is_err());
        assert!(MarkovRewardModel::new(c.clone(), vec![1.0, f64::NAN]).is_err());
        let m = MarkovRewardModel::new(c, vec![2.0, 0.5]).unwrap();
        assert_eq!(m.reward(1), 0.5);
        assert_eq!(m.rewards(), &[2.0, 0.5]);
        assert_eq!(m.ctmc().n_states(), 2);
    }

    #[test]
    fn constant_reward_accumulates_linearly() {
        let m = MarkovRewardModel::new(two_state(2.0, 3.0), vec![5.0, 5.0]).unwrap();
        for &t in &[0.1, 1.0, 7.5] {
            let y = m
                .expected_accumulated_reward(&[1.0, 0.0], t, 1e-12)
                .unwrap();
            assert!((y - 5.0 * t).abs() < 1e-8, "t = {t}: {y}");
        }
    }

    #[test]
    fn zero_time_zero_reward() {
        let m = MarkovRewardModel::new(two_state(1.0, 1.0), vec![1.0, 2.0]).unwrap();
        assert_eq!(
            m.expected_accumulated_reward(&[1.0, 0.0], 0.0, 1e-12)
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn absorbing_chain_closed_form() {
        // 0 → 1 at rate a, reward 1 in state 0, 0 in state 1:
        // Y(t) = min(T, t) with T ~ Exp(a) ⇒ E[Y(t)] = (1 − e^{-at})/a.
        let a = 2.0;
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, a).unwrap();
        let m = MarkovRewardModel::new(b.build().unwrap(), vec![1.0, 0.0]).unwrap();
        for &t in &[0.2, 1.0, 3.0, 10.0] {
            let y = m
                .expected_accumulated_reward(&[1.0, 0.0], t, 1e-12)
                .unwrap();
            let expect = (1.0 - (-a * t).exp()) / a;
            assert!((y - expect).abs() < 1e-9, "t = {t}: {y} vs {expect}");
        }
    }

    #[test]
    fn no_transition_chain_linear_reward() {
        let c = CtmcBuilder::new(2).build().unwrap();
        let m = MarkovRewardModel::new(c, vec![3.0, 7.0]).unwrap();
        let y = m
            .expected_accumulated_reward(&[0.5, 0.5], 2.0, 1e-12)
            .unwrap();
        assert!((y - (0.5 * 3.0 + 0.5 * 7.0) * 2.0).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_reward_converges_to_stationary_mix() {
        // Stationary distribution of (1.0, 3.0) chain is (0.75, 0.25).
        let m = MarkovRewardModel::new(two_state(1.0, 3.0), vec![8.0, 200.0]).unwrap();
        let r = m
            .expected_instantaneous_reward(&[1.0, 0.0], 100.0, 1e-12)
            .unwrap();
        assert!((r - (0.75 * 8.0 + 0.25 * 200.0)).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn accumulated_reward_monotone_in_t() {
        let m = MarkovRewardModel::new(two_state(2.0, 1.0), vec![1.0, 4.0]).unwrap();
        let mut prev = 0.0;
        for i in 1..=10 {
            let y = m
                .expected_accumulated_reward(&[1.0, 0.0], i as f64 * 0.5, 1e-11)
                .unwrap();
            assert!(y >= prev - 1e-10);
            prev = y;
        }
    }

    #[test]
    fn bad_time_rejected() {
        let m = MarkovRewardModel::new(two_state(1.0, 1.0), vec![1.0, 0.0]).unwrap();
        assert!(m
            .expected_accumulated_reward(&[1.0, 0.0], -1.0, 1e-12)
            .is_err());
    }
}
