//! This package only hosts the workspace-level integration tests; the
//! test sources live in `/tests` at the repository root (see
//! `Cargo.toml`'s `[[test]]` entries).
