//! Workspace-level integration testing support.
//!
//! This package has two jobs:
//!
//! * it owns the repository-level test and example sources in `/tests`
//!   and `/examples` (see the `[[test]]`/`[[example]]` entries in its
//!   `Cargo.toml`), and
//! * it provides cross-crate smoke-test fixtures: the paper's cell-phone
//!   scenario in the variants the solver backends are cross-checked on
//!   (see `tests/solver_agreement.rs` in this package).

#![forbid(unsafe_code)]

use kibamrm::scenario::Scenario;
use kibamrm::workload::Workload;
use units::{Charge, Rate, Time};

/// The paper's cell-phone scenario (Fig. 10 middle family): simple
/// workload, 800 mAh, `c = 0.625`, `k = 4.5·10⁻⁵/s`. Only the
/// approximate backends apply.
///
/// # Panics
///
/// Panics if the paper constants ever fail validation (they cannot).
pub fn cell_phone_two_well(delta_mah: f64, runs: usize) -> Scenario {
    Scenario::builder()
        .name("cell-phone-two-well")
        .workload(Workload::simple_model().expect("paper workload"))
        .capacity(Charge::from_milliamp_hours(800.0))
        .kibam(0.625, Rate::per_second(4.5e-5))
        .times((5..=28).map(|h| Time::from_hours(h as f64)).collect())
        .delta(Charge::from_milliamp_hours(delta_mah))
        .simulation(runs, 1007)
        .build()
        .expect("paper constants are valid")
}

/// The linear variant (Fig. 10 rightmost curve): `c = 1`, where all
/// three backends — including the exact one — apply.
///
/// # Panics
///
/// Panics if the paper constants ever fail validation (they cannot).
pub fn cell_phone_linear(delta_mah: f64, runs: usize) -> Scenario {
    cell_phone_two_well(delta_mah, runs)
        .with_name("cell-phone-linear")
        .with_kibam(1.0, Rate::per_second(0.0))
        .expect("c = 1 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let two_well = cell_phone_two_well(25.0, 10);
        assert!(!two_well.is_linear());
        assert_eq!(two_well.sim_runs(), 10);
        let linear = cell_phone_linear(25.0, 10);
        assert!(linear.is_linear());
        assert_eq!(linear.capacity(), two_well.capacity());
    }
}
