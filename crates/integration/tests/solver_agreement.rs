//! Cross-crate smoke tests: the whole stack — units → numerics → markov /
//! battery → sim → kibamrm — exercised through the solver facade on the
//! paper's cell-phone scenario, asserting that every applicable method
//! agrees within tolerance.

use integration::{cell_phone_linear, cell_phone_two_well};
use kibamrm::solver::{LifetimeSolver, SericolaSolver, SolverRegistry};
use units::Time;

/// All three backends on the linear (`c = 1`) cell-phone scenario: the
/// exact curve is the reference; discretisation at Δ = 2 mAh and 800
/// simulation runs must both track it closely.
#[test]
fn all_three_solvers_agree_on_the_linear_cell_phone() {
    let scenario = cell_phone_linear(2.0, 800);
    let registry = SolverRegistry::with_default_backends();
    // auto() must prefer the exact method here.
    assert_eq!(registry.auto(&scenario).unwrap().name(), "sericola");

    let cv = registry.cross_validate(&scenario).unwrap();
    assert_eq!(cv.results.len(), 3, "all three backends must run");
    let exact = cv.result("sericola").unwrap();
    let approx = cv.result("discretisation").unwrap();
    let sim = cv.result("simulation").unwrap();

    let d_approx = exact.max_difference(approx).unwrap();
    assert!(d_approx < 0.03, "exact vs discretisation: {d_approx}");
    // 800 runs ⇒ binomial σ ≤ 0.018; allow ~3σ.
    let d_sim = exact.max_difference(sim).unwrap();
    assert!(d_sim < 0.055, "exact vs simulation: {d_sim}");

    // The three medians agree to within a grid step.
    let medians: Vec<f64> = cv
        .results
        .iter()
        .map(|d| d.median().expect("curve crosses 1/2").as_hours())
        .collect();
    let spread = medians.iter().cloned().fold(f64::MIN, f64::max)
        - medians.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.0, "median spread {spread} h across {medians:?}");
}

/// The two-well cell-phone scenario: Sericola rules itself out, the two
/// approximate methods agree (paper: the algorithm "gave good results").
#[test]
fn approximate_solvers_agree_on_the_two_well_cell_phone() {
    let scenario = cell_phone_two_well(2.0, 800);
    let registry = SolverRegistry::with_default_backends();
    assert_eq!(registry.auto(&scenario).unwrap().name(), "discretisation");

    let cv = registry.cross_validate(&scenario).unwrap();
    assert_eq!(cv.results.len(), 2);
    assert!(cv.result("sericola").is_none());
    assert!(
        cv.max_disagreement() < 0.07,
        "discretisation vs simulation: {}",
        cv.max_disagreement()
    );
}

/// The serialised form of the scenario is solvable end to end: config
/// text → Scenario → solver → distribution, with the same answer.
#[test]
fn config_roundtrip_solves_identically() {
    let scenario = cell_phone_linear(25.0, 50);
    let text = scenario.to_config_string().unwrap();
    let parsed = kibamrm::scenario::Scenario::from_config_str(&text).unwrap();
    let solver = SericolaSolver::new();
    let a = solver.solve(&scenario).unwrap();
    let b = solver.solve(&parsed).unwrap();
    assert!(a.max_difference(&b).unwrap() < 1e-12);
    assert!(a.cdf(Time::from_hours(28.0)) > 0.9);
}
