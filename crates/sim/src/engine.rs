//! The parallel streaming Monte Carlo engine.
//!
//! [`McPool`] executes replications on a persistent worker pool (spawned
//! once, reused across studies — the zero-respawn discipline of
//! `markov::pool::SpmvPool`) and folds them into a
//! [`StreamingLifetimeStudy`], making 10⁶–10⁷ replications practical:
//! memory stays O(time-grid + threads), never O(runs).
//!
//! # Determinism: bit-identical for any thread count
//!
//! Three choices make a study's result a pure function of
//! `(grid, horizon, seed, options, experiment)` — independent of how
//! many workers computed it:
//!
//! 1. **Counter-derived streams.** Replication `r` always draws from
//!    [`SimRng::stream`]`(master_seed, r)`; workers claim replication
//!    *indices*, they never share a sequential generator.
//! 2. **Fixed batch schedule.** Replications are grouped into batches of
//!    [`McOptions::batch`] consecutive indices. The schedule depends
//!    only on the round structure, never on the worker count.
//! 3. **In-order merging.** Batch partials are merged into the study in
//!    batch-index order (out-of-order completions wait in a bounded
//!    buffer). The sequential path uses the *same* batch-then-merge
//!    structure, so `threads = 1` and `threads = 8` perform the exact
//!    same floating-point operations in the same order.
//!
//! # The adaptive stopping rule
//!
//! With [`McOptions::target_half_width`] set, the engine runs in
//! *rounds*: the first round is [`McOptions::runs`] replications, and
//! while the largest 95 % Wilson half-width over the grid exceeds the
//! target, the replication count doubles (capped at
//! [`McOptions::max_runs`]). Round boundaries are fixed checkpoints
//! derived from the merged study, so the stopping decision — and hence
//! the final replication count — is itself deterministic across thread
//! counts.

use crate::rng::SimRng;
use crate::streaming::{StreamingError, StreamingLifetimeStudy};
use markov::budget::Budget;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One replication's outcome, as reported by the experiment closure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Replication {
    /// The battery emptied at the given time (`≤` horizon).
    Depleted(f64),
    /// The battery outlived the horizon.
    Censored,
    /// Abort the whole study (the caller records the underlying error
    /// itself — e.g. in a mutex the experiment closure captures — and
    /// the engine returns [`EngineError::Aborted`]).
    Abort,
}

/// Errors from the streaming engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The experiment returned [`Replication::Abort`].
    Aborted,
    /// A grid/lifetime/merge error from the accumulator.
    Streaming(StreamingError),
    /// Inconsistent [`McOptions`].
    InvalidOptions(String),
    /// A cooperative [`Budget`] check failed at a batch checkpoint: the
    /// study was cancelled or ran past its deadline. Carries the
    /// replications merged before the interruption.
    DeadlineExceeded {
        /// Replications folded into the study before the budget expired.
        completed_runs: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Aborted => write!(f, "experiment aborted the study"),
            EngineError::Streaming(e) => write!(f, "{e}"),
            EngineError::InvalidOptions(why) => write!(f, "invalid engine options: {why}"),
            EngineError::DeadlineExceeded { completed_runs } => {
                write!(f, "deadline exceeded after {completed_runs} replications")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StreamingError> for EngineError {
    fn from(e: StreamingError) -> Self {
        EngineError::Streaming(e)
    }
}

/// Replication budget and stopping rule for one study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McOptions {
    /// Replications of the first round (the paper's default is 1000).
    /// With no target half-width this is the exact total.
    pub runs: u64,
    /// Replications per batch — the scheduling and merge quantum. Small
    /// enough for load balancing, large enough that claiming a batch
    /// (one channel send/recv) is negligible against simulating it.
    pub batch: u64,
    /// Adaptive stopping: keep doubling the replication count until the
    /// largest 95 % Wilson half-width over the grid drops to this
    /// target (or `max_runs` is hit). `None` runs exactly `runs`.
    pub target_half_width: Option<f64>,
    /// Hard replication cap for the adaptive rule.
    pub max_runs: u64,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            runs: 1000,
            batch: 256,
            target_half_width: None,
            max_runs: 1 << 20,
        }
    }
}

impl McOptions {
    fn validate(&self) -> Result<(), EngineError> {
        let bad = |why: String| Err(EngineError::InvalidOptions(why));
        if self.runs == 0 {
            return bad("runs must be positive".into());
        }
        if self.batch == 0 {
            return bad("batch must be positive".into());
        }
        if let Some(target) = self.target_half_width {
            if !(target > 0.0) || !target.is_finite() {
                return bad(format!("target half-width must be positive, got {target}"));
            }
            if self.max_runs < self.runs {
                return bad(format!(
                    "max_runs {} below the initial round of {} runs",
                    self.max_runs, self.runs
                ));
            }
        }
        Ok(())
    }
}

/// One unit of work: fold replications `reps` (streams derived from
/// `master_seed`) into a fresh partial over the shared grid.
///
/// The experiment reference is lifetime-erased to `'static` because the
/// pool outlives any single borrow; the *caller* guarantees the
/// referent stays alive until the completion message for this job
/// arrives ([`McPool::run_study`] blocks on exactly that, draining
/// every in-flight job even on failure).
struct Job {
    experiment: &'static (dyn Fn(&mut SimRng) -> Replication + Sync),
    grid: Arc<[f64]>,
    horizon: f64,
    master_seed: u64,
    batch_index: usize,
    reps: Range<u64>,
}

/// Why a batch produced no partial: an engine error, or a panic that
/// unwound out of the experiment closure (its payload is carried back so
/// the dispatcher can re-raise it on the caller's thread *after* every
/// in-flight job is drained — re-raising earlier would end the
/// experiment borrow while workers still hold it).
enum BatchFailure {
    Error(EngineError),
    Panicked(Box<dyn std::any::Any + Send>),
}

type Completion = (usize, Result<StreamingLifetimeStudy, BatchFailure>);

/// A persistent pool of Monte Carlo workers; see the module docs.
///
/// # Examples
///
/// ```
/// use sim::engine::{McOptions, McPool, Replication};
///
/// // Lifetimes ~ Exp(1), censored at 4.0.
/// let experiment = |rng: &mut sim::rng::SimRng| {
///     let t = rng.exponential(1.0);
///     if t <= 4.0 { Replication::Depleted(t) } else { Replication::Censored }
/// };
/// let pool = McPool::with_exact_threads(2);
/// let opts = McOptions { runs: 4000, ..McOptions::default() };
/// let study = pool
///     .run_study(vec![0.5, 1.0, 2.0], 4.0, 7, &opts, &experiment)
///     .unwrap();
/// assert_eq!(study.total_runs(), 4000);
/// let p = study.empty_probability(1); // ≈ 1 − e⁻¹
/// assert!((p - 0.632).abs() < 0.03);
/// ```
#[derive(Debug)]
pub struct McPool {
    /// Shared job queue: workers race to claim the next batch.
    job_tx: Option<Sender<Job>>,
    done_rx: Receiver<Completion>,
    handles: Vec<JoinHandle<()>>,
}

// A resident holder (`kibamrm::service`) keeps one pool alive for the
// process lifetime and migrates it between request threads, so the pool
// must stay `Send` (it need not be `Sync`: the holder serialises
// studies, matching `run_study`'s exclusive dispatch loop).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<McPool>();
};

impl McPool {
    /// Spawns up to `threads` workers, clamped to the machine's
    /// available parallelism (replication simulation is compute-bound);
    /// none when the effective count is ≤ 1 — the caller's thread then
    /// runs the same batch schedule inline.
    pub fn new(threads: usize) -> McPool {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        McPool::with_exact_threads(threads.min(cores))
    }

    /// [`McPool::new`] without the available-parallelism clamp (the
    /// thread-count bit-identity tests exercise real worker pools on
    /// any machine).
    pub fn with_exact_threads(threads: usize) -> McPool {
        let workers = if threads > 1 { threads } else { 0 };
        let (done_tx, done_rx) = channel::<Completion>();
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&job_rx);
            let done = done_tx.clone();
            handles.push(std::thread::spawn(move || worker_loop(&rx, &done)));
        }
        McPool {
            job_tx: (workers > 0).then_some(job_tx),
            done_rx,
            handles,
        }
    }

    /// Worker count (1 when the pool runs inline on the caller's
    /// thread).
    pub fn threads(&self) -> usize {
        self.handles.len().max(1)
    }

    /// `true` when every batch runs inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.handles.is_empty()
    }

    /// Runs a study: replications drawn from counter-derived streams of
    /// `master_seed`, folded into a [`StreamingLifetimeStudy`] over
    /// `grid` (censoring `horizon`), under `opts`' stopping rule. The
    /// result is **bit-identical for any thread count** — see the
    /// module docs for why.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidOptions`] and grid validation errors
    /// up front; [`EngineError::Aborted`] when the experiment returns
    /// [`Replication::Abort`] (the caller records the underlying error
    /// itself); [`EngineError::Streaming`] on NaN/negative lifetimes.
    pub fn run_study(
        &self,
        grid: Vec<f64>,
        horizon: f64,
        master_seed: u64,
        opts: &McOptions,
        experiment: &(dyn Fn(&mut SimRng) -> Replication + Sync),
    ) -> Result<StreamingLifetimeStudy, EngineError> {
        self.run_study_budgeted(
            grid,
            horizon,
            master_seed,
            opts,
            experiment,
            &Budget::unlimited(),
        )
    }

    /// [`run_study`](McPool::run_study) under a cooperative [`Budget`],
    /// checked once per batch checkpoint (the scheduling and merge
    /// quantum). An exhausted budget stops dispatching, **drains every
    /// in-flight batch** — the invariant that keeps the lifetime-erased
    /// experiment borrow sound — and returns
    /// [`EngineError::DeadlineExceeded`] with the replications merged so
    /// far. With [`Budget::unlimited`] the check is a single branch and
    /// the study is bit-identical to the unbudgeted entry point.
    ///
    /// # Errors
    ///
    /// As for [`run_study`](McPool::run_study), plus
    /// [`EngineError::DeadlineExceeded`] when the budget expires.
    pub fn run_study_budgeted(
        &self,
        grid: Vec<f64>,
        horizon: f64,
        master_seed: u64,
        opts: &McOptions,
        experiment: &(dyn Fn(&mut SimRng) -> Replication + Sync),
        budget: &Budget,
    ) -> Result<StreamingLifetimeStudy, EngineError> {
        opts.validate()?;
        let mut merged = StreamingLifetimeStudy::new(grid, horizon)?;
        let mut total: u64 = 0;
        let mut round_end = opts.runs;
        loop {
            self.run_round(
                &mut merged,
                total..round_end,
                master_seed,
                opts,
                experiment,
                budget,
            )?;
            total = round_end;
            let Some(target) = opts.target_half_width else {
                break;
            };
            if merged.max_half_width() <= target || total >= opts.max_runs {
                break;
            }
            // Doubling keeps the number of stopping checks logarithmic
            // and the total work within 2× of the minimal sufficient
            // count; checkpoints are fixed, so the stopping decision is
            // thread-count independent.
            round_end = total.saturating_mul(2).min(opts.max_runs);
        }
        Ok(merged)
    }

    /// Executes replications `reps` as consecutive batches and merges
    /// them into `merged` in batch order.
    fn run_round(
        &self,
        merged: &mut StreamingLifetimeStudy,
        reps: Range<u64>,
        master_seed: u64,
        opts: &McOptions,
        experiment: &(dyn Fn(&mut SimRng) -> Replication + Sync),
        budget: &Budget,
    ) -> Result<(), EngineError> {
        let batches: Vec<Range<u64>> = {
            let mut out = Vec::new();
            let mut start = reps.start;
            while start < reps.end {
                let end = (start + opts.batch).min(reps.end);
                out.push(start..end);
                start = end;
            }
            out
        };
        let Some(job_tx) = &self.job_tx else {
            // Inline path: same batch-partial-then-merge structure as
            // the workers, so the floating-point operation sequence is
            // identical — this is the bit-identity anchor.
            for batch in batches {
                if budget.check(merged.total_runs() as usize).is_err() {
                    return Err(EngineError::DeadlineExceeded {
                        completed_runs: merged.total_runs(),
                    });
                }
                let partial = batch_partial(
                    merged.shared_grid(),
                    merged.horizon(),
                    master_seed,
                    batch,
                    experiment,
                )?;
                merged.merge(&partial)?;
            }
            return Ok(());
        };

        // Workers claim batches from the shared queue; completions are
        // merged in batch order. Dispatch stays at most `cap` batches
        // ahead of the merge watermark, so out-of-order completions
        // wait in a buffer of at most `cap` partials — memory is
        // O(threads · grid) regardless of the replication count.
        let cap = 2 * self.handles.len();
        let mut next = 0usize; // next batch to dispatch
        let mut watermark = 0usize; // batches merged so far
        let mut in_flight = 0usize;
        let mut pending: BTreeMap<usize, StreamingLifetimeStudy> = BTreeMap::new();
        let mut failure: Option<BatchFailure> = None;
        loop {
            while failure.is_none() && next < batches.len() && next < watermark + cap {
                // Budget checkpoint per dispatched batch. An exhausted
                // budget stops dispatching but NOT draining: the loop
                // below still collects every in-flight acknowledgement
                // before returning (the Job soundness invariant).
                if budget
                    .check(next.saturating_mul(opts.batch as usize))
                    .is_err()
                {
                    failure = Some(BatchFailure::Error(EngineError::DeadlineExceeded {
                        completed_runs: 0, // patched with the merged total below
                    }));
                    break;
                }
                // SAFETY: lifetime erasure only — the referent outlives
                // every job because this function collects all in-flight
                // acknowledgements before returning (even on failure).
                let experiment: &'static (dyn Fn(&mut SimRng) -> Replication + Sync) =
                    unsafe { std::mem::transmute(experiment) };
                let job = Job {
                    experiment,
                    grid: merged.shared_grid(),
                    horizon: merged.horizon(),
                    master_seed,
                    batch_index: next,
                    reps: batches[next].clone(),
                };
                job_tx.send(job).expect("mc worker hung up");
                next += 1;
                in_flight += 1;
            }
            if in_flight == 0 {
                break;
            }
            // Collect every acknowledgement before returning — even on
            // failure — so no worker still holds the experiment pointer
            // when the borrow ends (this is what makes `Job` sound).
            let (index, result) = self.done_rx.recv().expect("mc worker died");
            in_flight -= 1;
            match result {
                Err(f) => {
                    // First failure wins, except that a panic always
                    // displaces a plain error — swallowing a panic
                    // payload would hide the bug that caused it.
                    let panicked = matches!(f, BatchFailure::Panicked(_));
                    if failure.is_none()
                        || (panicked && !matches!(failure, Some(BatchFailure::Panicked(_))))
                    {
                        failure = Some(f);
                    }
                }
                Ok(partial) => {
                    pending.insert(index, partial);
                }
            }
            if failure.is_none() {
                while let Some(partial) = pending.remove(&watermark) {
                    if let Err(e) = merged.merge(&partial) {
                        failure.get_or_insert(BatchFailure::Error(e.into()));
                        break;
                    }
                    watermark += 1;
                }
            }
        }
        match failure {
            // Report what actually landed in the study, not what was
            // dispatched: merged replications are the usable work.
            Some(BatchFailure::Error(EngineError::DeadlineExceeded { .. })) => {
                Err(EngineError::DeadlineExceeded {
                    completed_runs: merged.total_runs(),
                })
            }
            Some(BatchFailure::Error(e)) => Err(e),
            // Every in-flight job is drained by now (the loop above only
            // exits at in_flight == 0), so the experiment borrow is free
            // and the worker's panic can resume on the caller's thread —
            // the same observable behaviour as the inline path.
            Some(BatchFailure::Panicked(payload)) => std::panic::resume_unwind(payload),
            None => {
                debug_assert_eq!(watermark, batches.len(), "every batch merged");
                Ok(())
            }
        }
    }
}

impl Drop for McPool {
    fn drop(&mut self) {
        // Closing the job queue ends every worker loop.
        self.job_tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Folds the replications of one batch into a fresh partial. Shared by
/// the inline and worker paths — bit-identity across thread counts
/// reduces to "same batches, same merge order".
fn batch_partial(
    grid: Arc<[f64]>,
    horizon: f64,
    master_seed: u64,
    reps: Range<u64>,
    experiment: &(dyn Fn(&mut SimRng) -> Replication + Sync),
) -> Result<StreamingLifetimeStudy, EngineError> {
    let mut partial = StreamingLifetimeStudy::from_shared_grid(grid, horizon);
    for r in reps {
        let mut rng = SimRng::stream(master_seed, r);
        match experiment(&mut rng) {
            Replication::Depleted(t) => partial.fold(Some(t))?,
            Replication::Censored => partial.fold(None)?,
            Replication::Abort => return Err(EngineError::Aborted),
        }
    }
    Ok(partial)
}

fn worker_loop(jobs: &Arc<Mutex<Receiver<Job>>>, done: &Sender<Completion>) {
    loop {
        // Hold the queue lock only for the claim, not the computation.
        let claimed = { jobs.lock().expect("mc queue poisoned").recv() };
        let Ok(job) = claimed else { return };
        // The experiment referent is alive for the whole computation:
        // the dispatcher blocks until our completion message (the
        // `'static` on the field is erasure, not a real lifetime). A
        // panicking experiment must still produce that message — a
        // swallowed unwind would leave the dispatcher waiting forever —
        // so the unwind is caught here and re-raised on the caller's
        // thread once every in-flight job has drained. (AssertUnwindSafe:
        // the only state crossing the boundary is the experiment's own
        // captured state, which the panic already exposes on the inline
        // path too.)
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch_partial(
                job.grid,
                job.horizon,
                job.master_seed,
                job.reps,
                job.experiment,
            )
        }));
        let result = match result {
            Ok(Ok(partial)) => Ok(partial),
            Ok(Err(e)) => Err(BatchFailure::Error(e)),
            Err(payload) => Err(BatchFailure::Panicked(payload)),
        };
        if done.send((job.batch_index, result)).is_err() {
            return; // pool dropped mid-flight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exp(rate) lifetimes censored at `horizon`.
    fn exponential_experiment(
        rate: f64,
        horizon: f64,
    ) -> impl Fn(&mut SimRng) -> Replication + Sync {
        move |rng: &mut SimRng| {
            let t = rng.exponential(rate);
            if t <= horizon {
                Replication::Depleted(t)
            } else {
                Replication::Censored
            }
        }
    }

    #[test]
    fn study_results_are_bit_identical_across_thread_counts() {
        let grid = vec![0.25, 0.5, 1.0, 2.0, 3.0];
        let opts = McOptions {
            runs: 5000,
            batch: 128,
            ..McOptions::default()
        };
        let experiment = exponential_experiment(1.0, 3.0);
        let reference = McPool::with_exact_threads(1)
            .run_study(grid.clone(), 3.0, 2024, &opts, &experiment)
            .unwrap();
        for threads in 2..=8 {
            let pool = McPool::with_exact_threads(threads);
            assert!(!pool.is_sequential());
            assert_eq!(pool.threads(), threads);
            let study = pool
                .run_study(grid.clone(), 3.0, 2024, &opts, &experiment)
                .unwrap();
            // PartialEq covers counts AND the f64 moment state: this is
            // bit-identity, not statistical agreement.
            assert_eq!(study, reference, "threads = {threads}");
        }
    }

    #[test]
    fn pool_survives_many_studies_and_matches_theory() {
        let pool = McPool::with_exact_threads(4);
        let experiment = exponential_experiment(1.0, 5.0);
        let opts = McOptions {
            runs: 20_000,
            ..McOptions::default()
        };
        for seed in 0..5 {
            let study = pool
                .run_study(vec![0.5, 1.0, 2.0], 5.0, seed, &opts, &experiment)
                .unwrap();
            assert_eq!(study.total_runs(), 20_000);
            for (i, &t) in [0.5f64, 1.0, 2.0].iter().enumerate() {
                let theory = 1.0 - (-t).exp();
                let p = study.empty_probability(i);
                assert!((p - theory).abs() < 0.02, "seed {seed}, t {t}: {p}");
            }
        }
    }

    #[test]
    fn adaptive_rule_stops_at_the_target_and_is_deterministic() {
        let grid = vec![0.5, 1.0, 2.0];
        let opts = McOptions {
            runs: 500,
            batch: 64,
            target_half_width: Some(0.01),
            max_runs: 1 << 17,
        };
        let experiment = exponential_experiment(1.0, 2.0);
        let a = McPool::with_exact_threads(1)
            .run_study(grid.clone(), 2.0, 7, &opts, &experiment)
            .unwrap();
        // The target is met (it is reachable within the cap)…
        assert!(a.max_half_width() <= 0.01, "{}", a.max_half_width());
        // …and needed more than the initial round.
        assert!(a.total_runs() > 500, "{} runs", a.total_runs());
        assert!(a.total_runs() <= 1 << 17);
        // The stopping decision is part of the determinism guarantee.
        let b = McPool::with_exact_threads(3)
            .run_study(grid, 2.0, 7, &opts, &experiment)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_rule_respects_the_run_cap() {
        let opts = McOptions {
            runs: 100,
            batch: 32,
            target_half_width: Some(1e-6), // unreachable
            max_runs: 1000,
        };
        let study = McPool::with_exact_threads(2)
            .run_study(vec![1.0], 2.0, 1, &opts, &exponential_experiment(1.0, 2.0))
            .unwrap();
        assert_eq!(study.total_runs(), 1000);
        assert!(study.max_half_width() > 1e-6);
    }

    #[test]
    fn abort_propagates_and_the_pool_stays_usable() {
        let pool = McPool::with_exact_threads(2);
        let opts = McOptions {
            runs: 1000,
            batch: 16,
            ..McOptions::default()
        };
        let aborting = |rng: &mut SimRng| {
            if rng.uniform() < 0.01 {
                Replication::Abort
            } else {
                Replication::Censored
            }
        };
        let err = pool
            .run_study(vec![1.0], 2.0, 5, &opts, &aborting)
            .expect_err("must abort");
        assert_eq!(err, EngineError::Aborted);
        // The pool drained all in-flight work and accepts new studies.
        let ok = pool
            .run_study(vec![1.0], 2.0, 5, &opts, &exponential_experiment(1.0, 2.0))
            .unwrap();
        assert_eq!(ok.total_runs(), 1000);
    }

    #[test]
    fn a_panicking_experiment_propagates_and_does_not_deadlock() {
        // Regression: a panic unwinding out of a pooled experiment used
        // to swallow the worker's completion message, deadlocking the
        // dispatcher. It must propagate to the caller (like the inline
        // path) and leave the pool serviceable.
        let pool = McPool::with_exact_threads(3);
        let opts = McOptions {
            runs: 500,
            batch: 16,
            ..McOptions::default()
        };
        let panicking = |rng: &mut SimRng| {
            if rng.uniform() < 0.05 {
                panic!("boom in replication");
            }
            Replication::Censored
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_study(vec![1.0], 2.0, 9, &opts, &panicking)
        }));
        let payload = result.expect_err("panic must propagate, not deadlock");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom in replication"));
        // Workers caught the unwind and keep serving new studies.
        let ok = pool
            .run_study(vec![1.0], 2.0, 9, &opts, &exponential_experiment(1.0, 2.0))
            .unwrap();
        assert_eq!(ok.total_runs(), 500);
    }

    #[test]
    fn options_and_grid_are_validated() {
        let pool = McPool::with_exact_threads(1);
        let experiment = exponential_experiment(1.0, 2.0);
        let run =
            |opts: McOptions, grid: Vec<f64>| pool.run_study(grid, 2.0, 1, &opts, &experiment);
        let default = McOptions::default();
        assert!(matches!(
            run(McOptions { runs: 0, ..default }, vec![1.0]),
            Err(EngineError::InvalidOptions(_))
        ));
        assert!(matches!(
            run(
                McOptions {
                    batch: 0,
                    ..default
                },
                vec![1.0]
            ),
            Err(EngineError::InvalidOptions(_))
        ));
        assert!(matches!(
            run(
                McOptions {
                    target_half_width: Some(-0.5),
                    ..default
                },
                vec![1.0]
            ),
            Err(EngineError::InvalidOptions(_))
        ));
        assert!(matches!(
            run(
                McOptions {
                    runs: 100,
                    target_half_width: Some(0.1),
                    max_runs: 50,
                    ..default
                },
                vec![1.0]
            ),
            Err(EngineError::InvalidOptions(_))
        ));
        // Grid validation flows through from the accumulator.
        assert!(matches!(
            run(default, vec![2.0, 1.0]),
            Err(EngineError::Streaming(StreamingError::InvalidGrid(_)))
        ));
        // Errors display.
        assert!(EngineError::Aborted.to_string().contains("aborted"));
        assert!(EngineError::InvalidOptions("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn expired_budget_aborts_without_running_and_pool_stays_usable() {
        let opts = McOptions {
            runs: 10_000,
            batch: 64,
            ..McOptions::default()
        };
        let experiment = exponential_experiment(1.0, 2.0);
        for threads in [1usize, 4] {
            let pool = McPool::with_exact_threads(threads);
            let err = pool
                .run_study_budgeted(
                    vec![1.0],
                    2.0,
                    1,
                    &opts,
                    &experiment,
                    &Budget::cancelled_after_checks(0),
                )
                .expect_err("expired budget must abort");
            assert_eq!(err, EngineError::DeadlineExceeded { completed_runs: 0 });
            // All in-flight work was drained; the pool accepts new studies.
            let ok = pool
                .run_study(vec![1.0], 2.0, 1, &opts, &experiment)
                .unwrap();
            assert_eq!(ok.total_runs(), 10_000);
        }
    }

    #[test]
    fn inline_budget_cancels_at_an_exact_batch_boundary() {
        // Inline path: one check per batch, so cancelled_after_checks(k)
        // merges exactly k full batches before stopping.
        let opts = McOptions {
            runs: 1000,
            batch: 64,
            ..McOptions::default()
        };
        let pool = McPool::with_exact_threads(1);
        let err = pool
            .run_study_budgeted(
                vec![1.0],
                2.0,
                5,
                &opts,
                &exponential_experiment(1.0, 2.0),
                &Budget::cancelled_after_checks(3),
            )
            .expect_err("budget must expire");
        assert_eq!(
            err,
            EngineError::DeadlineExceeded {
                completed_runs: 3 * 64
            }
        );
    }

    #[test]
    fn cancelled_budget_reports_partial_work_from_the_pool() {
        let opts = McOptions {
            runs: 50_000,
            batch: 32,
            ..McOptions::default()
        };
        let pool = McPool::with_exact_threads(4);
        let budget = Budget::cancelled_after_checks(20);
        let err = pool
            .run_study_budgeted(
                vec![1.0],
                2.0,
                5,
                &opts,
                &exponential_experiment(1.0, 2.0),
                &budget,
            )
            .expect_err("budget must expire");
        let EngineError::DeadlineExceeded { completed_runs } = err else {
            panic!("wrong error: {err}");
        };
        // Some batches may still have been in flight (unmerged) at the
        // checkpoint; the reported work is what landed in the study.
        assert!(completed_runs < 50_000, "ran to completion");
        assert_eq!(completed_runs % 32, 0, "whole batches only");
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_unbudgeted() {
        let opts = McOptions {
            runs: 4000,
            batch: 128,
            ..McOptions::default()
        };
        let experiment = exponential_experiment(1.0, 3.0);
        let pool = McPool::with_exact_threads(3);
        let plain = pool
            .run_study(vec![0.5, 1.0, 2.0], 3.0, 11, &opts, &experiment)
            .unwrap();
        let budgeted = pool
            .run_study_budgeted(
                vec![0.5, 1.0, 2.0],
                3.0,
                11,
                &opts,
                &experiment,
                &Budget::unlimited(),
            )
            .unwrap();
        assert_eq!(plain, budgeted);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// The satellite property: across random seeds, batch sizes,
        /// replication counts and stopping rules, the study a worker
        /// pool of 2–8 threads produces is bit-identical to the inline
        /// single-threaded study — counts, totals AND the f64 moment
        /// sketches.
        #[test]
        fn studies_are_bit_identical_across_thread_counts(
            threads in 2usize..=8,
            seed in 0u64..1000,
            batch in 1u64..200,
            runs in 1u64..2000,
            adaptive_sel in 0u64..2,
        ) {
            use proptest::prelude::*;
            let grid = vec![0.25, 0.5, 1.0, 2.0];
            let opts = McOptions {
                runs,
                batch,
                target_half_width: (adaptive_sel == 1).then_some(0.05),
                max_runs: runs.max(4000),
            };
            let experiment = exponential_experiment(1.0, 2.0);
            let reference = McPool::with_exact_threads(1)
                .run_study(grid.clone(), 2.0, seed, &opts, &experiment)
                .unwrap();
            let study = McPool::with_exact_threads(threads)
                .run_study(grid, 2.0, seed, &opts, &experiment)
                .unwrap();
            prop_assert!(study == reference,
                "threads {} differ from inline: {:?} vs {:?}", threads, study, reference);
        }
    }

    #[test]
    fn short_final_batch_and_tiny_runs_work() {
        // runs not a multiple of batch, fewer runs than workers.
        let opts = McOptions {
            runs: 7,
            batch: 3,
            ..McOptions::default()
        };
        let experiment = exponential_experiment(2.0, 10.0);
        let a = McPool::with_exact_threads(8)
            .run_study(vec![1.0, 2.0], 10.0, 3, &opts, &experiment)
            .unwrap();
        assert_eq!(a.total_runs(), 7);
        let b = McPool::with_exact_threads(1)
            .run_study(vec![1.0, 2.0], 10.0, 3, &opts, &experiment)
            .unwrap();
        assert_eq!(a, b);
    }
}
