//! Streaming (O(grid)-memory) lifetime studies.
//!
//! [`crate::replication::LifetimeStudy`] keeps every observed lifetime,
//! so 10⁷ replications cost 80 MB before analysis starts.
//! [`StreamingLifetimeStudy`] folds each replication outcome into
//! fixed-size state the moment it is produced:
//!
//! * **depletion counts on a fixed time grid** — bucket `i` counts
//!   lifetimes in `(t_{i−1}, t_i]`, an overflow bucket catches
//!   depletions between the last grid point and the censoring horizon —
//!   giving the exact integer `#{lifetimes ≤ t_i}` at every grid point
//!   (identical to what the exact study reports there);
//! * **moment sketches** — count/mean/M2/min/max of the observed
//!   lifetimes via [`numerics::stats::StreamingMoments`].
//!
//! Memory is `O(grid)`, independent of the replication count. Two
//! studies over the same grid [`merge`](StreamingLifetimeStudy::merge)
//! in O(grid): counts add exactly (integers), moments merge by Chan's
//! rule. The parallel engine ([`crate::engine`]) exploits this by
//! folding fixed-size replication batches independently and merging the
//! partials **in batch order** — a reduction tree that depends only on
//! the batch schedule, never on which worker computed what, which is
//! what makes its results bit-identical across thread counts.

use numerics::stats::{wilson_ci_half_width, StreamingMoments, Z_95};
use std::fmt;
use std::sync::Arc;

/// Errors from streaming-study construction and folding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamingError {
    /// The time grid was empty, non-finite or not strictly increasing,
    /// or the horizon did not cover it.
    InvalidGrid(String),
    /// A folded lifetime was NaN or negative.
    InvalidLifetime(String),
    /// Two studies over different grids were merged.
    GridMismatch,
}

impl fmt::Display for StreamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamingError::InvalidGrid(why) => write!(f, "invalid time grid: {why}"),
            StreamingError::InvalidLifetime(why) => write!(f, "invalid lifetime: {why}"),
            StreamingError::GridMismatch => {
                write!(f, "streaming studies over different grids cannot merge")
            }
        }
    }
}

impl std::error::Error for StreamingError {}

/// A lifetime study folded incrementally on a fixed time grid; see the
/// module docs. Cheap to clone structurally: the grid is shared behind
/// an [`Arc`], only the O(grid) counters are copied.
///
/// # Examples
///
/// ```
/// use sim::streaming::StreamingLifetimeStudy;
///
/// let mut s = StreamingLifetimeStudy::new(vec![10.0, 20.0, 30.0], 50.0).unwrap();
/// s.fold(Some(12.0)).unwrap();
/// s.fold(Some(45.0)).unwrap(); // past the grid, before the horizon
/// s.fold(None).unwrap();       // censored
/// assert_eq!(s.total_runs(), 3);
/// assert_eq!(s.depleted_runs(), 2);
/// assert_eq!(s.depleted_at(1), 1);             // one lifetime ≤ 20
/// assert_eq!(s.empty_probability(1), 1.0 / 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingLifetimeStudy {
    /// Strictly increasing query times (shared, never mutated).
    grid: Arc<[f64]>,
    /// Censoring horizon (`≥ grid.last()`).
    horizon: f64,
    /// `buckets[i]`, `i < grid.len()`: lifetimes in `(grid[i−1], grid[i]]`
    /// (with `grid[−1] = −∞`); `buckets[grid.len()]`: lifetimes in
    /// `(grid.last(), horizon]`.
    buckets: Vec<u64>,
    /// All replications, censored included.
    total: u64,
    /// Moment sketch over the observed (depleted) lifetimes.
    moments: StreamingMoments,
}

impl StreamingLifetimeStudy {
    /// An empty study over `grid` with censoring `horizon`.
    ///
    /// # Errors
    ///
    /// [`StreamingError::InvalidGrid`] when the grid is empty, contains
    /// non-finite or negative values, is not strictly increasing, or
    /// extends past the horizon.
    pub fn new(grid: Vec<f64>, horizon: f64) -> Result<Self, StreamingError> {
        if grid.is_empty() {
            return Err(StreamingError::InvalidGrid("grid is empty".into()));
        }
        if grid.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err(StreamingError::InvalidGrid(
                "grid times must be finite and non-negative".into(),
            ));
        }
        if grid.windows(2).any(|w| !(w[1] > w[0])) {
            return Err(StreamingError::InvalidGrid(
                "grid must be strictly increasing".into(),
            ));
        }
        let last = *grid.last().expect("non-empty");
        if !horizon.is_finite() || horizon < last {
            return Err(StreamingError::InvalidGrid(format!(
                "horizon {horizon} must be finite and cover the last grid time {last}"
            )));
        }
        let buckets = vec![0; grid.len() + 1];
        Ok(StreamingLifetimeStudy {
            grid: grid.into(),
            horizon,
            buckets,
            total: 0,
            moments: StreamingMoments::new(),
        })
    }

    /// An empty study sharing this study's grid and horizon (the
    /// per-batch partial the parallel engine folds into).
    pub fn fresh_partial(&self) -> StreamingLifetimeStudy {
        StreamingLifetimeStudy::from_shared_grid(self.shared_grid(), self.horizon)
    }

    /// The shared grid storage (cheap to hand to worker threads; the
    /// values behind the [`Arc`] are immutable).
    pub(crate) fn shared_grid(&self) -> Arc<[f64]> {
        Arc::clone(&self.grid)
    }

    /// An empty study over an already-validated shared grid — what
    /// worker threads build their batch partials from without touching
    /// (and racing on) the caller's merged study.
    pub(crate) fn from_shared_grid(grid: Arc<[f64]>, horizon: f64) -> StreamingLifetimeStudy {
        let buckets = vec![0; grid.len() + 1];
        StreamingLifetimeStudy {
            grid,
            horizon,
            buckets,
            total: 0,
            moments: StreamingMoments::new(),
        }
    }

    /// Folds one replication outcome in: an observed lifetime
    /// (`Some(t)`) or censoring at the horizon (`None`). O(log grid).
    ///
    /// # Errors
    ///
    /// [`StreamingError::InvalidLifetime`] on NaN or negative lifetimes
    /// (a lifetime beyond the horizon is clamped into the overflow
    /// bucket only in release builds; debug builds assert, since the
    /// experiment's own censoring should have produced `None`).
    pub fn fold(&mut self, outcome: Option<f64>) -> Result<(), StreamingError> {
        self.total += 1;
        let Some(lifetime) = outcome else {
            return Ok(());
        };
        if lifetime.is_nan() || lifetime < 0.0 {
            return Err(StreamingError::InvalidLifetime(format!(
                "observed lifetime {lifetime}"
            )));
        }
        debug_assert!(
            lifetime <= self.horizon * (1.0 + 1e-12),
            "lifetime {lifetime} beyond the censoring horizon {} — the experiment \
             should have censored it",
            self.horizon
        );
        // First grid index with grid[i] ≥ lifetime ⇒ bucket i; beyond
        // the grid ⇒ overflow bucket grid.len().
        let bucket = self.grid.partition_point(|&g| g < lifetime);
        self.buckets[bucket] += 1;
        self.moments.push(lifetime);
        Ok(())
    }

    /// Merges another study over the **same** grid in (O(grid)). Counts
    /// add exactly; moments merge deterministically (Chan), so a fixed
    /// merge order reproduces fixed bits — see the module docs.
    ///
    /// # Errors
    ///
    /// [`StreamingError::GridMismatch`] when the grids or horizons
    /// differ.
    pub fn merge(&mut self, other: &StreamingLifetimeStudy) -> Result<(), StreamingError> {
        let same_grid = Arc::ptr_eq(&self.grid, &other.grid) || self.grid == other.grid;
        if !same_grid || self.horizon != other.horizon {
            return Err(StreamingError::GridMismatch);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.total += other.total;
        self.moments.merge(&other.moments);
        Ok(())
    }

    /// The query grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// The censoring horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Number of replications folded in (censored included).
    pub fn total_runs(&self) -> u64 {
        self.total
    }

    /// Number of replications that saw the battery empty (before the
    /// horizon).
    pub fn depleted_runs(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The exact number of runs depleted by grid time `grid()[i]` — the
    /// binomial success count every estimate at that point derives from.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of grid range.
    pub fn depleted_at(&self, i: usize) -> u64 {
        assert!(i < self.grid.len(), "grid index {i} out of range");
        self.buckets[..=i].iter().sum()
    }

    /// The cumulative depletion counts at every grid point (one prefix
    /// pass; use this instead of repeated [`depleted_at`] calls when
    /// scanning the whole curve).
    ///
    /// [`depleted_at`]: StreamingLifetimeStudy::depleted_at
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.grid
            .iter()
            .enumerate()
            .map(|(i, _)| {
                acc += self.buckets[i];
                acc
            })
            .collect()
    }

    /// The estimate `P̂r[battery empty at grid()[i]]` (0 when nothing has
    /// been folded yet).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of grid range.
    pub fn empty_probability(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.depleted_at(i) as f64 / self.total as f64
    }

    /// 95 % Wilson-score confidence half-width at grid point `i`, built
    /// from the exact depletion count.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of grid range.
    pub fn confidence_half_width(&self, i: usize) -> f64 {
        wilson_ci_half_width(self.depleted_at(i), self.total, Z_95)
    }

    /// The whole curve as `(t, probability)` pairs.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.total as f64;
        self.cumulative_counts()
            .into_iter()
            .zip(self.grid.iter())
            .map(|(c, &t)| (t, if self.total == 0 { 0.0 } else { c as f64 / n }))
            .collect()
    }

    /// The largest 95 % Wilson half-width over the grid — the adaptive
    /// stopping rule's error measure (0 before any replication).
    pub fn max_half_width(&self) -> f64 {
        self.cumulative_counts()
            .into_iter()
            .map(|c| wilson_ci_half_width(c, self.total, Z_95))
            .fold(0.0, f64::max)
    }

    /// Mean observed lifetime (conditional on depletion before the
    /// horizon); `None` when no run depleted.
    pub fn mean_observed_lifetime(&self) -> Option<f64> {
        self.moments.mean()
    }

    /// Unbiased variance of the observed lifetimes; `None` when no run
    /// depleted.
    pub fn variance_observed_lifetime(&self) -> Option<f64> {
        self.moments.variance()
    }

    /// Smallest / largest observed lifetime; `None` when no run
    /// depleted.
    pub fn observed_range(&self) -> Option<(f64, f64)> {
        Some((self.moments.min()?, self.moments.max()?))
    }

    /// The `q`-quantile of the lifetime at **grid resolution**: the
    /// smallest grid time `t_i` with `P̂r[empty at t_i] ≥ q` (an upper
    /// bound within one grid cell of the order-statistics quantile).
    /// `None` when the curve never reaches `q` on the grid — including
    /// every `q > 0` of an all-censored study, and quantiles crossing
    /// between the last grid point and the horizon.
    pub fn lifetime_quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) || self.total == 0 {
            return None;
        }
        let n = self.total as f64;
        self.cumulative_counts()
            .into_iter()
            .zip(self.grid.iter())
            .find(|&(c, _)| c as f64 / n >= q)
            .map(|(_, &t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<f64> {
        vec![10.0, 20.0, 30.0, 40.0]
    }

    #[test]
    fn validates_grid_and_horizon() {
        assert!(StreamingLifetimeStudy::new(vec![], 10.0).is_err());
        assert!(StreamingLifetimeStudy::new(vec![1.0, 1.0], 10.0).is_err());
        assert!(StreamingLifetimeStudy::new(vec![2.0, 1.0], 10.0).is_err());
        assert!(StreamingLifetimeStudy::new(vec![-1.0, 1.0], 10.0).is_err());
        assert!(StreamingLifetimeStudy::new(vec![1.0, f64::NAN], 10.0).is_err());
        // Horizon must cover the grid.
        assert!(StreamingLifetimeStudy::new(vec![1.0, 5.0], 4.0).is_err());
        assert!(StreamingLifetimeStudy::new(vec![1.0, 5.0], f64::INFINITY).is_err());
        assert!(StreamingLifetimeStudy::new(vec![1.0, 5.0], 5.0).is_ok());
    }

    #[test]
    fn counts_match_the_exact_study_at_grid_points() {
        use crate::replication::LifetimeStudy;
        let outcomes = [
            Some(5.0),
            Some(10.0), // exactly on a grid point: counts at that point
            Some(15.0),
            None,
            Some(35.0),
            Some(45.0), // between last grid point and horizon
            None,
        ];
        let mut s = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        for o in outcomes {
            s.fold(o).unwrap();
        }
        let exact = LifetimeStudy::new(&outcomes, 50.0).unwrap();
        assert_eq!(s.total_runs(), 7);
        assert_eq!(s.depleted_runs(), 5);
        for (i, &t) in grid().iter().enumerate() {
            assert_eq!(s.depleted_at(i) as usize, exact.depleted_at(t), "t = {t}");
            assert_eq!(s.empty_probability(i), exact.empty_probability(t));
            assert_eq!(s.confidence_half_width(i), exact.confidence_half_width(t));
        }
        assert_eq!(
            s.cumulative_counts(),
            vec![2, 3, 3, 4],
            "prefix sums over buckets"
        );
        assert_eq!(s.curve()[1], (20.0, 3.0 / 7.0));
        // Moments agree with the exact study's observed sample.
        let m = s.mean_observed_lifetime().unwrap();
        assert!((m - exact.mean_observed_lifetime().unwrap()).abs() < 1e-12);
        assert_eq!(s.observed_range(), Some((5.0, 45.0)));
    }

    #[test]
    fn empty_and_all_censored_studies_are_zero_curves() {
        let mut s = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        assert_eq!(s.total_runs(), 0);
        assert_eq!(s.empty_probability(0), 0.0);
        assert_eq!(s.max_half_width(), 0.0);
        assert_eq!(s.lifetime_quantile(0.5), None);
        s.fold(None).unwrap();
        s.fold(None).unwrap();
        assert_eq!(s.total_runs(), 2);
        assert_eq!(s.depleted_runs(), 0);
        assert!(s.curve().iter().all(|&(_, p)| p == 0.0));
        assert!(s.max_half_width() > 0.0, "all-zero curve keeps Wilson CI");
        assert_eq!(s.mean_observed_lifetime(), None);
        assert_eq!(s.variance_observed_lifetime(), None);
        assert_eq!(s.observed_range(), None);
    }

    #[test]
    fn rejects_bad_lifetimes_and_mismatched_merges() {
        let mut s = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        assert!(s.fold(Some(f64::NAN)).is_err());
        assert!(s.fold(Some(-1.0)).is_err());
        let other = StreamingLifetimeStudy::new(vec![1.0, 2.0], 50.0).unwrap();
        assert!(matches!(s.merge(&other), Err(StreamingError::GridMismatch)));
        let horizon = StreamingLifetimeStudy::new(grid(), 60.0).unwrap();
        assert!(s.merge(&horizon).is_err());
        // Equal-valued grids merge even without shared storage.
        let same = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        assert!(s.merge(&same).is_ok());
        // Errors display something readable.
        assert!(StreamingError::GridMismatch.to_string().contains("grids"));
    }

    #[test]
    fn merge_equals_sequential_fold_on_counts() {
        let outcomes: Vec<Option<f64>> = (0..200)
            .map(|i| {
                if i % 5 == 0 {
                    None
                } else {
                    Some((i % 47) as f64)
                }
            })
            .collect();
        let mut whole = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        for o in &outcomes {
            whole.fold(*o).unwrap();
        }
        // Fold in two halves through fresh partials, then merge.
        let mut merged = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        for half in outcomes.chunks(100) {
            let mut part = merged.fresh_partial();
            for o in half {
                part.fold(*o).unwrap();
            }
            merged.merge(&part).unwrap();
        }
        assert_eq!(merged.total_runs(), whole.total_runs());
        assert_eq!(merged.cumulative_counts(), whole.cumulative_counts());
        assert_eq!(merged.depleted_runs(), whole.depleted_runs());
        // Integer state is exactly equal; moments agree to tolerance.
        let (a, b) = (
            merged.mean_observed_lifetime().unwrap(),
            whole.mean_observed_lifetime().unwrap(),
        );
        assert!((a - b).abs() < 1e-9);
        // And the same partition merged again is bit-identical.
        let mut again = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        for half in outcomes.chunks(100) {
            let mut part = again.fresh_partial();
            for o in half {
                part.fold(*o).unwrap();
            }
            again.merge(&part).unwrap();
        }
        assert_eq!(again, merged);
    }

    #[test]
    fn quantiles_at_grid_resolution() {
        let mut s = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        for lifetime in [5.0, 15.0, 25.0, 35.0] {
            s.fold(Some(lifetime)).unwrap();
        }
        s.fold(None).unwrap(); // 4 of 5 depleted
        assert_eq!(s.lifetime_quantile(0.2), Some(10.0));
        assert_eq!(s.lifetime_quantile(0.4), Some(20.0));
        assert_eq!(s.lifetime_quantile(0.8), Some(40.0));
        // Beyond the depleted fraction: unidentified.
        assert_eq!(s.lifetime_quantile(0.9), None);
        assert_eq!(s.lifetime_quantile(1.5), None);
    }

    #[test]
    fn memory_is_grid_bound() {
        // The accumulator's state never grows with the replication
        // count: buckets + moments only.
        let mut s = StreamingLifetimeStudy::new(grid(), 50.0).unwrap();
        let before = s.buckets.len();
        for i in 0..100_000u64 {
            s.fold(Some((i % 50) as f64)).unwrap();
        }
        assert_eq!(s.buckets.len(), before);
        assert_eq!(s.total_runs(), 100_000);
    }
}
