//! Discrete-event stochastic simulation substrate for `kibam-rs`.
//!
//! The paper validates its Markovian approximation against stochastic
//! simulation: the workload CTMC is sampled trajectory by trajectory and
//! the analytic KiBaM is evolved along each trajectory (1000 independent
//! runs per curve in Figs. 7, 8 and 10). This crate provides the
//! model-independent pieces:
//!
//! * [`rng`] — seedable random streams with exponential and categorical
//!   sampling (built on `rand`'s `StdRng` so replications are exactly
//!   reproducible);
//! * [`trajectory`] — CTMC path sampling: states, sojourn times, jump
//!   counting, time-bounded generation;
//! * [`replication`] — replication management: fixed-count experiments,
//!   empirical lifetime distributions and confidence intervals.
//!
//! # Examples
//!
//! Estimating a two-state chain's occupancy by simulation:
//!
//! ```
//! use markov::ctmc::CtmcBuilder;
//! use sim::rng::SimRng;
//! use sim::trajectory::sample_path;
//!
//! let mut b = CtmcBuilder::new(2);
//! b.rate(0, 1, 1.0).unwrap();
//! b.rate(1, 0, 1.0).unwrap();
//! let chain = b.build().unwrap();
//! let mut rng = SimRng::seed_from(42);
//! let path = sample_path(&chain, 0, 100.0, &mut rng).unwrap();
//! assert!(path.total_time() >= 100.0 - 1e-12);
//! ```

pub mod replication;
pub mod rng;
pub mod trajectory;
