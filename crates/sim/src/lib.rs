//! Discrete-event stochastic simulation substrate for `kibam-rs`.
//!
//! The paper validates its Markovian approximation against stochastic
//! simulation: the workload CTMC is sampled trajectory by trajectory and
//! the analytic KiBaM is evolved along each trajectory (1000 independent
//! runs per curve in Figs. 7, 8 and 10). This crate provides the
//! model-independent pieces:
//!
//! * [`rng`] — seedable random streams with exponential and categorical
//!   sampling, plus the counter-derived per-replication streams
//!   ([`rng::SimRng::stream`]) the parallel engine's determinism rests
//!   on;
//! * [`trajectory`] — CTMC path sampling: states, sojourn times, jump
//!   counting, time-bounded generation;
//! * [`replication`] — replication management: fixed-count experiments,
//!   exact empirical lifetime distributions and Wilson confidence
//!   intervals (O(runs) memory — the order-statistics reference);
//! * [`streaming`] — O(grid)-memory lifetime studies: fixed-grid
//!   depletion counts plus moment sketches, mergeable in batch order;
//! * [`engine`] — the parallel streaming Monte Carlo engine: a
//!   persistent worker pool executing replication batches, with an
//!   adaptive Wilson-half-width stopping rule, **bit-identical for any
//!   thread count**.
//!
//! # Examples
//!
//! Estimating a two-state chain's occupancy by simulation:
//!
//! ```
//! use markov::ctmc::CtmcBuilder;
//! use sim::rng::SimRng;
//! use sim::trajectory::sample_path;
//!
//! let mut b = CtmcBuilder::new(2);
//! b.rate(0, 1, 1.0).unwrap();
//! b.rate(1, 0, 1.0).unwrap();
//! let chain = b.build().unwrap();
//! let mut rng = SimRng::seed_from(42);
//! let path = sample_path(&chain, 0, 100.0, &mut rng).unwrap();
//! assert!(path.total_time() >= 100.0 - 1e-12);
//! ```
//!
//! Streaming a million exponential lifetimes through the parallel
//! engine in O(grid) memory:
//!
//! ```
//! use sim::engine::{McOptions, McPool, Replication};
//!
//! let pool = McPool::new(4);
//! let opts = McOptions { runs: 1_000_000, ..McOptions::default() };
//! let study = pool
//!     .run_study(vec![0.5, 1.0, 2.0], 4.0, 7, &opts, &|rng| {
//!         let t = rng.exponential(1.0);
//!         if t <= 4.0 { Replication::Depleted(t) } else { Replication::Censored }
//!     })
//!     .unwrap();
//! assert_eq!(study.total_runs(), 1_000_000);
//! assert!((study.empty_probability(1) - (1.0 - (-1.0f64).exp())).abs() < 2e-3);
//! ```

pub mod engine;
pub mod replication;
pub mod rng;
pub mod streaming;
pub mod trajectory;
