//! Seedable random streams for reproducible simulation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random stream with the distributions simulation needs.
///
/// Wraps `rand`'s `StdRng` so that every replication is exactly
/// reproducible from its seed, independent of platform.
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

/// SplitMix64's finaliser: a strong 64-bit bijective mixer used to derive
/// decorrelated stream seeds from `(master seed, stream index)` pairs.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The counter-derived replication stream `index` of the experiment
    /// seeded by `master_seed`.
    ///
    /// The stream seed is a pure function of `(master_seed, index)` —
    /// two rounds of SplitMix64's finaliser — so **any** worker can
    /// reproduce replication `index` without consuming randomness from a
    /// shared generator. This is what makes the parallel simulation
    /// engine bit-identical across thread counts: threads claim
    /// replication indices, not positions in one sequential stream.
    /// Consecutive indices land in decorrelated states (the mixer is a
    /// bijection with full avalanche), and distinct master seeds give
    /// disjoint families with overwhelming probability.
    pub fn stream(master_seed: u64, index: u64) -> SimRng {
        SimRng::seed_from(mix64(master_seed ^ mix64(index)))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// An exponential draw with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "exponential needs positive rate, got {rate}");
        // Inverse transform; 1-u keeps the argument strictly positive.
        -(1.0 - self.uniform()).ln() / rate
    }

    /// An Erlang-K draw: the sum of `k` exponentials with the given rate.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `rate <= 0` or `k == 0`.
    pub fn erlang(&mut self, k: u32, rate: f64) -> f64 {
        debug_assert!(k > 0, "Erlang needs k ≥ 1");
        (0..k).map(|_| self.exponential(rate)).sum()
    }

    /// Samples an index proportionally to the given non-negative weights.
    /// Returns `None` when every weight is zero.
    pub fn categorical(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut u = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return Some(i);
            }
        }
        // Floating-point slack: land on the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Derives an independent child stream (for per-replication seeding).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.random::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        let mut c = SimRng::seed_from(8);
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_moments() {
        let mut rng = SimRng::seed_from(2);
        let rate = 2.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.exponential(rate)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var - 0.25).abs() < 0.01, "var {var}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn erlang_mean_and_concentration() {
        let mut rng = SimRng::seed_from(3);
        // The paper's on/off model: Erlang-K with rate λ = 2fK keeps the
        // mean at 1/(2f) while concentrating towards deterministic.
        let f = 1.0;
        let n = 50_000;
        let mean_k = |k: u32, rng: &mut SimRng| {
            let rate = 2.0 * f * k as f64;
            (0..n).map(|_| rng.erlang(k, rate)).sum::<f64>() / n as f64
        };
        let m1 = mean_k(1, &mut rng);
        let m8 = mean_k(8, &mut rng);
        assert!((m1 - 0.5).abs() < 0.01, "K=1 mean {m1}");
        assert!((m8 - 0.5).abs() < 0.01, "K=8 mean {m8}");
        // Variance shrinks as 1/K.
        let rate8 = 16.0;
        let samples: Vec<f64> = (0..n).map(|_| rng.erlang(8, rate8)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var - 0.5 * 0.5 / 8.0).abs() < 0.005, "K=8 var {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SimRng::seed_from(4);
        let weights = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.categorical(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[3] as f64 / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    fn categorical_zero_weights() {
        let mut rng = SimRng::seed_from(5);
        assert_eq!(rng.categorical(&[0.0, 0.0]), None);
        assert_eq!(rng.categorical(&[]), None);
        assert_eq!(rng.categorical(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn counter_streams_are_pure_and_decorrelated() {
        // Same (seed, index) → same stream, bit for bit.
        let a: Vec<u64> = {
            let mut r = SimRng::stream(7, 3);
            (0..16).map(|_| r.inner.random::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::stream(7, 3);
            (0..16).map(|_| r.inner.random::<u64>()).collect()
        };
        assert_eq!(a, b);
        // Neighbouring indices and neighbouring seeds diverge.
        let mut c = SimRng::stream(7, 4);
        let mut d = SimRng::stream(8, 3);
        assert_ne!(a[0], c.inner.random::<u64>());
        assert_ne!(a[0], d.inner.random::<u64>());
        // Streams look independent enough for Monte Carlo: the mean of
        // first draws across many consecutive indices is ≈ 1/2.
        let n = 20_000u64;
        let sum: f64 = (0..n).map(|i| SimRng::stream(99, i).uniform()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);

        use super::mix64;
        // The mixer is a bijection finaliser: no short cycles at 0, and
        // single-bit input flips flip about half the output bits.
        assert_ne!(mix64(0), 0);
        let ones = (mix64(1) ^ mix64(2)).count_ones();
        assert!((20..=44).contains(&ones), "avalanche too weak: {ones}");
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = SimRng::seed_from(6);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a: Vec<f64> = (0..10).map(|_| c1.uniform()).collect();
        let b: Vec<f64> = (0..10).map(|_| c2.uniform()).collect();
        assert_ne!(a, b);
    }
}
