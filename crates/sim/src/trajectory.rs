//! CTMC path sampling.
//!
//! A sampled path is a sequence of `(state, sojourn)` pairs covering
//! `[0, horizon]`; the last sojourn is truncated at the horizon. Sampling
//! uses the standard competing-exponentials construction: in state `i`,
//! wait `Exp(q_i)`, then jump to `j` with probability `q_{ij}/q_i`.

use crate::rng::SimRng;
use markov::ctmc::Ctmc;
use markov::MarkovError;

/// One visit of a sampled CTMC path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Visit {
    /// The state visited.
    pub state: usize,
    /// Time spent there (the last visit is truncated at the horizon).
    pub sojourn: f64,
}

/// A sampled path over `[0, horizon]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    visits: Vec<Visit>,
}

impl Path {
    /// The sequence of visits.
    pub fn visits(&self) -> &[Visit] {
        &self.visits
    }

    /// Total covered time (equals the horizon unless the path was
    /// generated with an early-stop predicate).
    pub fn total_time(&self) -> f64 {
        self.visits.iter().map(|v| v.sojourn).sum()
    }

    /// Number of jumps (visits minus one).
    pub fn jumps(&self) -> usize {
        self.visits.len().saturating_sub(1)
    }

    /// Time spent in `state`.
    pub fn occupation_time(&self, state: usize) -> f64 {
        self.visits
            .iter()
            .filter(|v| v.state == state)
            .map(|v| v.sojourn)
            .sum()
    }

    /// The state occupied at time `t` (`None` beyond the covered span).
    pub fn state_at(&self, t: f64) -> Option<usize> {
        let mut acc = 0.0;
        for v in &self.visits {
            acc += v.sojourn;
            if t < acc {
                return Some(v.state);
            }
        }
        None
    }
}

/// Samples a path of `ctmc` from `initial` over `[0, horizon]`.
///
/// # Errors
///
/// [`MarkovError::StateOutOfRange`] for a bad initial state,
/// [`MarkovError::InvalidArgument`] for a non-positive horizon.
pub fn sample_path(
    ctmc: &Ctmc,
    initial: usize,
    horizon: f64,
    rng: &mut SimRng,
) -> Result<Path, MarkovError> {
    if initial >= ctmc.n_states() {
        return Err(MarkovError::StateOutOfRange {
            state: initial,
            n_states: ctmc.n_states(),
        });
    }
    if !(horizon > 0.0) || !horizon.is_finite() {
        return Err(MarkovError::InvalidArgument(format!(
            "horizon must be positive and finite, got {horizon}"
        )));
    }
    let mut visits = Vec::new();
    let mut state = initial;
    let mut remaining = horizon;
    loop {
        let q = ctmc.exit_rate(state);
        if q == 0.0 {
            // Absorbing: stay for the rest of the horizon.
            visits.push(Visit {
                state,
                sojourn: remaining,
            });
            break;
        }
        let sojourn = rng.exponential(q);
        if sojourn >= remaining {
            visits.push(Visit {
                state,
                sojourn: remaining,
            });
            break;
        }
        visits.push(Visit { state, sojourn });
        remaining -= sojourn;
        state = next_state(ctmc, state, rng)?;
    }
    Ok(Path { visits })
}

/// Samples the successor of `state` according to the embedded jump chain.
///
/// # Errors
///
/// [`MarkovError::InvalidArgument`] when `state` is absorbing (it has no
/// successor).
pub fn next_state(ctmc: &Ctmc, state: usize, rng: &mut SimRng) -> Result<usize, MarkovError> {
    let q = ctmc.exit_rate(state);
    if q == 0.0 {
        return Err(MarkovError::InvalidArgument(format!(
            "state {state} is absorbing; it has no successor"
        )));
    }
    let mut u = rng.uniform() * q;
    let mut last = None;
    for (j, rate) in ctmc.rates().row(state) {
        u -= rate;
        last = Some(j);
        if u < 0.0 {
            return Ok(j);
        }
    }
    Ok(last.expect("non-absorbing state has at least one transition"))
}

/// Samples an initial state from a distribution `alpha`.
///
/// # Errors
///
/// [`MarkovError::InvalidDistribution`] when `alpha` is not a valid
/// distribution over the chain's states.
pub fn sample_initial(ctmc: &Ctmc, alpha: &[f64], rng: &mut SimRng) -> Result<usize, MarkovError> {
    ctmc.check_distribution(alpha)?;
    rng.categorical(alpha)
        .ok_or_else(|| MarkovError::InvalidDistribution("all-zero distribution".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use markov::ctmc::CtmcBuilder;
    use markov::steady_state::stationary_gth;

    fn two_state(a: f64, b: f64) -> Ctmc {
        let mut builder = CtmcBuilder::new(2);
        builder.rate(0, 1, a).unwrap();
        builder.rate(1, 0, b).unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn path_covers_horizon() {
        let chain = two_state(1.0, 2.0);
        let mut rng = SimRng::seed_from(1);
        let path = sample_path(&chain, 0, 50.0, &mut rng).unwrap();
        assert!((path.total_time() - 50.0).abs() < 1e-9);
        assert_eq!(path.visits()[0].state, 0);
        assert!(path.jumps() > 0);
    }

    #[test]
    fn occupation_matches_stationary_long_run() {
        let chain = two_state(1.0, 3.0);
        let pi = stationary_gth(&chain).unwrap();
        let mut rng = SimRng::seed_from(2);
        let horizon = 200_000.0;
        let path = sample_path(&chain, 0, horizon, &mut rng).unwrap();
        let frac0 = path.occupation_time(0) / horizon;
        assert!((frac0 - pi[0]).abs() < 0.01, "{frac0} vs {}", pi[0]);
    }

    #[test]
    fn absorbing_state_ends_path() {
        let mut b = CtmcBuilder::new(2);
        b.rate(0, 1, 5.0).unwrap();
        let chain = b.build().unwrap();
        let mut rng = SimRng::seed_from(3);
        let path = sample_path(&chain, 0, 100.0, &mut rng).unwrap();
        assert_eq!(path.visits().last().unwrap().state, 1);
        assert_eq!(path.jumps(), 1);
        assert!((path.total_time() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn state_at_walks_visits() {
        let path = Path {
            visits: vec![
                Visit {
                    state: 0,
                    sojourn: 2.0,
                },
                Visit {
                    state: 1,
                    sojourn: 3.0,
                },
            ],
        };
        assert_eq!(path.state_at(1.0), Some(0));
        assert_eq!(path.state_at(2.5), Some(1));
        assert_eq!(path.state_at(6.0), None);
    }

    #[test]
    fn next_state_distribution() {
        let mut b = CtmcBuilder::new(3);
        b.rate(0, 1, 1.0).unwrap();
        b.rate(0, 2, 3.0).unwrap();
        let chain = b.build().unwrap();
        let mut rng = SimRng::seed_from(4);
        let n = 100_000;
        let mut count2 = 0;
        for _ in 0..n {
            if next_state(&chain, 0, &mut rng).unwrap() == 2 {
                count2 += 1;
            }
        }
        let frac = count2 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
        assert!(next_state(&chain, 1, &mut rng).is_err());
    }

    #[test]
    fn sample_initial_respects_alpha() {
        let chain = two_state(1.0, 1.0);
        let mut rng = SimRng::seed_from(5);
        let n = 50_000;
        let ones = (0..n)
            .filter(|_| sample_initial(&chain, &[0.3, 0.7], &mut rng).unwrap() == 1)
            .count();
        assert!((ones as f64 / n as f64 - 0.7).abs() < 0.01);
        assert!(sample_initial(&chain, &[0.5, 0.2], &mut rng).is_err());
    }

    #[test]
    fn input_validation() {
        let chain = two_state(1.0, 1.0);
        let mut rng = SimRng::seed_from(6);
        assert!(sample_path(&chain, 5, 1.0, &mut rng).is_err());
        assert!(sample_path(&chain, 0, 0.0, &mut rng).is_err());
        assert!(sample_path(&chain, 0, f64::INFINITY, &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let chain = two_state(1.3, 0.7);
        let p1 = sample_path(&chain, 0, 100.0, &mut SimRng::seed_from(9)).unwrap();
        let p2 = sample_path(&chain, 0, 100.0, &mut SimRng::seed_from(9)).unwrap();
        assert_eq!(p1, p2);
    }
}
