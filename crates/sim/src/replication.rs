//! Replication management and output analysis.
//!
//! The paper's simulation curves are empirical CDFs over 1000 independent
//! runs. [`run_replications`] drives any per-replication experiment with
//! independent counter-derived streams; [`LifetimeStudy`] turns (possibly
//! censored) lifetime samples into the curve `t ↦ P̂r[battery empty at t]`
//! with Wilson-score binomial confidence intervals.
//!
//! `LifetimeStudy` keeps every observed lifetime (O(runs) memory) and is
//! the exact-order-statistics reference; the streaming engine
//! ([`crate::streaming::StreamingLifetimeStudy`] driven by
//! [`crate::engine`]) is the O(grid) production path for 10⁶–10⁷
//! replications.

use crate::rng::SimRng;
use numerics::stats::{wilson_ci_half_width, EmpiricalCdf, StatsError, Z_95};

/// Runs `n` independent replications of `experiment`, each with its own
/// counter-derived random stream [`SimRng::stream`]`(master_seed, i)`,
/// collecting the results.
///
/// Because streams are derived from the replication *index* rather than
/// pulled sequentially from a master generator, replication `i` sees the
/// same randomness here as it does on any worker of the parallel engine
/// ([`crate::engine`]) — the sequential and parallel paths agree
/// replication by replication.
///
/// # Examples
///
/// ```
/// use sim::replication::run_replications;
///
/// let samples = run_replications(100, 7, |rng| rng.exponential(2.0));
/// assert_eq!(samples.len(), 100);
/// ```
pub fn run_replications<T>(
    n: usize,
    master_seed: u64,
    mut experiment: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    (0..n as u64)
        .map(|i| {
            let mut stream = SimRng::stream(master_seed, i);
            experiment(&mut stream)
        })
        .collect()
}

/// An empirical battery-lifetime study built from replication outcomes.
///
/// Each outcome is either an observed lifetime (`Some(t)`) or censored at
/// the simulation horizon (`None` — the battery outlived the run). A
/// study where **no** run depleted is valid: its curve is identically
/// zero with [`LifetimeStudy::depleted_runs`]` == 0`, every quantile
/// unidentified and [`LifetimeStudy::mean_observed_lifetime`]` == None`
/// (one long-lived scenario must not abort a whole sweep).
#[derive(Debug, Clone)]
pub struct LifetimeStudy {
    /// `None` when every run was censored (empty observed sample).
    observed: Option<EmpiricalCdf>,
    total_runs: usize,
    horizon: f64,
}

impl LifetimeStudy {
    /// Builds a study from outcomes with the given censoring `horizon`.
    ///
    /// # Errors
    ///
    /// [`StatsError::Empty`] when there are no outcomes at all;
    /// [`StatsError::NotANumber`] on NaN lifetimes. An all-censored
    /// study is **not** an error — it is the valid all-zero curve.
    pub fn new(outcomes: &[Option<f64>], horizon: f64) -> Result<Self, StatsError> {
        if outcomes.is_empty() {
            return Err(StatsError::Empty);
        }
        let depleted: Vec<f64> = outcomes.iter().filter_map(|o| *o).collect();
        let observed = if depleted.is_empty() {
            None
        } else {
            Some(EmpiricalCdf::new(depleted)?)
        };
        Ok(LifetimeStudy {
            observed,
            total_runs: outcomes.len(),
            horizon,
        })
    }

    /// Number of replications (including censored ones).
    pub fn total_runs(&self) -> usize {
        self.total_runs
    }

    /// Number of runs that saw the battery empty.
    pub fn depleted_runs(&self) -> usize {
        self.observed.as_ref().map_or(0, EmpiricalCdf::len)
    }

    /// The exact number of runs depleted by time `t` — the binomial
    /// success count behind [`LifetimeStudy::empty_probability`], and
    /// the integer the confidence interval is built from (reconstructing
    /// it as `(p̂·n).round()` is lossy near ties).
    pub fn depleted_at(&self, t: f64) -> usize {
        self.observed
            .as_ref()
            .map_or(0, |o| o.count_le(self.clamp_to_horizon(t)))
    }

    /// Queries past the censoring horizon answer *at* the horizon: the
    /// empirical CDF carries no information beyond it (the true curve
    /// keeps rising there, the estimate would silently flatline), so the
    /// estimate is clamped and a debug assertion flags the misuse.
    fn clamp_to_horizon(&self, t: f64) -> f64 {
        debug_assert!(
            t <= self.horizon,
            "empirical lifetime curve queried at t = {t} past the censoring \
             horizon {}; the estimate is only valid up to the horizon",
            self.horizon
        );
        t.min(self.horizon)
    }

    /// The estimate `P̂r[battery empty at t]`.
    ///
    /// Valid for `t ≤ horizon`; queries beyond the horizon are clamped
    /// to it (and flagged by a debug assertion) — the censored estimate
    /// carries no information past the horizon, so extrapolating it
    /// would silently understate the true curve.
    pub fn empty_probability(&self, t: f64) -> f64 {
        // Censored runs contribute zero to the numerator.
        self.depleted_at(t) as f64 / self.total_runs as f64
    }

    /// 95 % confidence half-width at `t` (binomial, Wilson score — stays
    /// positive at `p̂ ∈ {0, 1}` where the Wald interval collapses to
    /// zero width). Built from the exact depleted-at-`t` count.
    pub fn confidence_half_width(&self, t: f64) -> f64 {
        wilson_ci_half_width(self.depleted_at(t) as u64, self.total_runs as u64, Z_95)
    }

    /// Mean observed lifetime, conditional on depletion before the
    /// horizon; `None` when no run depleted.
    pub fn mean_observed_lifetime(&self) -> Option<f64> {
        self.observed.as_ref().map(EmpiricalCdf::mean)
    }

    /// The `q`-quantile of the lifetime, when identified (i.e. when at
    /// least a `q` fraction of runs depleted); `None` otherwise — in
    /// particular, always `None` for an all-censored study.
    pub fn lifetime_quantile(&self, q: f64) -> Option<f64> {
        let observed = self.observed.as_ref()?;
        let depleted_fraction = observed.len() as f64 / self.total_runs as f64;
        if q > depleted_fraction {
            return None;
        }
        // Rescale q onto the observed sub-distribution.
        Some(observed.quantile(q / depleted_fraction))
    }

    /// The censoring horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Samples the curve on an equispaced grid of `points+1` times over
    /// `[0, horizon]`, as `(t, probability)` pairs.
    ///
    /// `curve(0)` degenerates to the single point
    /// `(0, empty_probability(0))` — there is no spacing to divide, so
    /// the grid collapses to the origin rather than dividing by zero.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if points == 0 {
            return vec![(0.0, self.empty_probability(0.0))];
        }
        (0..=points)
            .map(|i| {
                let t = self.horizon * i as f64 / points as f64;
                (t, self.empty_probability(t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replications_are_independent_and_reproducible() {
        let a = run_replications(50, 1, |rng| rng.uniform());
        let b = run_replications(50, 1, |rng| rng.uniform());
        assert_eq!(a, b);
        // Adjacent replications differ.
        assert_ne!(a[0], a[1]);
        let c = run_replications(50, 2, |rng| rng.uniform());
        assert_ne!(a, c);
    }

    #[test]
    fn replications_match_counter_streams() {
        // run_replications(i) must see exactly SimRng::stream(seed, i) —
        // the contract that makes the sequential and parallel engines
        // agree replication by replication.
        let xs = run_replications(20, 42, |rng| rng.uniform());
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(x, SimRng::stream(42, i as u64).uniform(), "replication {i}");
        }
    }

    #[test]
    fn study_probabilities() {
        let outcomes = vec![Some(10.0), Some(20.0), None, Some(30.0), None];
        let s = LifetimeStudy::new(&outcomes, 100.0).unwrap();
        assert_eq!(s.total_runs(), 5);
        assert_eq!(s.depleted_runs(), 3);
        assert_eq!(s.empty_probability(5.0), 0.0);
        assert_eq!(s.empty_probability(10.0), 0.2);
        assert_eq!(s.empty_probability(25.0), 0.4);
        assert_eq!(s.empty_probability(50.0), 0.6);
        assert_eq!(s.depleted_at(25.0), 2);
        assert_eq!(s.horizon(), 100.0);
        assert_eq!(s.mean_observed_lifetime(), Some(20.0));
    }

    #[test]
    fn study_quantiles_respect_censoring() {
        let outcomes = vec![Some(10.0), Some(20.0), None, Some(30.0), None];
        let s = LifetimeStudy::new(&outcomes, 100.0).unwrap();
        assert_eq!(s.lifetime_quantile(0.2), Some(10.0));
        assert_eq!(s.lifetime_quantile(0.6), Some(30.0));
        // 80 % of runs never depleted ⇒ the 0.8-quantile is unidentified.
        assert_eq!(s.lifetime_quantile(0.8), None);
    }

    #[test]
    fn all_censored_is_a_valid_zero_curve() {
        // Regression: this used to be StatsError::Empty, aborting whole
        // sweeps that contained one long-lived scenario.
        let s = LifetimeStudy::new(&[None, None], 10.0).unwrap();
        assert_eq!(s.total_runs(), 2);
        assert_eq!(s.depleted_runs(), 0);
        assert_eq!(s.empty_probability(5.0), 0.0);
        assert_eq!(s.depleted_at(10.0), 0);
        assert_eq!(s.mean_observed_lifetime(), None);
        assert_eq!(s.lifetime_quantile(0.5), None);
        assert!(s.curve(4).iter().all(|&(_, p)| p == 0.0));
        // The zero estimate still has real uncertainty: Wilson > 0.
        assert!(s.confidence_half_width(5.0) > 0.0);
        // No outcomes at all is still an error.
        assert!(matches!(
            LifetimeStudy::new(&[], 10.0),
            Err(StatsError::Empty)
        ));
    }

    #[test]
    fn confidence_uses_exact_counts_and_wilson() {
        // 3 of 7 runs depleted by t = 25: the exact count must be used,
        // not (p̂·n).round() (which rounds 2.9999999 ↔ 3 unstably).
        let outcomes = vec![
            Some(10.0),
            Some(20.0),
            Some(25.0),
            None,
            Some(30.0),
            None,
            None,
        ];
        let s = LifetimeStudy::new(&outcomes, 100.0).unwrap();
        assert_eq!(s.depleted_at(25.0), 3);
        let expect = wilson_ci_half_width(3, 7, Z_95);
        assert_eq!(s.confidence_half_width(25.0), expect);
        // Degenerate proportions keep a positive width (Wald gave 0).
        assert!(s.confidence_half_width(5.0) > 0.0, "p̂ = 0");
        let all = LifetimeStudy::new(&[Some(1.0), Some(2.0)], 10.0).unwrap();
        assert!(all.confidence_half_width(9.0) > 0.0, "p̂ = 1");
    }

    #[test]
    fn confidence_width_shrinks_with_runs() {
        let mk = |n: usize| {
            let outcomes: Vec<Option<f64>> = (0..n)
                .map(|i| if i % 2 == 0 { Some(1.0) } else { None })
                .collect();
            LifetimeStudy::new(&outcomes, 10.0).unwrap()
        };
        let small = mk(100).confidence_half_width(5.0);
        let large = mk(10_000).confidence_half_width(5.0);
        assert!(large < small / 5.0, "{small} vs {large}");
    }

    #[test]
    fn curve_is_monotone() {
        let outcomes: Vec<Option<f64>> = (1..=100).map(|i| Some(i as f64)).collect();
        let s = LifetimeStudy::new(&outcomes, 100.0).unwrap();
        let curve = s.curve(50);
        assert_eq!(curve.len(), 51);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn curve_zero_points_is_the_origin_sample() {
        let outcomes = vec![Some(0.0), Some(5.0), None];
        let s = LifetimeStudy::new(&outcomes, 10.0).unwrap();
        // A lifetime of exactly 0 counts at t = 0 (count ≤ 0 is 1 of 3).
        assert_eq!(s.curve(0), vec![(0.0, 1.0 / 3.0)]);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "past the censoring"))]
    fn queries_past_the_horizon_are_flagged() {
        let s = LifetimeStudy::new(&[Some(1.0), None], 10.0).unwrap();
        // In release builds the query clamps to the horizon value; in
        // debug builds it panics, catching the invalid extrapolation.
        let p = s.empty_probability(20.0);
        assert_eq!(p, s.empty_probability(10.0));
    }

    #[test]
    fn exponential_lifetimes_match_theory() {
        // Lifetimes ~ Exp(1): P[empty at t] = 1 − e^{-t}.
        let outcomes: Vec<Option<f64>> =
            run_replications(100_000, 11, |rng| Some(rng.exponential(1.0)));
        let s = LifetimeStudy::new(&outcomes, 10.0).unwrap();
        for &t in &[0.5, 1.0, 2.0] {
            let sim = s.empty_probability(t);
            let theory = 1.0 - (-t).exp();
            assert!((sim - theory).abs() < 0.01, "t = {t}: {sim} vs {theory}");
        }
    }
}
