//! Replication management and output analysis.
//!
//! The paper's simulation curves are empirical CDFs over 1000 independent
//! runs. [`run_replications`] drives any per-replication experiment with
//! independent seeded streams; [`LifetimeStudy`] turns (possibly censored)
//! lifetime samples into the curve `t ↦ P̂r[battery empty at t]` with
//! binomial confidence intervals.

use crate::rng::SimRng;
use numerics::stats::{binomial_ci_half_width, EmpiricalCdf, StatsError, Z_95};

/// Runs `n` independent replications of `experiment`, each with its own
/// random stream derived from `master_seed`, collecting the results.
///
/// # Examples
///
/// ```
/// use sim::replication::run_replications;
///
/// let samples = run_replications(100, 7, |rng| rng.exponential(2.0));
/// assert_eq!(samples.len(), 100);
/// ```
pub fn run_replications<T>(
    n: usize,
    master_seed: u64,
    mut experiment: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    let mut master = SimRng::seed_from(master_seed);
    (0..n)
        .map(|_| {
            let mut stream = master.fork();
            experiment(&mut stream)
        })
        .collect()
}

/// An empirical battery-lifetime study built from replication outcomes.
///
/// Each outcome is either an observed lifetime (`Some(t)`) or censored at
/// the simulation horizon (`None` — the battery outlived the run).
#[derive(Debug, Clone)]
pub struct LifetimeStudy {
    observed: EmpiricalCdf,
    total_runs: usize,
    horizon: f64,
}

impl LifetimeStudy {
    /// Builds a study from outcomes with the given censoring `horizon`.
    ///
    /// # Errors
    ///
    /// [`StatsError::Empty`] when no run depleted (the empirical CDF would
    /// be identically zero — callers should extend the horizon);
    /// [`StatsError::NotANumber`] on NaN lifetimes.
    pub fn new(outcomes: &[Option<f64>], horizon: f64) -> Result<Self, StatsError> {
        let depleted: Vec<f64> = outcomes.iter().filter_map(|o| *o).collect();
        let observed = EmpiricalCdf::new(depleted)?;
        Ok(LifetimeStudy {
            observed,
            total_runs: outcomes.len(),
            horizon,
        })
    }

    /// Number of replications (including censored ones).
    pub fn total_runs(&self) -> usize {
        self.total_runs
    }

    /// Number of runs that saw the battery empty.
    pub fn depleted_runs(&self) -> usize {
        self.observed.len()
    }

    /// The estimate `P̂r[battery empty at t]`, valid for `t ≤ horizon`.
    pub fn empty_probability(&self, t: f64) -> f64 {
        // Censored runs contribute zero to the numerator.
        self.observed.eval(t) * self.observed.len() as f64 / self.total_runs as f64
    }

    /// 95 % confidence half-width at `t` (binomial/Wald).
    pub fn confidence_half_width(&self, t: f64) -> f64 {
        let successes = (self.empty_probability(t) * self.total_runs as f64).round() as u64;
        binomial_ci_half_width(successes, self.total_runs as u64, Z_95)
    }

    /// Mean observed lifetime (conditional on depletion before the
    /// horizon).
    pub fn mean_observed_lifetime(&self) -> f64 {
        self.observed.mean()
    }

    /// The `q`-quantile of the lifetime, when identified (i.e. when at
    /// least a `q` fraction of runs depleted); `None` otherwise.
    pub fn lifetime_quantile(&self, q: f64) -> Option<f64> {
        let depleted_fraction = self.observed.len() as f64 / self.total_runs as f64;
        if q > depleted_fraction {
            return None;
        }
        // Rescale q onto the observed sub-distribution.
        Some(self.observed.quantile(q / depleted_fraction))
    }

    /// The censoring horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Samples the curve on an equispaced grid of `points+1` times over
    /// `[0, horizon]`, as `(t, probability)` pairs.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        (0..=points)
            .map(|i| {
                let t = self.horizon * i as f64 / points.max(1) as f64;
                (t, self.empty_probability(t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replications_are_independent_and_reproducible() {
        let a = run_replications(50, 1, |rng| rng.uniform());
        let b = run_replications(50, 1, |rng| rng.uniform());
        assert_eq!(a, b);
        // Adjacent replications differ.
        assert_ne!(a[0], a[1]);
        let c = run_replications(50, 2, |rng| rng.uniform());
        assert_ne!(a, c);
    }

    #[test]
    fn study_probabilities() {
        let outcomes = vec![Some(10.0), Some(20.0), None, Some(30.0), None];
        let s = LifetimeStudy::new(&outcomes, 100.0).unwrap();
        assert_eq!(s.total_runs(), 5);
        assert_eq!(s.depleted_runs(), 3);
        assert_eq!(s.empty_probability(5.0), 0.0);
        assert_eq!(s.empty_probability(10.0), 0.2);
        assert_eq!(s.empty_probability(25.0), 0.4);
        assert_eq!(s.empty_probability(50.0), 0.6);
        assert_eq!(s.horizon(), 100.0);
        assert_eq!(s.mean_observed_lifetime(), 20.0);
    }

    #[test]
    fn study_quantiles_respect_censoring() {
        let outcomes = vec![Some(10.0), Some(20.0), None, Some(30.0), None];
        let s = LifetimeStudy::new(&outcomes, 100.0).unwrap();
        assert_eq!(s.lifetime_quantile(0.2), Some(10.0));
        assert_eq!(s.lifetime_quantile(0.6), Some(30.0));
        // 80 % of runs never depleted ⇒ the 0.8-quantile is unidentified.
        assert_eq!(s.lifetime_quantile(0.8), None);
    }

    #[test]
    fn all_censored_is_an_error() {
        assert!(LifetimeStudy::new(&[None, None], 10.0).is_err());
    }

    #[test]
    fn confidence_width_shrinks_with_runs() {
        let mk = |n: usize| {
            let outcomes: Vec<Option<f64>> = (0..n)
                .map(|i| if i % 2 == 0 { Some(1.0) } else { None })
                .collect();
            LifetimeStudy::new(&outcomes, 10.0).unwrap()
        };
        let small = mk(100).confidence_half_width(5.0);
        let large = mk(10_000).confidence_half_width(5.0);
        assert!(large < small / 5.0, "{small} vs {large}");
    }

    #[test]
    fn curve_is_monotone() {
        let outcomes: Vec<Option<f64>> = (1..=100).map(|i| Some(i as f64)).collect();
        let s = LifetimeStudy::new(&outcomes, 100.0).unwrap();
        let curve = s.curve(50);
        assert_eq!(curve.len(), 51);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn exponential_lifetimes_match_theory() {
        // Lifetimes ~ Exp(1): P[empty at t] = 1 − e^{-t}.
        let outcomes: Vec<Option<f64>> =
            run_replications(100_000, 11, |rng| Some(rng.exponential(1.0)));
        let s = LifetimeStudy::new(&outcomes, 10.0).unwrap();
        for &t in &[0.5, 1.0, 2.0] {
            let sim = s.empty_probability(t);
            let theory = 1.0 - (-t).exp();
            assert!((sim - theory).abs() < 0.01, "t = {t}: {sim} vs {theory}");
        }
    }
}
