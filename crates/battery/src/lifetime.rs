//! The generic discharge driver: lifetimes and charge trajectories for any
//! battery model under any deterministic load.
//!
//! The driver walks the load profile segment by segment (every segment has
//! constant current), asks the model for the first depletion instant
//! within each segment, and otherwise advances the battery state exactly
//! to the segment boundary. This is how the paper computes Table 1 and the
//! Fig. 2 trajectory.

use crate::load::LoadProfile;
use crate::BatteryError;
use units::{Charge, Current, Time};

/// A battery model that can be discharged with piecewise-constant
/// currents.
///
/// Implementors provide state evolution over a constant-current interval;
/// the default [`DischargeModel::depletion_within`] locates depletion by
/// sampling + bisection through [`DischargeModel::advance`], which models
/// with closed forms (KiBaM) override with exact logic.
pub trait DischargeModel {
    /// The battery state (e.g. the two KiBaM well contents).
    type State: Clone + std::fmt::Debug;

    /// The fully charged state.
    fn initial_state(&self) -> Self::State;

    /// Evolves `state` for `dt` under constant `current`.
    ///
    /// # Errors
    ///
    /// Implementations reject negative currents/steps and report solver
    /// failures.
    fn advance(
        &self,
        state: &Self::State,
        current: Current,
        dt: Time,
    ) -> Result<Self::State, BatteryError>;

    /// Charge available for immediate draw in `state` (the battery is
    /// empty when this reaches zero).
    fn available_charge(&self, state: &Self::State) -> Charge;

    /// `true` when the battery is empty in `state`.
    fn is_empty(&self, state: &Self::State) -> bool {
        self.available_charge(state).value() <= 0.0
    }

    /// First instant within `[0, dt]` at which the battery becomes empty
    /// under constant `current`, or `None` if it survives.
    ///
    /// The default implementation samples the segment at 32 interior
    /// points to bracket the first sign change of the available charge and
    /// refines by bisection; exact models should override.
    ///
    /// # Errors
    ///
    /// Propagates [`DischargeModel::advance`] errors.
    fn depletion_within(
        &self,
        state: &Self::State,
        current: Current,
        dt: Time,
    ) -> Result<Option<Time>, BatteryError> {
        if self.is_empty(state) {
            return Ok(Some(Time::ZERO));
        }
        const SAMPLES: usize = 32;
        let step = dt / SAMPLES as f64;
        let mut lo = Time::ZERO;
        let mut hi = None;
        for s in 1..=SAMPLES {
            let t = step * s as f64;
            let probe = self.advance(state, current, t)?;
            if self.is_empty(&probe) {
                hi = Some(t);
                break;
            }
            lo = t;
        }
        let Some(mut hi) = hi else {
            return Ok(None);
        };
        // Bisection on the advance map.
        for _ in 0..80 {
            if (hi - lo).as_seconds() <= 1e-9 * dt.as_seconds().max(1.0) {
                break;
            }
            let mid = (lo + hi) / 2.0;
            let probe = self.advance(state, current, mid)?;
            if self.is_empty(&probe) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(Some(hi))
    }
}

/// Computes the battery lifetime under `load`, searching up to `horizon`.
///
/// Returns `Ok(None)` when the battery survives the whole horizon.
///
/// # Errors
///
/// [`BatteryError::InvalidLoad`] when the profile yields non-advancing
/// segments; propagates model errors.
///
/// # Examples
///
/// ```
/// use battery::kibam::Kibam;
/// use battery::load::ConstantLoad;
/// use battery::lifetime::lifetime;
/// use units::{Charge, Current, Rate, Time};
///
/// let b = Kibam::new(Charge::from_coulombs(7200.0), 1.0, Rate::per_second(0.0)).unwrap();
/// let load = ConstantLoad::new(Current::from_amps(0.96)).unwrap();
/// let life = lifetime(&b, &load, Time::from_hours(10.0)).unwrap().unwrap();
/// assert!((life.as_seconds() - 7500.0).abs() < 1e-6);
/// ```
pub fn lifetime<M: DischargeModel, L: LoadProfile + ?Sized>(
    model: &M,
    load: &L,
    horizon: Time,
) -> Result<Option<Time>, BatteryError> {
    let mut state = model.initial_state();
    let mut t = Time::ZERO;
    while t < horizon {
        let seg_end = load.segment_end(t).unwrap_or(horizon).min(horizon);
        if !(seg_end > t) {
            return Err(BatteryError::InvalidLoad(format!(
                "segment end {seg_end} does not advance past {t}"
            )));
        }
        let dt = seg_end - t;
        let current = load.current(t);
        if let Some(d) = model.depletion_within(&state, current, dt)? {
            return Ok(Some(t + d));
        }
        state = model.advance(&state, current, dt)?;
        t = seg_end;
    }
    Ok(None)
}

/// One sample of a discharge trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectorySample<S> {
    /// Sample time.
    pub time: Time,
    /// Battery state at that time.
    pub state: S,
    /// Current drawn at that time.
    pub current: Current,
}

/// Records the battery state on a regular grid while discharging under
/// `load` — the data behind the paper's Fig. 2. Recording stops early if
/// the battery empties (the depletion sample is included, clamped to the
/// empty state's time).
///
/// # Errors
///
/// [`BatteryError::InvalidParameter`] for a non-positive `sample_dt`;
/// propagates model/profile errors.
pub fn discharge_trajectory<M: DischargeModel, L: LoadProfile + ?Sized>(
    model: &M,
    load: &L,
    until: Time,
    sample_dt: Time,
) -> Result<Vec<TrajectorySample<M::State>>, BatteryError> {
    if !(sample_dt.value() > 0.0) {
        return Err(BatteryError::InvalidParameter(format!(
            "sample step must be positive, got {sample_dt}"
        )));
    }
    let mut samples = Vec::new();
    let mut state = model.initial_state();
    let mut t = Time::ZERO;
    samples.push(TrajectorySample {
        time: t,
        state: state.clone(),
        current: load.current(t),
    });
    while t < until {
        // March to the next sample instant, honouring segment boundaries.
        let target = (t + sample_dt).min(until);
        while t < target {
            let seg_end = load.segment_end(t).unwrap_or(target).min(target);
            if !(seg_end > t) {
                return Err(BatteryError::InvalidLoad(format!(
                    "segment end {seg_end} does not advance past {t}"
                )));
            }
            let current = load.current(t);
            let dt = seg_end - t;
            if let Some(d) = model.depletion_within(&state, current, dt)? {
                let final_state = model.advance(&state, current, d)?;
                samples.push(TrajectorySample {
                    time: t + d,
                    state: final_state,
                    current,
                });
                return Ok(samples);
            }
            state = model.advance(&state, current, dt)?;
            t = seg_end;
        }
        samples.push(TrajectorySample {
            time: t,
            state: state.clone(),
            current: load.current(t),
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kibam::Kibam;
    use crate::load::{ConstantLoad, PiecewiseLoad, SquareWaveLoad};
    use units::{Charge, Frequency, Rate};

    fn ideal_7200() -> Kibam {
        Kibam::new(Charge::from_coulombs(7200.0), 1.0, Rate::per_second(0.0)).unwrap()
    }

    fn paper_battery() -> Kibam {
        Kibam::new(
            Charge::from_coulombs(7200.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap()
    }

    #[test]
    fn constant_load_ideal_battery() {
        let load = ConstantLoad::new(Current::from_amps(0.96)).unwrap();
        let l = lifetime(&ideal_7200(), &load, Time::from_hours(10.0))
            .unwrap()
            .unwrap();
        assert!((l.as_seconds() - 7500.0).abs() < 1e-6);
    }

    #[test]
    fn square_wave_ideal_battery_doubles_lifetime() {
        // On/off at 50% duty: lifetime = 2·(C/I) − off-phase alignment.
        // With period 1 s and C/I = 7500 s on-time, depletion happens
        // during the 15000th second's on-phase: exactly t = 14999.5+0.5.
        let wave = SquareWaveLoad::symmetric(Frequency::from_hertz(1.0), Current::from_amps(0.96))
            .unwrap();
        let l = lifetime(&ideal_7200(), &wave, Time::from_hours(10.0))
            .unwrap()
            .unwrap();
        assert!(
            (l.as_seconds() - 15000.0).abs() < 0.5 + 1e-6,
            "lifetime {l}"
        );
    }

    #[test]
    fn survives_horizon_returns_none() {
        let load = ConstantLoad::new(Current::from_milliamps(1.0)).unwrap();
        let l = lifetime(&ideal_7200(), &load, Time::from_seconds(100.0)).unwrap();
        assert_eq!(l, None);
    }

    #[test]
    fn zero_load_never_depletes() {
        let load = ConstantLoad::new(Current::ZERO).unwrap();
        let l = lifetime(&paper_battery(), &load, Time::from_hours(10.0)).unwrap();
        assert_eq!(l, None);
    }

    #[test]
    fn piecewise_profile_depletes_in_later_segment() {
        // 3600 s gentle, then heavy drain.
        let p = PiecewiseLoad::new(
            vec![
                (Time::from_seconds(3600.0), Current::from_amps(0.1)),
                (Time::from_seconds(1e9), Current::from_amps(2.0)),
            ],
            false,
        )
        .unwrap();
        let l = lifetime(&ideal_7200(), &p, Time::from_hours(100.0))
            .unwrap()
            .unwrap();
        // 360 As drained in phase 1; remaining 6840 As at 2 A = 3420 s.
        assert!((l.as_seconds() - (3600.0 + 3420.0)).abs() < 1e-6);
    }

    #[test]
    fn kibam_square_wave_outlives_continuous_at_same_peak() {
        let b = paper_battery();
        let continuous = ConstantLoad::new(Current::from_amps(0.96)).unwrap();
        let wave =
            SquareWaveLoad::symmetric(Frequency::from_hertz(0.001), Current::from_amps(0.96))
                .unwrap();
        let horizon = Time::from_hours(20.0);
        let l_cont = lifetime(&b, &continuous, horizon).unwrap().unwrap();
        let l_wave = lifetime(&b, &wave, horizon).unwrap().unwrap();
        // The idle phases allow recovery: strictly more than 2× continuous
        // is impossible, but more than 2×·(available-only fraction) holds.
        assert!(
            l_wave > l_cont * 2.0 * 0.99,
            "wave {l_wave} vs continuous {l_cont}"
        );
        assert!(l_wave.as_seconds() > 9000.0);
    }

    #[test]
    fn trajectory_matches_figure2_shape() {
        // Fig. 2: f = 0.001 Hz square wave, I = 0.96 A. The available
        // charge falls during on-phases, recovers during off-phases, and
        // the battery dies between 10000 s and 13000 s.
        let b = paper_battery();
        let wave =
            SquareWaveLoad::symmetric(Frequency::from_hertz(0.001), Current::from_amps(0.96))
                .unwrap();
        let traj = discharge_trajectory(
            &b,
            &wave,
            Time::from_seconds(14000.0),
            Time::from_seconds(100.0),
        )
        .unwrap();
        let last = traj.last().unwrap();
        assert!(
            last.time.as_seconds() > 10_000.0 && last.time.as_seconds() < 13_000.0,
            "depletion at {}",
            last.time
        );
        assert!(last.state.available.value().abs() < 1e-5);
        // Recovery visible: y1 at 600 s (off phase) above y1 at 500 s.
        let y1_at = |s: f64| {
            traj.iter()
                .find(|p| (p.time.as_seconds() - s).abs() < 1e-9)
                .expect("sample present")
                .state
                .available
                .value()
        };
        assert!(y1_at(600.0) > y1_at(500.0));
        // Bound charge decreases overall.
        assert!(traj.last().unwrap().state.bound.value() < 2700.0);
    }

    #[test]
    fn trajectory_sample_step_validation() {
        let b = paper_battery();
        let load = ConstantLoad::new(Current::from_amps(0.1)).unwrap();
        assert!(discharge_trajectory(&b, &load, Time::from_seconds(10.0), Time::ZERO).is_err());
    }

    #[test]
    fn default_depletion_bisection_close_to_exact() {
        // Wrap the KiBaM in a newtype that keeps the default bisection
        // detector, and compare with the exact override.
        struct Wrapped(Kibam);
        impl DischargeModel for Wrapped {
            type State = crate::kibam::KibamState;
            fn initial_state(&self) -> Self::State {
                self.0.initial_state()
            }
            fn advance(
                &self,
                s: &Self::State,
                i: Current,
                dt: Time,
            ) -> Result<Self::State, BatteryError> {
                self.0.advance_state(s, i, dt)
            }
            fn available_charge(&self, s: &Self::State) -> Charge {
                s.available
            }
        }
        let exact = paper_battery();
        let wrapped = Wrapped(paper_battery());
        let i = Current::from_amps(0.96);
        let dt = Time::from_seconds(10_000.0);
        let d_exact = exact
            .depletion_within(&exact.initial_state(), i, dt)
            .unwrap()
            .unwrap();
        let d_bisect = wrapped
            .depletion_within(&wrapped.initial_state(), i, dt)
            .unwrap()
            .unwrap();
        assert!(
            (d_exact.as_seconds() - d_bisect.as_seconds()).abs() < 1e-3,
            "{d_exact} vs {d_bisect}"
        );
    }
}
