//! Peukert's law: `L = a / I^b`.
//!
//! The paper's §2 quotes Peukert's law as the simplest non-ideal lifetime
//! approximation — and points out its key weakness, which motivates the
//! whole paper: it depends only on the (average) current level, so *all
//! load profiles with the same average current get the same lifetime*,
//! contradicting experiment. We implement it as the analytical baseline,
//! including log-space fitting from measured (current, lifetime) pairs.

use crate::BatteryError;
use units::{Current, Time};

/// A fitted Peukert model with constants `a > 0` and `b > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeukertModel {
    a: f64,
    b: f64,
}

impl PeukertModel {
    /// Creates a model from explicit constants.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] unless `a > 0` and `b ≥ 1`
    /// (`b = 1` is the ideal battery; Peukert exponents are ≥ 1 in
    /// practice).
    pub fn new(a: f64, b: f64) -> Result<Self, BatteryError> {
        if !(a > 0.0) || !a.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "a must be positive, got {a}"
            )));
        }
        if !(b >= 1.0) || !b.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "b must be ≥ 1, got {b}"
            )));
        }
        Ok(PeukertModel { a, b })
    }

    /// The capacity-like constant `a` (seconds · ampere^b).
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The Peukert exponent `b`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Predicted lifetime under constant `current`.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] for non-positive current.
    pub fn lifetime(&self, current: Current) -> Result<Time, BatteryError> {
        if !(current.value() > 0.0) {
            return Err(BatteryError::InvalidParameter(format!(
                "need positive current, got {current}"
            )));
        }
        Ok(Time::from_seconds(self.a / current.as_amps().powf(self.b)))
    }

    /// Least-squares fit in log space from `(current, lifetime)` samples:
    /// `ln L = ln a − b ln I`.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] with fewer than two samples,
    /// non-positive values, or currents that are all identical (the slope
    /// is then unidentifiable).
    pub fn fit(samples: &[(Current, Time)]) -> Result<Self, BatteryError> {
        if samples.len() < 2 {
            return Err(BatteryError::InvalidParameter(format!(
                "need at least two samples, got {}",
                samples.len()
            )));
        }
        let mut xs = Vec::with_capacity(samples.len());
        let mut ys = Vec::with_capacity(samples.len());
        for &(i, l) in samples {
            if !(i.value() > 0.0) || !(l.value() > 0.0) {
                return Err(BatteryError::InvalidParameter(
                    "samples must have positive current and lifetime".into(),
                ));
            }
            xs.push(i.as_amps().ln());
            ys.push(l.as_seconds().ln());
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        if sxx < 1e-14 {
            return Err(BatteryError::InvalidParameter(
                "all sample currents identical; Peukert exponent unidentifiable".into(),
            ));
        }
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx; // = −b
        let intercept = my - slope * mx; // = ln a
        PeukertModel::new(intercept.exp(), (-slope).max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation() {
        assert!(PeukertModel::new(0.0, 1.2).is_err());
        assert!(PeukertModel::new(1.0, 0.9).is_err());
        assert!(PeukertModel::new(f64::NAN, 1.2).is_err());
        let m = PeukertModel::new(5400.0, 1.2).unwrap();
        assert!(m.lifetime(Current::ZERO).is_err());
        assert_eq!(m.a(), 5400.0);
        assert_eq!(m.b(), 1.2);
    }

    #[test]
    fn unit_current_lifetime_is_a() {
        let m = PeukertModel::new(5400.0, 1.3).unwrap();
        let l = m.lifetime(Current::from_amps(1.0)).unwrap();
        assert_eq!(l.as_seconds(), 5400.0);
    }

    #[test]
    fn higher_exponent_punishes_high_currents() {
        let gentle = PeukertModel::new(3600.0, 1.0).unwrap();
        let harsh = PeukertModel::new(3600.0, 1.4).unwrap();
        let i = Current::from_amps(2.0);
        assert!(harsh.lifetime(i).unwrap() < gentle.lifetime(i).unwrap());
        // Below 1 A the exponent helps instead.
        let i = Current::from_amps(0.5);
        assert!(harsh.lifetime(i).unwrap() > gentle.lifetime(i).unwrap());
    }

    #[test]
    fn fit_recovers_exact_model() {
        let truth = PeukertModel::new(4800.0, 1.25).unwrap();
        let samples: Vec<(Current, Time)> = [0.1, 0.3, 0.96, 2.0]
            .iter()
            .map(|&i| {
                let c = Current::from_amps(i);
                (c, truth.lifetime(c).unwrap())
            })
            .collect();
        let fitted = PeukertModel::fit(&samples).unwrap();
        assert!((fitted.a() - 4800.0).abs() < 1e-6);
        assert!((fitted.b() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn fit_validation() {
        let c = Current::from_amps(1.0);
        let t = Time::from_seconds(100.0);
        assert!(PeukertModel::fit(&[(c, t)]).is_err());
        assert!(PeukertModel::fit(&[(c, t), (c, t)]).is_err());
        assert!(PeukertModel::fit(&[(Current::ZERO, t), (c, t)]).is_err());
    }

    #[test]
    fn peukert_is_profile_blind() {
        // The paper's criticism: two profiles with the same average current
        // get identical Peukert lifetimes. (By construction: the model only
        // sees the average.)
        let m = PeukertModel::new(5400.0, 1.2).unwrap();
        let avg = Current::from_amps(0.48);
        assert_eq!(m.lifetime(avg).unwrap(), m.lifetime(avg).unwrap());
    }

    proptest! {
        #[test]
        fn lifetime_monotone_decreasing_in_current(
            a in 100.0f64..10_000.0,
            b in 1.0f64..2.0,
            i in 0.01f64..5.0,
            factor in 1.01f64..4.0,
        ) {
            let m = PeukertModel::new(a, b).unwrap();
            let l1 = m.lifetime(Current::from_amps(i)).unwrap();
            let l2 = m.lifetime(Current::from_amps(i * factor)).unwrap();
            prop_assert!(l2 < l1);
        }

        #[test]
        fn fit_two_points_interpolates(i1 in 0.05f64..0.5, i2 in 0.6f64..5.0,
                                       l1 in 1_000.0f64..100_000.0, ratio in 0.05f64..0.95) {
            // Two samples with decreasing lifetime fit exactly.
            let samples = [
                (Current::from_amps(i1), Time::from_seconds(l1)),
                (Current::from_amps(i2), Time::from_seconds(l1 * ratio)),
            ];
            let m = PeukertModel::fit(&samples).unwrap();
            let back1 = m.lifetime(samples[0].0).unwrap();
            let back2 = m.lifetime(samples[1].0).unwrap();
            // b is clamped at 1, so only check when the implied slope ≥ 1.
            if m.b() > 1.0 {
                prop_assert!((back1.as_seconds() - l1).abs() < 1e-6 * l1);
                prop_assert!((back2.as_seconds() - l1 * ratio).abs() < 1e-6 * l1);
            }
        }
    }
}
