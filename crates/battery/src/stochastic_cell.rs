//! The stochastic discrete-charge battery model of Chiasserini & Rao
//! (paper ref. \[6\], "Pulsed battery discharge in communication devices").
//!
//! This is the model family the paper's §3 cites as the stochastic
//! precursor of the KiBaM approach: battery charge is discretised into
//! `N` charge units, each discharge demand consumes units, and during
//! idle slots the battery *recovers* one unit probabilistically, with a
//! recovery probability that decays exponentially in the charge already
//! drawn:
//!
//! ```text
//! p_recover(n) = exp(−g·(N − n))        n = units remaining
//! ```
//!
//! so a nearly full battery recovers easily and a nearly empty one barely
//! at all. Besides its historical role, the model provides an independent
//! qualitative check on the KiBaM: *pulsed* discharge outlives constant
//! discharge of the same average demand.

use crate::BatteryError;

/// Parameters of the Chiasserini–Rao discrete battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StochasticCellModel {
    /// Total number of charge units `N` (nominal capacity).
    pub total_units: u64,
    /// Units that must remain for the battery to be usable (usually 0).
    pub cutoff_units: u64,
    /// Recovery-decay constant `g ≥ 0`: larger `g` = weaker recovery.
    pub recovery_decay: f64,
}

impl StochasticCellModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] unless `total_units > cutoff`
    /// and `recovery_decay ≥ 0` and finite.
    pub fn new(
        total_units: u64,
        cutoff_units: u64,
        recovery_decay: f64,
    ) -> Result<Self, BatteryError> {
        if total_units == 0 || total_units <= cutoff_units {
            return Err(BatteryError::InvalidParameter(format!(
                "need total units > cutoff, got {total_units} ≤ {cutoff_units}"
            )));
        }
        if !(recovery_decay >= 0.0) || !recovery_decay.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "recovery decay must be ≥ 0, got {recovery_decay}"
            )));
        }
        Ok(StochasticCellModel {
            total_units,
            cutoff_units,
            recovery_decay,
        })
    }

    /// Recovery probability in a state with `remaining` units.
    pub fn recovery_probability(&self, remaining: u64) -> f64 {
        let drawn = self.total_units.saturating_sub(remaining);
        (-self.recovery_decay * drawn as f64).exp()
    }
}

/// One slot of demand: how many charge units the device wants this slot
/// (0 = idle slot, eligible for recovery).
pub type Demand = u64;

/// Simulates the slotted discharge process for a demand sequence,
/// returning the number of slots survived (the lifetime in slots), or
/// `None` if the battery outlives the sequence.
///
/// In each slot: if the demand is positive, that many units are drained
/// (depletion when the level would cross the cutoff); if the demand is
/// zero, one unit is recovered with probability `p_recover(n)` (never
/// beyond `N`). `uniform()` supplies i.i.d. `U(0,1)` draws so any RNG can
/// drive the model.
pub fn simulate_slots(
    model: &StochasticCellModel,
    demands: impl IntoIterator<Item = Demand>,
    mut uniform: impl FnMut() -> f64,
) -> Option<u64> {
    let mut remaining = model.total_units;
    for (slot, demand) in demands.into_iter().enumerate() {
        if demand > 0 {
            if remaining < model.cutoff_units + demand {
                return Some(slot as u64);
            }
            remaining -= demand;
        } else if remaining < model.total_units && uniform() < model.recovery_probability(remaining)
        {
            remaining += 1;
        }
    }
    None
}

/// Mean delivered charge (units actually consumed before depletion) over
/// `runs` simulations of a periodic pulsed demand: `on_units` drawn every
/// `period` slots. `period = 1` is continuous discharge.
///
/// # Errors
///
/// [`BatteryError::InvalidParameter`] for `period = 0` or zero `runs`.
pub fn mean_delivered_pulsed(
    model: &StochasticCellModel,
    on_units: u64,
    period: u64,
    max_slots: u64,
    runs: usize,
    mut uniform: impl FnMut() -> f64,
) -> Result<f64, BatteryError> {
    if period == 0 || runs == 0 {
        return Err(BatteryError::InvalidParameter(
            "period and runs must be positive".into(),
        ));
    }
    let mut total = 0.0;
    for _ in 0..runs {
        let demands = (0..max_slots).map(|s| if s % period == 0 { on_units } else { 0 });
        let survived = simulate_slots(model, demands, &mut uniform);
        let slots = survived.unwrap_or(max_slots);
        // Units consumed = on-slots seen × on_units.
        let on_slots = slots.div_ceil(period).min(slots);
        let consumed = on_slots * on_units;
        total += consumed as f64;
    }
    Ok(total / runs as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for reproducible tests.
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.max(1);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn validation() {
        assert!(StochasticCellModel::new(0, 0, 0.1).is_err());
        assert!(StochasticCellModel::new(10, 10, 0.1).is_err());
        assert!(StochasticCellModel::new(10, 0, -1.0).is_err());
        assert!(StochasticCellModel::new(10, 0, f64::NAN).is_err());
        let m = StochasticCellModel::new(100, 10, 0.05).unwrap();
        assert_eq!(m.total_units, 100);
    }

    #[test]
    fn recovery_probability_decays() {
        let m = StochasticCellModel::new(100, 0, 0.05).unwrap();
        assert_eq!(m.recovery_probability(100), 1.0);
        let p50 = m.recovery_probability(50);
        let p10 = m.recovery_probability(10);
        assert!((p50 - (-0.05f64 * 50.0).exp()).abs() < 1e-15);
        assert!(p10 < p50 && p50 < 1.0);
    }

    #[test]
    fn continuous_discharge_without_recovery_is_deterministic() {
        // g = ∞-like (huge): recovery never fires; N units at 1/slot last
        // exactly N slots.
        let m = StochasticCellModel::new(50, 0, 1e9).unwrap();
        let life = simulate_slots(&m, (0..1000).map(|_| 1u64), rng(1));
        assert_eq!(life, Some(50));
    }

    #[test]
    fn cutoff_limits_usable_charge() {
        let m = StochasticCellModel::new(50, 20, 1e9).unwrap();
        let life = simulate_slots(&m, (0..1000).map(|_| 1u64), rng(1));
        assert_eq!(life, Some(30));
    }

    #[test]
    fn battery_outlives_short_sequences() {
        let m = StochasticCellModel::new(50, 0, 0.1).unwrap();
        assert_eq!(simulate_slots(&m, (0..10).map(|_| 1u64), rng(2)), None);
    }

    #[test]
    fn full_battery_never_recovers_past_capacity() {
        let m = StochasticCellModel::new(5, 0, 0.0).unwrap();
        // All idle slots with p_recover = 1: level must stay at N; then a
        // burst of 5 drains exactly to empty at slot 105.
        let demands = (0..100)
            .map(|_| 0u64)
            .chain(std::iter::once(5))
            .chain((0..5).map(|_| 1));
        let life = simulate_slots(&m, demands, rng(3));
        assert_eq!(life, Some(101));
    }

    #[test]
    fn pulsed_discharge_beats_continuous() {
        // The Chiasserini–Rao headline result (and the paper's §2 story):
        // idle slots between pulses let the battery recover, so pulsed
        // discharge delivers more charge than back-to-back discharge.
        let m = StochasticCellModel::new(200, 0, 0.02).unwrap();
        let mut u = rng(42);
        let continuous = mean_delivered_pulsed(&m, 1, 1, 100_000, 200, &mut u).unwrap();
        let pulsed = mean_delivered_pulsed(&m, 1, 2, 100_000, 200, &mut u).unwrap();
        assert!(
            pulsed > continuous * 1.05,
            "pulsed {pulsed} vs continuous {continuous}"
        );
        // Continuous delivers exactly N (no idle slots at all).
        assert!((continuous - 200.0).abs() < 1e-9);
    }

    #[test]
    fn stronger_recovery_delivers_more() {
        let mut u = rng(7);
        let weak = StochasticCellModel::new(200, 0, 0.2).unwrap();
        let strong = StochasticCellModel::new(200, 0, 0.01).unwrap();
        let d_weak = mean_delivered_pulsed(&weak, 1, 3, 100_000, 100, &mut u).unwrap();
        let d_strong = mean_delivered_pulsed(&strong, 1, 3, 100_000, 100, &mut u).unwrap();
        assert!(d_strong > d_weak, "strong {d_strong} vs weak {d_weak}");
    }

    #[test]
    fn pulsed_parameter_validation() {
        let m = StochasticCellModel::new(10, 0, 0.1).unwrap();
        assert!(mean_delivered_pulsed(&m, 1, 0, 10, 1, rng(1)).is_err());
        assert!(mean_delivered_pulsed(&m, 1, 1, 10, 0, rng(1)).is_err());
    }
}
