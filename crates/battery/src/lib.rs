//! Battery models for `kibam-rs`.
//!
//! Implements every battery model that appears in Cloth, Jongerden &
//! Haverkort (DSN'07), bottom of the stack first:
//!
//! * [`ideal`] — the ideal battery (`L = C/I`), the paper's §2 baseline;
//! * [`peukert`] — Peukert's law (`L = a/I^b`) with log-space fitting;
//! * [`kibam`] — the Kinetic Battery Model of Manwell & McGowan: the
//!   two-well ODE system (paper eq. (1)), its closed-form constant-current
//!   solution, exact depletion detection and parameter calibration;
//! * [`modified`] — the modified KiBaM of Rao et al. (paper ref. \[9\]):
//!   recovery additionally scaled by the bound-charge height, evaluated
//!   both deterministically (adaptive ODE integration) and as a
//!   stochastic quantised-recovery process;
//! * [`stochastic_cell`] — the discrete stochastic battery of
//!   Chiasserini & Rao (paper ref. \[6\]), the Markovian precursor whose
//!   pulsed-discharge result motivates the whole line of work;
//! * [`load`] — deterministic load profiles (constant, square-wave as in
//!   Table 1/Fig. 2, arbitrary piecewise-constant);
//! * [`lifetime`] — the generic discharge driver computing lifetimes and
//!   charge trajectories for any [`lifetime::DischargeModel`] under any
//!   [`load::LoadProfile`].
//!
//! # Examples
//!
//! Lifetime of a KiBaM battery under the paper's square-wave workload:
//!
//! ```
//! use battery::kibam::Kibam;
//! use battery::load::SquareWaveLoad;
//! use battery::lifetime::lifetime;
//! use units::{Charge, Current, Frequency, Rate, Time};
//!
//! let battery = Kibam::new(Charge::from_amp_seconds(7200.0), 0.625,
//!                          Rate::per_second(4.5e-5)).unwrap();
//! let wave = SquareWaveLoad::symmetric(Frequency::from_hertz(0.001),
//!                                      Current::from_amps(0.96)).unwrap();
//! let life = lifetime(&battery, &wave, Time::from_hours(10.0)).unwrap();
//! assert!(life.is_some());
//! ```

#![forbid(unsafe_code)]

pub mod ideal;
pub mod kibam;
pub mod lifetime;
pub mod load;
pub mod modified;
pub mod peukert;
pub mod stochastic_cell;

mod error;

pub use error::BatteryError;
