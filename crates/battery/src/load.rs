//! Deterministic load profiles.
//!
//! The paper's Table 1 and Fig. 2 drive the battery with piecewise-constant
//! deterministic loads: a continuous 0.96 A draw and square waves of
//! frequency `f` (equal on/off times, current drawn during "on"). The
//! [`LoadProfile`] trait exposes exactly what the discharge driver needs:
//! the current now, and where the current next changes.

use crate::BatteryError;
use units::{Current, Frequency, Time};

/// A deterministic, piecewise-constant load profile.
pub trait LoadProfile {
    /// Current drawn at time `t ≥ 0`.
    fn current(&self, t: Time) -> Current;

    /// The end of the constant-current segment containing `t`, or `None`
    /// when the current never changes again. Must be strictly greater
    /// than `t`.
    fn segment_end(&self, t: Time) -> Option<Time>;
}

/// A constant current forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLoad {
    current: Current,
}

impl ConstantLoad {
    /// Creates a constant load.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidLoad`] for negative or non-finite current.
    pub fn new(current: Current) -> Result<Self, BatteryError> {
        if !current.is_finite() || current.value() < 0.0 {
            return Err(BatteryError::InvalidLoad(format!("current {current}")));
        }
        Ok(ConstantLoad { current })
    }
}

impl LoadProfile for ConstantLoad {
    fn current(&self, _t: Time) -> Current {
        self.current
    }

    fn segment_end(&self, _t: Time) -> Option<Time> {
        None
    }
}

/// A square wave: `on_current` for the first `duty` fraction of each
/// period, `off_current` for the rest, starting in the "on" phase.
///
/// # Examples
///
/// The paper's Fig. 2 workload (`f = 0.001 Hz`, 0.96 A on, idle off):
///
/// ```
/// use battery::load::{LoadProfile, SquareWaveLoad};
/// use units::{Current, Frequency, Time};
///
/// let w = SquareWaveLoad::symmetric(Frequency::from_hertz(0.001),
///                                   Current::from_amps(0.96)).unwrap();
/// assert_eq!(w.current(Time::from_seconds(100.0)).as_amps(), 0.96);
/// assert_eq!(w.current(Time::from_seconds(600.0)).as_amps(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWaveLoad {
    period: Time,
    on_time: Time,
    on_current: Current,
    off_current: Current,
}

impl SquareWaveLoad {
    /// A square wave with arbitrary duty cycle and off-current.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidLoad`] unless `frequency > 0`,
    /// `0 < duty < 1`, and both currents are finite and non-negative.
    pub fn new(
        frequency: Frequency,
        duty: f64,
        on_current: Current,
        off_current: Current,
    ) -> Result<Self, BatteryError> {
        if !(frequency.value() > 0.0) || !frequency.is_finite() {
            return Err(BatteryError::InvalidLoad(format!("frequency {frequency}")));
        }
        if !(duty > 0.0 && duty < 1.0) {
            return Err(BatteryError::InvalidLoad(format!("duty cycle {duty}")));
        }
        for c in [on_current, off_current] {
            if !c.is_finite() || c.value() < 0.0 {
                return Err(BatteryError::InvalidLoad(format!("current {c}")));
            }
        }
        let period = frequency.period();
        Ok(SquareWaveLoad {
            period,
            on_time: period * duty,
            on_current,
            off_current,
        })
    }

    /// The paper's wave: 50 % duty, zero current while off.
    ///
    /// # Errors
    ///
    /// Same as [`SquareWaveLoad::new`].
    pub fn symmetric(frequency: Frequency, on_current: Current) -> Result<Self, BatteryError> {
        SquareWaveLoad::new(frequency, 0.5, on_current, Current::ZERO)
    }

    /// The wave period.
    pub fn period(&self) -> Time {
        self.period
    }
}

impl LoadProfile for SquareWaveLoad {
    fn current(&self, t: Time) -> Current {
        let phase = t.as_seconds().rem_euclid(self.period.as_seconds());
        if phase < self.on_time.as_seconds() {
            self.on_current
        } else {
            self.off_current
        }
    }

    fn segment_end(&self, t: Time) -> Option<Time> {
        let p = self.period.as_seconds();
        let cycle = (t.as_seconds() / p).floor();
        let phase = t.as_seconds() - cycle * p;
        let next = if phase < self.on_time.as_seconds() {
            cycle * p + self.on_time.as_seconds()
        } else {
            (cycle + 1.0) * p
        };
        Some(Time::from_seconds(next))
    }
}

/// An explicit piecewise-constant profile given by `(duration, current)`
/// segments, optionally repeating forever; after a non-repeating profile
/// ends, the last current is held.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLoad {
    segments: Vec<(Time, Current)>,
    total: Time,
    repeat: bool,
}

impl PiecewiseLoad {
    /// Creates a profile from segments.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidLoad`] for an empty list, non-positive
    /// durations, or invalid currents.
    pub fn new(segments: Vec<(Time, Current)>, repeat: bool) -> Result<Self, BatteryError> {
        if segments.is_empty() {
            return Err(BatteryError::InvalidLoad("no segments".into()));
        }
        for (d, c) in &segments {
            if !(d.value() > 0.0) || !d.is_finite() {
                return Err(BatteryError::InvalidLoad(format!("segment duration {d}")));
            }
            if !c.is_finite() || c.value() < 0.0 {
                return Err(BatteryError::InvalidLoad(format!("segment current {c}")));
            }
        }
        let total = segments.iter().map(|&(d, _)| d).sum();
        Ok(PiecewiseLoad {
            segments,
            total,
            repeat,
        })
    }

    /// Total duration of one pass through the segments.
    pub fn cycle_length(&self) -> Time {
        self.total
    }

    fn locate(&self, t: Time) -> (usize, Time) {
        // Returns (segment index, segment end in absolute time).
        let total = self.total.as_seconds();
        let (base, local) = if self.repeat {
            let cycles = (t.as_seconds() / total).floor();
            (cycles * total, t.as_seconds() - cycles * total)
        } else {
            (0.0, t.as_seconds())
        };
        let mut acc = 0.0;
        for (idx, (d, _)) in self.segments.iter().enumerate() {
            acc += d.as_seconds();
            if local < acc {
                return (idx, Time::from_seconds(base + acc));
            }
        }
        // Past the end of a non-repeating profile: hold the last segment.
        (self.segments.len() - 1, Time::from_seconds(f64::INFINITY))
    }
}

impl LoadProfile for PiecewiseLoad {
    fn current(&self, t: Time) -> Current {
        let (idx, _) = self.locate(t);
        self.segments[idx].1
    }

    fn segment_end(&self, t: Time) -> Option<Time> {
        let (_, end) = self.locate(t);
        if end.value().is_finite() {
            Some(end)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_load() {
        let l = ConstantLoad::new(Current::from_amps(0.96)).unwrap();
        assert_eq!(l.current(Time::from_seconds(123.0)).as_amps(), 0.96);
        assert_eq!(l.segment_end(Time::ZERO), None);
        assert!(ConstantLoad::new(Current::from_amps(-1.0)).is_err());
    }

    #[test]
    fn square_wave_phases() {
        let w = SquareWaveLoad::symmetric(Frequency::from_hertz(1.0), Current::from_amps(0.96))
            .unwrap();
        assert_eq!(w.period().as_seconds(), 1.0);
        assert_eq!(w.current(Time::from_seconds(0.0)).as_amps(), 0.96);
        assert_eq!(w.current(Time::from_seconds(0.49)).as_amps(), 0.96);
        assert_eq!(w.current(Time::from_seconds(0.5)).as_amps(), 0.0);
        assert_eq!(w.current(Time::from_seconds(0.99)).as_amps(), 0.0);
        assert_eq!(w.current(Time::from_seconds(1.0)).as_amps(), 0.96);
        assert_eq!(w.current(Time::from_seconds(7.25)).as_amps(), 0.96);
    }

    #[test]
    fn square_wave_segment_ends() {
        let w = SquareWaveLoad::symmetric(Frequency::from_hertz(0.001), Current::from_amps(0.96))
            .unwrap();
        assert_eq!(w.segment_end(Time::ZERO).unwrap().as_seconds(), 500.0);
        assert_eq!(
            w.segment_end(Time::from_seconds(499.0))
                .unwrap()
                .as_seconds(),
            500.0
        );
        assert_eq!(
            w.segment_end(Time::from_seconds(500.0))
                .unwrap()
                .as_seconds(),
            1000.0
        );
        assert_eq!(
            w.segment_end(Time::from_seconds(1700.0))
                .unwrap()
                .as_seconds(),
            2000.0
        );
        // Segment end is strictly in the future.
        for &t in &[0.0, 123.4, 500.0, 999.999] {
            let t = Time::from_seconds(t);
            assert!(w.segment_end(t).unwrap() > t);
        }
    }

    #[test]
    fn square_wave_validation() {
        let f = Frequency::from_hertz(1.0);
        let i = Current::from_amps(1.0);
        assert!(SquareWaveLoad::new(Frequency::from_hertz(0.0), 0.5, i, i).is_err());
        assert!(SquareWaveLoad::new(f, 0.0, i, i).is_err());
        assert!(SquareWaveLoad::new(f, 1.0, i, i).is_err());
        assert!(SquareWaveLoad::new(f, 0.5, Current::from_amps(-1.0), i).is_err());
        // Asymmetric duty works.
        let w = SquareWaveLoad::new(f, 0.25, i, Current::from_milliamps(10.0)).unwrap();
        assert_eq!(w.current(Time::from_seconds(0.2)).as_amps(), 1.0);
        assert_eq!(w.current(Time::from_seconds(0.3)).as_amps(), 0.01);
    }

    #[test]
    fn piecewise_repeating() {
        let p = PiecewiseLoad::new(
            vec![
                (Time::from_seconds(10.0), Current::from_amps(1.0)),
                (Time::from_seconds(5.0), Current::from_amps(0.2)),
            ],
            true,
        )
        .unwrap();
        assert_eq!(p.cycle_length().as_seconds(), 15.0);
        assert_eq!(p.current(Time::from_seconds(3.0)).as_amps(), 1.0);
        assert_eq!(p.current(Time::from_seconds(12.0)).as_amps(), 0.2);
        assert_eq!(p.current(Time::from_seconds(18.0)).as_amps(), 1.0);
        assert_eq!(
            p.segment_end(Time::from_seconds(3.0)).unwrap().as_seconds(),
            10.0
        );
        assert_eq!(
            p.segment_end(Time::from_seconds(12.0))
                .unwrap()
                .as_seconds(),
            15.0
        );
        assert_eq!(
            p.segment_end(Time::from_seconds(18.0))
                .unwrap()
                .as_seconds(),
            25.0
        );
    }

    #[test]
    fn piecewise_non_repeating_holds_last() {
        let p = PiecewiseLoad::new(
            vec![
                (Time::from_seconds(10.0), Current::from_amps(1.0)),
                (Time::from_seconds(5.0), Current::from_amps(0.2)),
            ],
            false,
        )
        .unwrap();
        assert_eq!(p.current(Time::from_seconds(20.0)).as_amps(), 0.2);
        assert_eq!(p.segment_end(Time::from_seconds(20.0)), None);
        assert_eq!(
            p.segment_end(Time::from_seconds(12.0))
                .unwrap()
                .as_seconds(),
            15.0
        );
    }

    #[test]
    fn piecewise_validation() {
        assert!(PiecewiseLoad::new(vec![], false).is_err());
        assert!(PiecewiseLoad::new(vec![(Time::ZERO, Current::from_amps(1.0))], false).is_err());
        assert!(PiecewiseLoad::new(
            vec![(Time::from_seconds(1.0), Current::from_amps(-0.1))],
            false
        )
        .is_err());
    }
}
