//! The modified Kinetic Battery Model of Rao et al. (paper ref. \[9\]).
//!
//! Rao et al. observed that the plain KiBaM cannot reproduce the
//! frequency-dependence of measured lifetimes (Table 1 of the paper) and
//! proposed a modification: *"the recovery rate has an additional
//! dependence on the height of the bound-charge well, making the recovery
//! slower when less charge is left in the battery"*. We realise this as
//!
//! ```text
//! dy₁/dt = −I + k·(h₂ − h₁)·(h₂/h₂ᶠᵘˡˡ)
//! dy₂/dt =     −k·(h₂ − h₁)·(h₂/h₂ᶠᵘˡˡ)
//! ```
//!
//! with `h₂ᶠᵘˡˡ = C` so that a full battery recovers exactly like the
//! unmodified KiBaM. The system has no closed form; it is integrated with
//! the adaptive RKF45 driver.
//!
//! Two evaluation modes mirror the two "Modified KiBaM" columns of
//! Table 1:
//!
//! * [`ModifiedKibam`] — deterministic numerical evaluation (the paper's
//!   own re-evaluation, which found *no* frequency dependence);
//! * [`StochasticModifiedKibam`] — a mean-preserving quantised-recovery
//!   simulation in the spirit of Rao et al.'s stochastic model: in each
//!   slot the full unmodified recovery quantum `k(h₂−h₁)·Δ` is transferred
//!   with probability `h₂/C` (the modification factor), so the *expected*
//!   drift equals the modified ODE while individual runs fluctuate.
//!
//! The exact construction of ref. \[9\] is under-specified in the DSN paper
//! (whose authors report an unresolved discrepancy with it); DESIGN.md
//! documents this substitution.

use crate::kibam::KibamState;
use crate::lifetime::DischargeModel;
use crate::load::LoadProfile;
use crate::BatteryError;
use numerics::ode::{rkf45, AdaptiveOptions, FnSystem};
use numerics::roots::brent;
use units::{Charge, Current, Rate, Time};

/// Deterministic modified KiBaM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModifiedKibam {
    capacity: Charge,
    c: f64,
    k: Rate,
}

impl ModifiedKibam {
    /// Creates a modified KiBaM battery.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] unless `capacity > 0`,
    /// `0 < c < 1` and `k ≥ 0` (`c = 1` makes the modification vacuous —
    /// use [`crate::kibam::Kibam`] instead).
    pub fn new(capacity: Charge, c: f64, k: Rate) -> Result<Self, BatteryError> {
        if !(capacity.value() > 0.0) || !capacity.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "capacity must be positive, got {capacity}"
            )));
        }
        if !(c > 0.0 && c < 1.0) {
            return Err(BatteryError::InvalidParameter(format!(
                "available-charge fraction must lie in (0, 1), got {c}"
            )));
        }
        if !(k.value() >= 0.0) || !k.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "well flow constant must be non-negative, got {k}"
            )));
        }
        Ok(ModifiedKibam { capacity, c, k })
    }

    /// Total capacity.
    pub fn capacity(&self) -> Charge {
        self.capacity
    }

    /// Available-charge fraction.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Well flow constant.
    pub fn k(&self) -> Rate {
        self.k
    }

    /// Fully charged, equalised state.
    pub fn full_state(&self) -> KibamState {
        KibamState {
            available: self.capacity * self.c,
            bound: self.capacity * (1.0 - self.c),
        }
    }

    /// The instantaneous bound→available flow rate in `state`.
    pub fn recovery_flow(&self, state: &KibamState) -> f64 {
        let h1 = state.available.value() / self.c;
        let h2 = state.bound.value() / (1.0 - self.c);
        let factor = (h2 / self.capacity.value()).max(0.0);
        self.k.value() * (h2 - h1) * factor
    }

    /// Lifetime under a constant load from full charge.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] for non-positive current;
    /// [`BatteryError::Numerical`] if integration fails.
    pub fn constant_load_lifetime(&self, current: Current) -> Result<Time, BatteryError> {
        if !(current.value() > 0.0) {
            return Err(BatteryError::InvalidParameter(format!(
                "need positive current, got {current}"
            )));
        }
        let horizon = self.capacity / current * 1.001 + Time::from_seconds(1.0);
        self.depletion_within(&self.full_state(), current, horizon)?
            .ok_or_else(|| BatteryError::Numerical("constant load must deplete within C/I".into()))
    }

    /// Calibrates `k` so the continuous-load lifetime at `current` equals
    /// `target` (mirrors [`crate::kibam::Kibam::calibrate_k`]).
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] when the target is infeasible.
    pub fn calibrate_k(
        capacity: Charge,
        c: f64,
        current: Current,
        target: Time,
    ) -> Result<ModifiedKibam, BatteryError> {
        let lo = capacity * c / current;
        let hi = capacity / current;
        if !(target.value() > lo.value() && target.value() < hi.value()) {
            return Err(BatteryError::InvalidParameter(format!(
                "target lifetime {target} outside the feasible range ({lo}, {hi})"
            )));
        }
        let objective = |log_k: f64| {
            let battery = ModifiedKibam::new(capacity, c, Rate::per_second(log_k.exp()))
                .expect("validated parameters");
            battery
                .constant_load_lifetime(current)
                .map(|l| l.as_seconds() - target.as_seconds())
                .unwrap_or(f64::NAN)
        };
        let root = brent(objective, -25.0, 6.0, 1e-12, 300)
            .map_err(|e| BatteryError::Numerical(format!("k calibration: {e}")))?;
        ModifiedKibam::new(capacity, c, Rate::per_second(root.exp()))
    }
}

impl DischargeModel for ModifiedKibam {
    type State = KibamState;

    fn initial_state(&self) -> KibamState {
        self.full_state()
    }

    fn advance(
        &self,
        state: &KibamState,
        current: Current,
        dt: Time,
    ) -> Result<KibamState, BatteryError> {
        if !current.is_finite() || current.value() < 0.0 {
            return Err(BatteryError::InvalidParameter(format!(
                "discharge current must be finite and ≥ 0, got {current}"
            )));
        }
        if !dt.is_finite() || dt.value() < 0.0 {
            return Err(BatteryError::InvalidParameter(format!(
                "time step must be finite and ≥ 0, got {dt}"
            )));
        }
        if dt.value() == 0.0 {
            return Ok(*state);
        }
        let (c, k, cap) = (self.c, self.k.value(), self.capacity.value());
        let i = current.as_amps();
        let sys = FnSystem::new(2, move |_t, y: &[f64], d: &mut [f64]| {
            let h1 = y[0] / c;
            let h2 = y[1] / (1.0 - c);
            let factor = (h2 / cap).max(0.0);
            let flow = k * (h2 - h1) * factor;
            d[0] = -i + flow;
            d[1] = -flow;
        });
        let opts = AdaptiveOptions {
            rtol: 1e-10,
            atol: 1e-10,
            h0: (dt.as_seconds() / 16.0).clamp(1e-6, 10.0),
            ..Default::default()
        };
        let traj = rkf45(
            &sys,
            &[state.available.value(), state.bound.value()],
            0.0,
            dt.as_seconds(),
            &opts,
        )
        .map_err(|e| BatteryError::Numerical(format!("modified KiBaM integration: {e}")))?;
        let (_, y) = traj.last();
        Ok(KibamState {
            available: Charge::from_coulombs(y[0]),
            bound: Charge::from_coulombs(y[1]),
        })
    }

    fn available_charge(&self, state: &KibamState) -> Charge {
        state.available
    }

    fn depletion_within(
        &self,
        state: &KibamState,
        current: Current,
        dt: Time,
    ) -> Result<Option<Time>, BatteryError> {
        if self.is_empty(state) {
            return Ok(Some(Time::ZERO));
        }
        if current.value() == 0.0 {
            // Pure recovery cannot drain the available well.
            return Ok(None);
        }
        // As for the plain KiBaM, y₁ has at most one interior extremum (a
        // maximum) within a constant-current segment, so the first zero
        // exists iff the end state is empty and is then unique in [0, dt].
        let end = self.advance(state, current, dt)?;
        if !self.is_empty(&end) {
            return Ok(None);
        }
        let f = |t: f64| {
            self.advance(state, current, Time::from_seconds(t))
                .map(|s| s.available.value())
                .unwrap_or(f64::NAN)
        };
        let root = brent(f, 0.0, dt.as_seconds(), 1e-7, 200)
            .map_err(|e| BatteryError::Numerical(format!("depletion root: {e}")))?;
        Ok(Some(Time::from_seconds(root)))
    }
}

/// A deterministic xorshift64* generator so that the stochastic model
/// needs no external RNG dependency and stays exactly reproducible.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed.max(1) }
    }

    fn next_f64(&mut self) -> f64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Stochastic quantised-recovery variant of the modified KiBaM.
///
/// Time advances in fixed slots; consumption is deterministic while
/// recovery is a Bernoulli event per slot: with probability `h₂/C`
/// (the modification factor) the unmodified KiBaM quantum
/// `k(h₂−h₁)·slot` is transferred. Expected drift per slot therefore
/// equals the modified ODE.
#[derive(Debug, Clone)]
pub struct StochasticModifiedKibam {
    model: ModifiedKibam,
    slot: Time,
}

impl StochasticModifiedKibam {
    /// Creates the stochastic simulator with the given slot length.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] for a non-positive slot.
    pub fn new(model: ModifiedKibam, slot: Time) -> Result<Self, BatteryError> {
        if !(slot.value() > 0.0) || !slot.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "slot length must be positive, got {slot}"
            )));
        }
        Ok(StochasticModifiedKibam { model, slot })
    }

    /// The underlying deterministic model.
    pub fn model(&self) -> &ModifiedKibam {
        &self.model
    }

    /// Simulates one lifetime under `load`, up to `horizon`; `None` when
    /// the battery survives. Fully deterministic in `seed`.
    pub fn simulate_lifetime<L: LoadProfile + ?Sized>(
        &self,
        load: &L,
        horizon: Time,
        seed: u64,
    ) -> Option<Time> {
        let mut rng = XorShift64::new(seed);
        let (c, k, cap) = (
            self.model.c,
            self.model.k.value(),
            self.model.capacity.value(),
        );
        let dt = self.slot.as_seconds();
        let mut y1 = cap * c;
        let mut y2 = cap * (1.0 - c);
        let mut t = 0.0;
        let end = horizon.as_seconds();
        while t < end {
            let i = load.current(Time::from_seconds(t)).as_amps();
            // Consumption first: detect depletion inside the slot.
            let consumed = i * dt;
            if consumed >= y1 {
                let d = if i > 0.0 { y1 / i } else { dt };
                return Some(Time::from_seconds(t + d));
            }
            y1 -= consumed;
            // Quantised recovery.
            let h1 = y1 / c;
            let h2 = y2 / (1.0 - c);
            if h2 > h1 && h2 > 0.0 {
                let p = (h2 / cap).clamp(0.0, 1.0);
                if rng.next_f64() < p {
                    let quantum = (k * (h2 - h1) * dt).min(y2);
                    y1 += quantum;
                    y2 -= quantum;
                }
            }
            t += dt;
        }
        None
    }

    /// Mean lifetime over `runs` independent simulations (seeds
    /// `seed0, seed0+1, …`). Runs that survive the horizon are counted at
    /// the horizon, so the estimate is a lower bound in that case.
    pub fn mean_lifetime<L: LoadProfile + ?Sized>(
        &self,
        load: &L,
        horizon: Time,
        runs: usize,
        seed0: u64,
    ) -> Time {
        let total: f64 = (0..runs)
            .map(|r| {
                self.simulate_lifetime(load, horizon, seed0 + r as u64)
                    .unwrap_or(horizon)
                    .as_seconds()
            })
            .sum();
        Time::from_seconds(total / runs.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kibam::Kibam;
    use crate::lifetime::lifetime;
    use crate::load::{ConstantLoad, SquareWaveLoad};
    use units::Frequency;

    fn paper_modified() -> ModifiedKibam {
        ModifiedKibam::new(
            Charge::from_coulombs(7200.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let cap = Charge::from_coulombs(100.0);
        assert!(ModifiedKibam::new(Charge::ZERO, 0.5, Rate::per_second(1e-5)).is_err());
        assert!(ModifiedKibam::new(cap, 1.0, Rate::per_second(1e-5)).is_err());
        assert!(ModifiedKibam::new(cap, 0.5, Rate::per_second(-1.0)).is_err());
        let m = ModifiedKibam::new(cap, 0.5, Rate::per_second(1e-5)).unwrap();
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.c(), 0.5);
        assert_eq!(m.k().value(), 1e-5);
        assert!(StochasticModifiedKibam::new(m, Time::ZERO).is_err());
    }

    #[test]
    fn full_state_recovers_like_kibam() {
        // At full charge the modification factor is h₂/C = 1, so the
        // instantaneous flow matches the plain KiBaM.
        let m = paper_modified();
        let kib = Kibam::new(m.capacity(), m.c(), m.k()).unwrap();
        let mut state = m.full_state();
        // Perturb: discharge a little first (flows are zero at equalised).
        state = m
            .advance(&state, Current::from_amps(0.96), Time::from_seconds(100.0))
            .unwrap();
        let flow_mod = m.recovery_flow(&state);
        let h_diff = kib.height_difference(&state);
        let flow_kibam = m.k().value() * h_diff;
        let factor = state.bound.value() / (1.0 - m.c()) / m.capacity().value();
        assert!((flow_mod - flow_kibam * factor).abs() < 1e-12);
        assert!(factor < 1.0 && factor > 0.9);
    }

    #[test]
    fn conservation_under_integration() {
        let m = paper_modified();
        let s = m
            .advance(
                &m.full_state(),
                Current::from_amps(0.96),
                Time::from_seconds(1000.0),
            )
            .unwrap();
        let drawn = 0.96 * 1000.0;
        assert!((s.total().value() - (7200.0 - drawn)).abs() < 1e-5);
    }

    #[test]
    fn modified_lifetime_shorter_than_kibam_on_square_wave() {
        // Slower recovery ⇒ the modified battery dies earlier under
        // intermittent load with the same parameters.
        let m = paper_modified();
        let kib = Kibam::new(m.capacity(), m.c(), m.k()).unwrap();
        let wave =
            SquareWaveLoad::symmetric(Frequency::from_hertz(0.001), Current::from_amps(0.96))
                .unwrap();
        let horizon = Time::from_hours(20.0);
        let l_mod = lifetime(&m, &wave, horizon).unwrap().unwrap();
        let l_kib = lifetime(&kib, &wave, horizon).unwrap().unwrap();
        assert!(l_mod < l_kib, "modified {l_mod} vs kibam {l_kib}");
    }

    #[test]
    fn deterministic_evaluation_is_frequency_independent() {
        // The paper's §3 finding: numerically evaluated, the modified
        // KiBaM still gives (nearly) the same lifetime at f = 1 Hz and
        // f = 0.2 Hz — both far faster than the recovery timescale.
        let m = paper_modified();
        let horizon = Time::from_hours(20.0);
        let l1 = {
            let w = SquareWaveLoad::symmetric(Frequency::from_hertz(1.0), Current::from_amps(0.96))
                .unwrap();
            lifetime(&m, &w, horizon).unwrap().unwrap()
        };
        let l02 = {
            let w = SquareWaveLoad::symmetric(Frequency::from_hertz(0.2), Current::from_amps(0.96))
                .unwrap();
            lifetime(&m, &w, horizon).unwrap().unwrap()
        };
        let rel = (l1.as_seconds() - l02.as_seconds()).abs() / l1.as_seconds();
        assert!(rel < 0.01, "f=1Hz: {l1}, f=0.2Hz: {l02}");
    }

    #[test]
    fn calibrate_k_hits_target() {
        let cap = Charge::from_coulombs(7200.0);
        let i = Current::from_amps(0.96);
        let target = Time::from_seconds(5460.0);
        let m = ModifiedKibam::calibrate_k(cap, 0.625, i, target).unwrap();
        let achieved = m.constant_load_lifetime(i).unwrap();
        assert!((achieved.as_seconds() - 5460.0).abs() < 0.1, "{achieved}");
        assert!(ModifiedKibam::calibrate_k(cap, 0.625, i, Time::from_seconds(100.0)).is_err());
    }

    #[test]
    fn stochastic_mean_tracks_deterministic() {
        let m = paper_modified();
        let stoch = StochasticModifiedKibam::new(m, Time::from_seconds(0.5)).unwrap();
        let wave =
            SquareWaveLoad::symmetric(Frequency::from_hertz(0.001), Current::from_amps(0.96))
                .unwrap();
        let horizon = Time::from_hours(20.0);
        let deterministic = lifetime(&m, &wave, horizon).unwrap().unwrap();
        let mean = stoch.mean_lifetime(&wave, horizon, 20, 42);
        let rel =
            (mean.as_seconds() - deterministic.as_seconds()).abs() / deterministic.as_seconds();
        assert!(
            rel < 0.05,
            "stochastic mean {mean} vs deterministic {deterministic}"
        );
    }

    #[test]
    fn stochastic_reproducible_and_seed_sensitive() {
        let m = paper_modified();
        let stoch = StochasticModifiedKibam::new(m, Time::from_seconds(1.0)).unwrap();
        let load = ConstantLoad::new(Current::from_amps(0.96)).unwrap();
        let horizon = Time::from_hours(5.0);
        let a = stoch.simulate_lifetime(&load, horizon, 7).unwrap();
        let b = stoch.simulate_lifetime(&load, horizon, 7).unwrap();
        assert_eq!(a, b, "same seed must reproduce");
        // Continuous load leaves little room for randomness but recovery
        // events still fire; lifetimes stay in a tight band.
        let c = stoch.simulate_lifetime(&load, horizon, 8).unwrap();
        assert!((a.as_seconds() - c.as_seconds()).abs() < 0.05 * a.as_seconds());
    }

    #[test]
    fn stochastic_survives_horizon() {
        let m = paper_modified();
        let stoch = StochasticModifiedKibam::new(m, Time::from_seconds(1.0)).unwrap();
        let load = ConstantLoad::new(Current::from_milliamps(1.0)).unwrap();
        assert_eq!(
            stoch.simulate_lifetime(&load, Time::from_seconds(100.0), 1),
            None
        );
    }
}
