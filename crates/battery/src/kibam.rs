//! The Kinetic Battery Model (KiBaM) of Manwell & McGowan.
//!
//! The battery charge is split over two wells (paper Fig. 1): the
//! *available-charge* well `y₁` (fraction `c` of the capacity) feeds the
//! load directly; the *bound-charge* well `y₂` refills it at a rate
//! proportional to the height difference of the wells:
//!
//! ```text
//! dy₁/dt = −I + k(h₂ − h₁)        h₁ = y₁/c
//! dy₂/dt =     −k(h₂ − h₁)        h₂ = y₂/(1 − c)
//! ```
//!
//! For constant current `I` the system has a closed form. With
//! `k̃ = k/(c(1−c))` and `δ = h₂ − h₁`:
//!
//! ```text
//! δ(t)  = δ₀·e^{−k̃t} + (I/(c·k̃))·(1 − e^{−k̃t})
//! ∫₀ᵗδ  = δ₀·(1−e^{−k̃t})/k̃ + (I/(c·k̃))·(t − (1−e^{−k̃t})/k̃)
//! y₁(t) = y₁(0) − I·t + k·∫₀ᵗδ
//! y₂(t) = y₂(0) + y₁(0) − I·t − y₁(t)
//! ```
//!
//! The battery is *empty* when `y₁ = 0` (the bound charge that remains is
//! physically unreachable). Within a constant-current segment `y₁` has a
//! monotone derivative (`−I + kδ(t)` with `δ` monotone), so it is convex
//! or concave and the first zero is bracketed by `[0, t_end]` whenever
//! `y₁(t_end) ≤ 0` — which makes depletion detection exact.

use crate::lifetime::DischargeModel;
use crate::BatteryError;
use numerics::roots::brent;
use units::{Charge, Current, Rate, Time};

/// KiBaM parameters: total capacity `C`, available fraction `c` and well
/// flow constant `k`.
///
/// The special case `c = 1` (all charge directly available, the ideal
/// linear battery used in the paper's Fig. 7) is fully supported: the
/// bound well is empty and `k` is irrelevant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kibam {
    capacity: Charge,
    c: f64,
    k: Rate,
}

/// Charge state of a KiBaM battery: the two well contents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KibamState {
    /// Available charge `y₁`.
    pub available: Charge,
    /// Bound charge `y₂`.
    pub bound: Charge,
}

impl KibamState {
    /// Total remaining charge `y₁ + y₂`.
    pub fn total(&self) -> Charge {
        self.available + self.bound
    }
}

impl Kibam {
    /// Creates a KiBaM battery.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] unless `capacity > 0`,
    /// `0 < c ≤ 1` and `k ≥ 0`.
    pub fn new(capacity: Charge, c: f64, k: Rate) -> Result<Self, BatteryError> {
        if !(capacity.value() > 0.0) || !capacity.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "capacity must be positive, got {capacity}"
            )));
        }
        if !(c > 0.0 && c <= 1.0) {
            return Err(BatteryError::InvalidParameter(format!(
                "available-charge fraction must lie in (0, 1], got {c}"
            )));
        }
        if !(k.value() >= 0.0) || !k.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "well flow constant must be non-negative, got {k}"
            )));
        }
        Ok(Kibam { capacity, c, k })
    }

    /// Total capacity `C`.
    pub fn capacity(&self) -> Charge {
        self.capacity
    }

    /// Available-charge fraction `c`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Well flow constant `k`.
    pub fn k(&self) -> Rate {
        self.k
    }

    /// The normalised flow constant `k̃ = k/(c(1−c))`, infinite for `c = 1`.
    pub fn k_tilde(&self) -> f64 {
        if self.c >= 1.0 {
            f64::INFINITY
        } else {
            self.k.value() / (self.c * (1.0 - self.c))
        }
    }

    /// The fully charged, equalised state: `y₁ = cC`, `y₂ = (1−c)C`.
    pub fn full_state(&self) -> KibamState {
        KibamState {
            available: self.capacity * self.c,
            bound: self.capacity * (1.0 - self.c),
        }
    }

    /// Height difference `h₂ − h₁` of a state.
    pub fn height_difference(&self, state: &KibamState) -> f64 {
        if self.c >= 1.0 {
            0.0
        } else {
            state.bound.value() / (1.0 - self.c) - state.available.value() / self.c
        }
    }

    /// Evolves the state for `dt` under constant current via the closed
    /// form. Negative well contents are clamped at zero only *after* the
    /// battery is empty; callers detect emptiness first via
    /// [`Kibam::depletion_after`].
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] for negative `dt`, negative
    /// current, or non-finite inputs.
    pub fn advance_state(
        &self,
        state: &KibamState,
        current: Current,
        dt: Time,
    ) -> Result<KibamState, BatteryError> {
        check_step(current, dt)?;
        let t = dt.as_seconds();
        let i = current.as_amps();
        let y1 = state.available.value();
        let y2 = state.bound.value();

        if self.c >= 1.0 {
            // Degenerate single-well battery: y₁' = −I.
            return Ok(KibamState {
                available: Charge::from_coulombs(y1 - i * t),
                bound: Charge::ZERO,
            });
        }
        let k = self.k.value();
        if k == 0.0 {
            // No inter-well flow.
            return Ok(KibamState {
                available: Charge::from_coulombs(y1 - i * t),
                bound: Charge::from_coulombs(y2),
            });
        }
        let kt = self.k_tilde();
        let delta0 = self.height_difference(state);
        let decay = (-kt * t).exp();
        let geom = (1.0 - decay) / kt; // ∫ e^{-k̃s} ds
        let integral_delta = delta0 * geom + i / (self.c * kt) * (t - geom);
        let new_y1 = y1 - i * t + k * integral_delta;
        let new_y2 = y2 - k * integral_delta;
        Ok(KibamState {
            available: Charge::from_coulombs(new_y1),
            bound: Charge::from_coulombs(new_y2),
        })
    }

    /// First time within `[0, dt]` at which the available charge reaches
    /// zero under constant current, or `None` if the battery survives the
    /// whole segment.
    ///
    /// Exactness relies on the convexity/concavity of `y₁` within a
    /// constant-current segment (see the module docs): a first crossing
    /// exists iff `y₁(dt) ≤ 0`, and it is unique in the bracket.
    ///
    /// # Errors
    ///
    /// Same validation as [`Kibam::advance_state`], plus
    /// [`BatteryError::Numerical`] if the bracketing root finder fails
    /// (cannot happen for valid states).
    pub fn depletion_after(
        &self,
        state: &KibamState,
        current: Current,
        dt: Time,
    ) -> Result<Option<Time>, BatteryError> {
        check_step(current, dt)?;
        if state.available.value() <= 0.0 {
            return Ok(Some(Time::ZERO));
        }
        if current.value() == 0.0 {
            // Recovery only: the available charge cannot fall to zero.
            return Ok(None);
        }
        let end = self.advance_state(state, current, dt)?;
        if end.available.value() > 0.0 {
            return Ok(None);
        }
        if self.c >= 1.0 || self.k.value() == 0.0 {
            // Linear in t: solve directly.
            let t = state.available.value() / current.as_amps();
            return Ok(Some(Time::from_seconds(t.min(dt.as_seconds()))));
        }
        let f = |t: f64| {
            self.advance_state(state, current, Time::from_seconds(t))
                .expect("validated inputs")
                .available
                .value()
        };
        let root = brent(f, 0.0, dt.as_seconds(), 1e-9, 200)
            .map_err(|e| BatteryError::Numerical(format!("depletion root: {e}")))?;
        Ok(Some(Time::from_seconds(root)))
    }

    /// Lifetime under a *constant* load from the fully charged state:
    /// the unique `t` with `y₁(t) = 0`.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] for non-positive current.
    pub fn constant_load_lifetime(&self, current: Current) -> Result<Time, BatteryError> {
        if !(current.value() > 0.0) {
            return Err(BatteryError::InvalidParameter(format!(
                "constant-load lifetime needs positive current, got {current}"
            )));
        }
        // Upper bound: an ideal battery with full capacity delivers C/I;
        // KiBaM delivers at most that.
        let horizon = self.capacity / current * 1.001 + Time::from_seconds(1.0);
        let state = self.full_state();
        self.depletion_after(&state, current, horizon)?
            .ok_or_else(|| BatteryError::Numerical("constant load must deplete within C/I".into()))
    }

    /// Delivered charge under a constant load: `I · lifetime`.
    ///
    /// # Errors
    ///
    /// Same as [`Kibam::constant_load_lifetime`].
    pub fn delivered_charge(&self, current: Current) -> Result<Charge, BatteryError> {
        Ok(current * self.constant_load_lifetime(current)?)
    }

    /// Calibrates the flow constant `k` so that the continuous-load
    /// lifetime at `current` equals `target` (the paper fits `k` against
    /// the experimental 0.96 A lifetime of ref. \[9\] this way).
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] when the target is infeasible:
    /// it must lie between the `k = 0` lifetime (`cC/I`) and the `k = ∞`
    /// lifetime (`C/I`).
    pub fn calibrate_k(
        capacity: Charge,
        c: f64,
        current: Current,
        target: Time,
    ) -> Result<Kibam, BatteryError> {
        let lo = capacity * c / current;
        let hi = capacity / current;
        if !(target.value() > lo.value() && target.value() < hi.value()) {
            return Err(BatteryError::InvalidParameter(format!(
                "target lifetime {target} outside the feasible range ({lo}, {hi})"
            )));
        }
        let objective = |log_k: f64| {
            let battery = Kibam::new(capacity, c, Rate::per_second(log_k.exp()))
                .expect("validated parameters");
            battery
                .constant_load_lifetime(current)
                .map(|l| l.as_seconds() - target.as_seconds())
                .unwrap_or(f64::NAN)
        };
        // Lifetime is increasing in k; bracket in log space.
        let root = brent(objective, -25.0, 5.0, 1e-12, 300)
            .map_err(|e| BatteryError::Numerical(format!("k calibration: {e}")))?;
        Kibam::new(capacity, c, Rate::per_second(root.exp()))
    }

    /// Calibrates the capacity `C` so that the continuous-load lifetime at
    /// `current` equals `target`, holding `c` and `k` fixed.
    ///
    /// # Errors
    ///
    /// [`BatteryError::Numerical`] when no capacity in
    /// `[I·target, I·target/c]` achieves the target (cannot happen for
    /// valid parameters).
    pub fn calibrate_capacity(
        c: f64,
        k: Rate,
        current: Current,
        target: Time,
    ) -> Result<Kibam, BatteryError> {
        // Delivered charge lies in [cC, C] ⇒ C ∈ [I·L, I·L/c].
        let delivered = current * target;
        let objective = |cap: f64| {
            let battery =
                Kibam::new(Charge::from_coulombs(cap), c, k).expect("validated parameters");
            battery
                .constant_load_lifetime(current)
                .map(|l| l.as_seconds() - target.as_seconds())
                .unwrap_or(f64::NAN)
        };
        let lo = delivered.value() * 0.999;
        let hi = delivered.value() / c * 1.001;
        let root = brent(objective, lo, hi, 1e-9, 300)
            .map_err(|e| BatteryError::Numerical(format!("capacity calibration: {e}")))?;
        Kibam::new(Charge::from_coulombs(root), c, k)
    }
}

impl DischargeModel for Kibam {
    type State = KibamState;

    fn initial_state(&self) -> KibamState {
        self.full_state()
    }

    fn advance(
        &self,
        state: &KibamState,
        current: Current,
        dt: Time,
    ) -> Result<KibamState, BatteryError> {
        self.advance_state(state, current, dt)
    }

    fn available_charge(&self, state: &KibamState) -> Charge {
        state.available
    }

    fn depletion_within(
        &self,
        state: &KibamState,
        current: Current,
        dt: Time,
    ) -> Result<Option<Time>, BatteryError> {
        self.depletion_after(state, current, dt)
    }
}

fn check_step(current: Current, dt: Time) -> Result<(), BatteryError> {
    if !current.is_finite() || current.value() < 0.0 {
        return Err(BatteryError::InvalidParameter(format!(
            "discharge current must be finite and ≥ 0, got {current}"
        )));
    }
    if !dt.is_finite() || dt.value() < 0.0 {
        return Err(BatteryError::InvalidParameter(format!(
            "time step must be finite and ≥ 0, got {dt}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::ode::{rk4, FnSystem};
    use proptest::prelude::*;

    fn paper_battery() -> Kibam {
        // The Fig. 2 / Fig. 8 parameters.
        Kibam::new(
            Charge::from_amp_seconds(7200.0),
            0.625,
            Rate::per_second(4.5e-5),
        )
        .unwrap()
    }

    #[test]
    fn parameter_validation() {
        let c = Charge::from_coulombs(1.0);
        let k = Rate::per_second(1e-5);
        assert!(Kibam::new(Charge::ZERO, 0.5, k).is_err());
        assert!(Kibam::new(c, 0.0, k).is_err());
        assert!(Kibam::new(c, 1.5, k).is_err());
        assert!(Kibam::new(c, 0.5, Rate::per_second(-1.0)).is_err());
        assert!(Kibam::new(c, 0.5, Rate::per_second(f64::NAN)).is_err());
        assert!(Kibam::new(c, 1.0, Rate::per_second(0.0)).is_ok());
    }

    #[test]
    fn full_state_split() {
        let b = paper_battery();
        let s = b.full_state();
        assert!((s.available.value() - 4500.0).abs() < 1e-9);
        assert!((s.bound.value() - 2700.0).abs() < 1e-9);
        assert!((s.total().value() - 7200.0).abs() < 1e-9);
        // Equalised wells: h₁ = h₂.
        assert!(b.height_difference(&s).abs() < 1e-12);
    }

    #[test]
    fn charge_conservation_under_discharge() {
        let b = paper_battery();
        let i = Current::from_amps(0.96);
        let dt = Time::from_seconds(300.0);
        let s1 = b.advance_state(&b.full_state(), i, dt).unwrap();
        let drawn = i * dt;
        assert!((s1.total().value() - (7200.0 - drawn.value())).abs() < 1e-8);
        // Discharge drains the available well faster than equalisation.
        assert!(b.height_difference(&s1) > 0.0);
    }

    #[test]
    fn c_equal_one_is_linear() {
        let b = Kibam::new(Charge::from_coulombs(7200.0), 1.0, Rate::per_second(0.0)).unwrap();
        let s = b
            .advance_state(
                &b.full_state(),
                Current::from_amps(0.96),
                Time::from_seconds(1000.0),
            )
            .unwrap();
        assert!((s.available.value() - (7200.0 - 960.0)).abs() < 1e-9);
        assert_eq!(s.bound, Charge::ZERO);
        let life = b.constant_load_lifetime(Current::from_amps(0.96)).unwrap();
        assert!((life.as_seconds() - 7500.0).abs() < 1e-6);
    }

    #[test]
    fn zero_k_freezes_bound_well() {
        let b = Kibam::new(Charge::from_coulombs(100.0), 0.5, Rate::per_second(0.0)).unwrap();
        let s = b
            .advance_state(
                &b.full_state(),
                Current::from_amps(1.0),
                Time::from_seconds(20.0),
            )
            .unwrap();
        assert!((s.available.value() - 30.0).abs() < 1e-12);
        assert!((s.bound.value() - 50.0).abs() < 1e-12);
        let life = b.constant_load_lifetime(Current::from_amps(1.0)).unwrap();
        assert!((life.as_seconds() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn closed_form_matches_rk4_integration() {
        let b = paper_battery();
        let i = 0.96;
        let sys = FnSystem::new(2, move |_t, y: &[f64], d: &mut [f64]| {
            let h1 = y[0] / 0.625;
            let h2 = y[1] / 0.375;
            let flow = 4.5e-5 * (h2 - h1);
            d[0] = -i + flow;
            d[1] = -flow;
        });
        let traj = rk4(&sys, &[4500.0, 2700.0], 0.0, 2000.0, 0.05).unwrap();
        let closed = b
            .advance_state(
                &b.full_state(),
                Current::from_amps(i),
                Time::from_seconds(2000.0),
            )
            .unwrap();
        let (_, y) = traj.last();
        assert!(
            (closed.available.value() - y[0]).abs() < 1e-4,
            "{} vs {}",
            closed.available,
            y[0]
        );
        assert!((closed.bound.value() - y[1]).abs() < 1e-4);
    }

    #[test]
    fn recovery_during_idle() {
        let b = paper_battery();
        let i = Current::from_amps(0.96);
        // Discharge for 500 s, then idle for 2000 s.
        let after_load = b
            .advance_state(&b.full_state(), i, Time::from_seconds(500.0))
            .unwrap();
        let after_idle = b
            .advance_state(&after_load, Current::ZERO, Time::from_seconds(2000.0))
            .unwrap();
        // Recovery moves charge from bound to available without loss.
        assert!(after_idle.available > after_load.available);
        assert!(after_idle.bound < after_load.bound);
        assert!((after_idle.total().value() - after_load.total().value()).abs() < 1e-9);
        // The height difference shrinks towards equalisation.
        assert!(b.height_difference(&after_idle) < b.height_difference(&after_load));
    }

    #[test]
    fn depletion_time_continuous_load() {
        let b = paper_battery();
        let life = b.constant_load_lifetime(Current::from_amps(0.96)).unwrap();
        // Depleted strictly after the available-well-only prediction and
        // strictly before the ideal-battery prediction.
        assert!(life.as_seconds() > 4500.0 / 0.96);
        assert!(life.as_seconds() < 7200.0 / 0.96);
        // At the root, y₁ ≈ 0.
        let s = b
            .advance_state(&b.full_state(), Current::from_amps(0.96), life)
            .unwrap();
        assert!(s.available.value().abs() < 1e-5, "y1 = {}", s.available);
    }

    #[test]
    fn no_depletion_when_segment_survives() {
        let b = paper_battery();
        let d = b
            .depletion_after(
                &b.full_state(),
                Current::from_amps(0.96),
                Time::from_seconds(100.0),
            )
            .unwrap();
        assert_eq!(d, None);
        // Idle never depletes.
        let d = b
            .depletion_after(&b.full_state(), Current::ZERO, Time::from_hours(100.0))
            .unwrap();
        assert_eq!(d, None);
    }

    #[test]
    fn already_empty_depletes_immediately() {
        let b = paper_battery();
        let empty = KibamState {
            available: Charge::ZERO,
            bound: Charge::from_coulombs(100.0),
        };
        let d = b
            .depletion_after(&empty, Current::from_amps(1.0), Time::from_seconds(10.0))
            .unwrap();
        assert_eq!(d, Some(Time::ZERO));
    }

    #[test]
    fn invalid_steps_rejected() {
        let b = paper_battery();
        let s = b.full_state();
        assert!(b
            .advance_state(&s, Current::from_amps(-1.0), Time::from_seconds(1.0))
            .is_err());
        assert!(b
            .advance_state(&s, Current::from_amps(1.0), Time::from_seconds(-1.0))
            .is_err());
        assert!(b.constant_load_lifetime(Current::ZERO).is_err());
    }

    #[test]
    fn recovery_effect_extends_lifetime() {
        // Same average current: continuous 0.48 A vs square wave 0.96 A at
        // 50% duty — with slow switching the square wave must do worse
        // (high-current phases dig deeper into the available well).
        let b = paper_battery();
        let continuous = b.constant_load_lifetime(Current::from_amps(0.48)).unwrap();
        // Simulate one slow square wave manually: 500 s on, 500 s off.
        let mut state = b.full_state();
        let mut t = 0.0;
        let lifetime = loop {
            if let Some(d) = b
                .depletion_after(&state, Current::from_amps(0.96), Time::from_seconds(500.0))
                .unwrap()
            {
                break t + d.as_seconds();
            }
            state = b
                .advance_state(&state, Current::from_amps(0.96), Time::from_seconds(500.0))
                .unwrap();
            state = b
                .advance_state(&state, Current::ZERO, Time::from_seconds(500.0))
                .unwrap();
            t += 1000.0;
        };
        // Twice the square-wave on-time is the fair comparison of delivered
        // charge: continuous at 0.48 A delivers 0.48·L_cont; square wave
        // delivers 0.96·(on time) = 0.48·lifetime.
        assert!(
            lifetime < continuous.as_seconds(),
            "square {lifetime} vs continuous {}",
            continuous.as_seconds()
        );
    }

    #[test]
    fn calibrate_k_hits_target() {
        let cap = Charge::from_coulombs(7200.0);
        let i = Current::from_amps(0.96);
        let target = Time::from_seconds(5460.0);
        let b = Kibam::calibrate_k(cap, 0.625, i, target).unwrap();
        let achieved = b.constant_load_lifetime(i).unwrap();
        assert!((achieved.as_seconds() - 5460.0).abs() < 1e-3, "{achieved}");
        // Infeasible targets rejected: below cC/I or above C/I.
        assert!(Kibam::calibrate_k(cap, 0.625, i, Time::from_seconds(4000.0)).is_err());
        assert!(Kibam::calibrate_k(cap, 0.625, i, Time::from_seconds(8000.0)).is_err());
    }

    #[test]
    fn calibrate_capacity_hits_target() {
        let i = Current::from_amps(0.96);
        let target = Time::from_minutes(91.0);
        let b = Kibam::calibrate_capacity(0.625, Rate::per_second(4.5e-5), i, target).unwrap();
        let achieved = b.constant_load_lifetime(i).unwrap();
        assert!((achieved.as_minutes() - 91.0).abs() < 1e-6, "{achieved}");
    }

    #[test]
    fn discharge_model_trait_methods() {
        let b = paper_battery();
        let s = b.initial_state();
        assert_eq!(b.available_charge(&s), s.available);
        assert!(!b.is_empty(&s));
        let advanced = b
            .advance(&s, Current::from_amps(0.96), Time::from_seconds(10.0))
            .unwrap();
        assert!(advanced.available < s.available);
    }

    proptest! {
        #[test]
        fn conservation_property(
            cap in 100.0f64..10_000.0,
            c in 0.1f64..0.999,
            k in 1e-6f64..1e-2,
            i in 0.0f64..2.0,
            dt in 0.0f64..5_000.0,
        ) {
            let b = Kibam::new(Charge::from_coulombs(cap), c, Rate::per_second(k)).unwrap();
            let s = b.advance_state(
                &b.full_state(), Current::from_amps(i), Time::from_seconds(dt)).unwrap();
            let drawn = i * dt;
            prop_assert!((s.total().value() - (cap - drawn)).abs() < 1e-6 * cap.max(drawn));
        }

        #[test]
        fn semigroup_property(
            i in 0.0f64..1.5,
            t1 in 0.0f64..2_000.0,
            t2 in 0.0f64..2_000.0,
        ) {
            // advance(t1+t2) == advance(t1) then advance(t2).
            let b = paper_battery();
            let cur = Current::from_amps(i);
            let once = b.advance_state(
                &b.full_state(), cur, Time::from_seconds(t1 + t2)).unwrap();
            let mid = b.advance_state(&b.full_state(), cur, Time::from_seconds(t1)).unwrap();
            let twice = b.advance_state(&mid, cur, Time::from_seconds(t2)).unwrap();
            prop_assert!((once.available.value() - twice.available.value()).abs() < 1e-6);
            prop_assert!((once.bound.value() - twice.bound.value()).abs() < 1e-6);
        }

        #[test]
        fn lifetime_decreases_with_load(i1 in 0.2f64..1.0, factor in 1.01f64..3.0) {
            let b = paper_battery();
            let l1 = b.constant_load_lifetime(Current::from_amps(i1)).unwrap();
            let l2 = b.constant_load_lifetime(Current::from_amps(i1 * factor)).unwrap();
            prop_assert!(l2 < l1);
        }

        #[test]
        fn delivered_charge_between_cc_and_c(i in 0.05f64..2.0) {
            let b = paper_battery();
            let delivered = b.delivered_charge(Current::from_amps(i)).unwrap();
            prop_assert!(delivered.value() >= 0.625 * 7200.0 - 1e-6);
            prop_assert!(delivered.value() <= 7200.0 + 1e-6);
        }
    }
}
