//! Error type shared by the battery models.

use std::fmt;

/// Errors produced while constructing or evaluating battery models.
#[derive(Debug, Clone, PartialEq)]
pub enum BatteryError {
    /// A model parameter was out of its physical range.
    InvalidParameter(String),
    /// A numerical routine (root finder, ODE driver) failed; holds a
    /// human-readable description of the failure.
    Numerical(String),
    /// A load profile was malformed (negative currents, zero-length
    /// segments, …).
    InvalidLoad(String),
}

impl fmt::Display for BatteryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatteryError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            BatteryError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            BatteryError::InvalidLoad(msg) => write!(f, "invalid load profile: {msg}"),
        }
    }
}

impl std::error::Error for BatteryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            BatteryError::InvalidParameter("c".into()),
            BatteryError::Numerical("n".into()),
            BatteryError::InvalidLoad("l".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
