//! The ideal battery: constant voltage, full capacity at any load.
//!
//! `L = C/I` — the paper's §2 starting point and the `c = 1, k = 0`
//! degenerate case of the KiBaM. Provided as a first-class model because
//! the experiments repeatedly compare against it (e.g. "theoretically the
//! device can be 4 hours in send mode or 100 hours in idle mode").

use crate::lifetime::DischargeModel;
use crate::BatteryError;
use units::{Charge, Current, Time};

/// An ideal battery with capacity `C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealBattery {
    capacity: Charge,
}

impl IdealBattery {
    /// Creates an ideal battery.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] for non-positive capacity.
    pub fn new(capacity: Charge) -> Result<Self, BatteryError> {
        if !(capacity.value() > 0.0) || !capacity.is_finite() {
            return Err(BatteryError::InvalidParameter(format!(
                "capacity must be positive, got {capacity}"
            )));
        }
        Ok(IdealBattery { capacity })
    }

    /// The capacity `C`.
    pub fn capacity(&self) -> Charge {
        self.capacity
    }

    /// The ideal lifetime `C/I` under a constant load.
    ///
    /// # Errors
    ///
    /// [`BatteryError::InvalidParameter`] for non-positive current.
    pub fn constant_load_lifetime(&self, current: Current) -> Result<Time, BatteryError> {
        if !(current.value() > 0.0) {
            return Err(BatteryError::InvalidParameter(format!(
                "need positive current, got {current}"
            )));
        }
        Ok(self.capacity / current)
    }
}

impl DischargeModel for IdealBattery {
    type State = Charge;

    fn initial_state(&self) -> Charge {
        self.capacity
    }

    fn advance(&self, state: &Charge, current: Current, dt: Time) -> Result<Charge, BatteryError> {
        if !current.is_finite() || current.value() < 0.0 || !dt.is_finite() || dt.value() < 0.0 {
            return Err(BatteryError::InvalidParameter(
                "current and step must be finite and non-negative".into(),
            ));
        }
        Ok(*state - current * dt)
    }

    fn available_charge(&self, state: &Charge) -> Charge {
        *state
    }

    fn depletion_within(
        &self,
        state: &Charge,
        current: Current,
        dt: Time,
    ) -> Result<Option<Time>, BatteryError> {
        if state.value() <= 0.0 {
            return Ok(Some(Time::ZERO));
        }
        if current.value() <= 0.0 {
            return Ok(None);
        }
        let t = *state / current;
        Ok(if t <= dt { Some(t) } else { None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::lifetime;
    use crate::load::ConstantLoad;

    #[test]
    fn lifetime_is_capacity_over_current() {
        let b = IdealBattery::new(Charge::from_milliamp_hours(800.0)).unwrap();
        let l = b
            .constant_load_lifetime(Current::from_milliamps(200.0))
            .unwrap();
        assert!((l.as_hours() - 4.0).abs() < 1e-12);
        let l = b
            .constant_load_lifetime(Current::from_milliamps(8.0))
            .unwrap();
        assert!((l.as_hours() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(IdealBattery::new(Charge::ZERO).is_err());
        let b = IdealBattery::new(Charge::from_coulombs(10.0)).unwrap();
        assert!(b.constant_load_lifetime(Current::ZERO).is_err());
        assert!(b
            .advance(&b.initial_state(), Current::from_amps(-1.0), Time::ZERO)
            .is_err());
        assert_eq!(b.capacity().value(), 10.0);
    }

    #[test]
    fn discharge_model_agrees_with_closed_form() {
        let b = IdealBattery::new(Charge::from_coulombs(7200.0)).unwrap();
        let load = ConstantLoad::new(Current::from_amps(0.96)).unwrap();
        let l = lifetime(&b, &load, Time::from_hours(10.0))
            .unwrap()
            .unwrap();
        assert!((l.as_seconds() - 7500.0).abs() < 1e-9);
    }

    #[test]
    fn depletion_within_exactness() {
        let b = IdealBattery::new(Charge::from_coulombs(10.0)).unwrap();
        let s = b.initial_state();
        let d = b
            .depletion_within(&s, Current::from_amps(2.0), Time::from_seconds(100.0))
            .unwrap();
        assert_eq!(d, Some(Time::from_seconds(5.0)));
        let d = b
            .depletion_within(&s, Current::from_amps(2.0), Time::from_seconds(3.0))
            .unwrap();
        assert_eq!(d, None);
        let empty = Charge::ZERO;
        assert_eq!(
            b.depletion_within(&empty, Current::from_amps(1.0), Time::from_seconds(1.0))
                .unwrap(),
            Some(Time::ZERO)
        );
    }
}
