//! Dense row-major matrices, LU decomposition and the matrix exponential.
//!
//! The workload CTMCs in the paper are tiny (2–2K states: the Erlang on/off
//! chain, the 3-state simple model, the 6-state burst model), so a dense
//! representation is the right tool for steady-state analysis and for
//! validating the sparse uniformisation engine against `e^{Qt}`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Error type for dense linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible; holds a human-readable description.
    ShapeMismatch(String),
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorised/solved.
    Singular,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            LinalgError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use numerics::linalg::DenseMatrix;
///
/// let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when rows have differing
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::ShapeMismatch("empty matrix".into()));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::ShapeMismatch("ragged rows".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "{}x{} · {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Row-vector × matrix product `v · self`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != rows`.
    pub fn vecmul(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "vector of {} vs {} rows",
                v.len(),
                self.rows
            )));
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(i)) {
                *o += vi * m;
            }
        }
        Ok(out)
    }

    /// Matrix × column-vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "vector of {} vs {} cols",
                v.len(),
                self.cols
            )));
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// `self + rhs`, failing on shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch("add".into()));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// `self · s` for a scalar `s`.
    pub fn scale(&self, s: f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Maximum absolute row sum (the ∞-norm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Solves `self · x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] for non-square `self` or wrong `b`
    /// length; [`LinalgError::Singular`] when a pivot vanishes.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::ShapeMismatch(
                "solve on non-square matrix".into(),
            ));
        }
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch("rhs length".into()));
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivoting: find the largest entry in this column.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, lu[(r, col)].abs()))
                .fold((col, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                perm.swap(pivot_row, col);
                for j in 0..n {
                    let tmp = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = lu[(col, j)];
                    lu[(col, j)] = tmp;
                }
            }
            let pivot = lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] / pivot;
                lu[(r, col)] = factor;
                for j in col + 1..n {
                    let sub = factor * lu[(col, j)];
                    lu[(r, j)] -= sub;
                }
            }
        }

        // Forward substitution with the permuted right-hand side.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[perm[i]];
            for j in 0..i {
                acc -= lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in i + 1..n {
                acc -= lu[(i, j)] * x[j];
            }
            x[i] = acc / lu[(i, i)];
        }
        Ok(x)
    }

    /// The matrix exponential `e^{self}` via scaling-and-squaring with a
    /// degree-6 Padé approximant.
    ///
    /// Intended for small validation matrices (tens of states); complexity
    /// is `O(n³ log‖A‖)`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] for non-square input,
    /// [`LinalgError::Singular`] if the Padé denominator cannot be solved.
    pub fn expm(&self) -> Result<DenseMatrix, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::ShapeMismatch(
                "expm on non-square matrix".into(),
            ));
        }
        let n = self.rows;
        // Scale so that ‖A/2^s‖∞ ≤ 0.5.
        let norm = self.norm_inf();
        let s = if norm > 0.5 {
            (norm / 0.5).log2().ceil() as u32
        } else {
            0
        };
        let a = self.scale(1.0 / f64::powi(2.0, s as i32));

        // Padé(6,6): N = Σ c_k A^k, D = Σ (-1)^k c_k A^k.
        let c = pade6_coefficients();
        let mut num = DenseMatrix::zeros(n, n);
        let mut den = DenseMatrix::zeros(n, n);
        let mut power = DenseMatrix::identity(n);
        for (k, &ck) in c.iter().enumerate() {
            let term = power.scale(ck);
            num = num.add(&term)?;
            if k % 2 == 0 {
                den = den.add(&term)?;
            } else {
                den = den.add(&term.scale(-1.0))?;
            }
            if k + 1 < c.len() {
                power = power.matmul(&a)?;
            }
        }
        // Solve D · X = N column by column.
        let mut x = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let col: Vec<f64> = (0..n).map(|i| num[(i, j)]).collect();
            let sol = den.solve(&col)?;
            for i in 0..n {
                x[(i, j)] = sol[i];
            }
        }
        // Undo the scaling by repeated squaring.
        for _ in 0..s {
            x = x.matmul(&x)?;
        }
        Ok(x)
    }
}

/// Coefficients `c_k = (p+q-k)! p! / ((p+q)! k! (p-k)!)` for the (6,6) Padé
/// approximant of the exponential.
fn pade6_coefficients() -> [f64; 7] {
    let mut c = [0.0; 7];
    c[0] = 1.0;
    let (p, q) = (6.0, 6.0);
    for k in 1..7 {
        let kf = k as f64;
        c[k] = c[k - 1] * (p - kf + 1.0) / (kf * (p + q - kf + 1.0));
    }
    c
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            writeln!(f, "{:?}", self.row(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert!(!m.is_square());
    }

    #[test]
    fn ragged_and_empty_rejected() {
        assert!(matches!(
            DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]),
            Err(LinalgError::ShapeMismatch(_))
        ));
        assert!(DenseMatrix::from_rows(&[]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            DenseMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn vector_products() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.vecmul(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.vecmul(&[1.0]).is_err());
        assert!(m.matvec(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_singular_detected() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn expm_zero_is_identity() {
        let z = DenseMatrix::zeros(3, 3);
        let e = z.expm().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((e[(i, j)] - if i == j { 1.0 } else { 0.0 }).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn expm_diagonal() {
        let mut d = DenseMatrix::zeros(2, 2);
        d[(0, 0)] = 1.0;
        d[(1, 1)] = -2.0;
        let e = d.expm().unwrap();
        assert!((e[(0, 0)] - 1f64.exp()).abs() < 1e-10);
        assert!((e[(1, 1)] - (-2f64).exp()).abs() < 1e-10);
        assert!(e[(0, 1)].abs() < 1e-12 && e[(1, 0)].abs() < 1e-12);
    }

    #[test]
    fn expm_two_state_generator_closed_form() {
        // Q = [[-a, a], [b, -b]] has e^{Qt} with known closed form:
        // P(t) = [[ (b + a e^{-(a+b)t}) / (a+b), a(1 - e^{-(a+b)t})/(a+b) ], ...]
        let (a, b, t) = (2.0, 3.0, 0.7);
        let q = DenseMatrix::from_rows(&[&[-a, a], &[b, -b]]).unwrap();
        let e = q.scale(t).expm().unwrap();
        let s = a + b;
        let decay = (-s * t).exp();
        assert!((e[(0, 0)] - (b + a * decay) / s).abs() < 1e-10);
        assert!((e[(0, 1)] - a * (1.0 - decay) / s).abs() < 1e-10);
        assert!((e[(1, 0)] - b * (1.0 - decay) / s).abs() < 1e-10);
        assert!((e[(1, 1)] - (a + b * decay) / s).abs() < 1e-10);
    }

    #[test]
    fn norm_inf_is_max_abs_row_sum() {
        let m = DenseMatrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.25]]).unwrap();
        assert_eq!(m.norm_inf(), 3.0);
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn display_nonempty() {
        let m = DenseMatrix::identity(2);
        assert!(!format!("{m}").is_empty());
        assert!(!format!("{:?}", LinalgError::Singular).is_empty());
        assert_eq!(LinalgError::Singular.to_string(), "matrix is singular");
    }

    fn random_generator(n: usize, seed: u64) -> DenseMatrix {
        // Tiny deterministic LCG so this helper needs no external RNG.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut q = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let mut total = 0.0;
            for j in 0..n {
                if i != j {
                    let r = next() * 2.0;
                    q[(i, j)] = r;
                    total += r;
                }
            }
            q[(i, i)] = -total;
        }
        q
    }

    #[test]
    fn expm_of_generator_is_stochastic() {
        for seed in 1..6 {
            let q = random_generator(4, seed);
            let p = q.scale(0.9).expm().unwrap();
            for i in 0..4 {
                let row_sum: f64 = p.row(i).iter().sum();
                assert!((row_sum - 1.0).abs() < 1e-9, "row {i} sums to {row_sum}");
                assert!(p.row(i).iter().all(|&x| x > -1e-12));
            }
        }
    }

    proptest! {
        #[test]
        fn solve_then_multiply_roundtrip(
            a11 in 1.0f64..5.0, a12 in -2.0f64..2.0,
            a21 in -2.0f64..2.0, a22 in 1.0f64..5.0,
            b1 in -10.0f64..10.0, b2 in -10.0f64..10.0,
        ) {
            // Diagonally dominant ⇒ nonsingular.
            let a = DenseMatrix::from_rows(&[&[a11 + 4.0, a12], &[a21, a22 + 4.0]]).unwrap();
            let x = a.solve(&[b1, b2]).unwrap();
            let back = a.matvec(&x).unwrap();
            prop_assert!((back[0] - b1).abs() < 1e-8);
            prop_assert!((back[1] - b2).abs() < 1e-8);
        }

        #[test]
        fn expm_additivity_on_commuting_scalars(t1 in 0.0f64..2.0, t2 in 0.0f64..2.0) {
            // e^{Q t1} e^{Q t2} = e^{Q (t1+t2)} for any Q (same Q commutes).
            let q = random_generator(3, 42);
            let lhs = q.scale(t1).expm().unwrap().matmul(&q.scale(t2).expm().unwrap()).unwrap();
            let rhs = q.scale(t1 + t2).expm().unwrap();
            for i in 0..3 {
                for j in 0..3 {
                    prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-8);
                }
            }
        }
    }
}
