//! Special functions: `ln Γ`, log-factorials, log-binomials and Poisson
//! probabilities.
//!
//! Uniformisation needs Poisson probabilities `e^{-λ}λ^n/n!` for `λ·t` up
//! to ≈ 5·10⁴ (the paper reports > 46 000 iterations for the Fig. 8 curve),
//! far beyond what naive evaluation survives. Everything here is computed
//! in log space.

/// Natural logarithm of the gamma function for `x > 0`, via the Lanczos
/// approximation (g = 7, n = 9), accurate to ~1e-13 relative error.
///
/// # Panics
///
/// Panics in debug builds when `x <= 0`.
///
/// # Examples
///
/// ```
/// // Γ(5) = 24
/// assert!((numerics::special::ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)`, exact summation for `n < 256`, `ln Γ(n+1)` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        let mut acc = 0.0;
        for k in 2..=n {
            acc += (k as f64).ln();
        }
        acc
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`; returns `-∞` when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln Pr{Poisson(λ) = n}` = `-λ + n ln λ - ln n!`, valid for `λ > 0`.
/// For `λ = 0` returns `0` at `n = 0` and `-∞` otherwise.
pub fn poisson_ln_pmf(lambda: f64, n: u64) -> f64 {
    debug_assert!(lambda >= 0.0, "poisson_ln_pmf requires λ ≥ 0, got {lambda}");
    if lambda == 0.0 {
        return if n == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    -lambda + n as f64 * lambda.ln() - ln_factorial(n)
}

/// `Pr{Poisson(λ) = n}` evaluated through log space.
pub fn poisson_pmf(lambda: f64, n: u64) -> f64 {
    poisson_ln_pmf(lambda, n).exp()
}

/// The error function, computed from the Maclaurin series for small
/// arguments and the Laplace continued fraction for `erfc` beyond `x = 2`;
/// absolute error below ~1e-12 on the real line.
pub fn erf(x: f64) -> f64 {
    let result = 1.0 - erfc_abs(x.abs());
    if x >= 0.0 {
        result
    } else {
        -result
    }
}

/// `erfc(x)` for `x ≥ 0` via series/continued fraction split at `x = 2`.
fn erfc_abs(x: f64) -> f64 {
    if x < 2.0 {
        // erf(x) = 2/√π Σ (-1)^n x^{2n+1} / (n! (2n+1))
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        for n in 1..200 {
            term *= -x2 / n as f64;
            let add = term / (2 * n + 1) as f64;
            sum += add;
            if add.abs() < 1e-17 * sum.abs() {
                break;
            }
        }
        1.0 - 2.0 / std::f64::consts::PI.sqrt() * sum
    } else {
        // Continued fraction: erfc(x) = e^{-x²}/(x√π) · 1/(1+ 1/(2x²)/(1+ 2/(2x²)/(1+ ...)))
        let x2 = x * x;
        let mut f = 0.0;
        for k in (1..60).rev() {
            f = 0.5 * k as f64 / x2 / (1.0 + f);
        }
        (-x2).exp() / (x * std::f64::consts::PI.sqrt() * (1.0 + f))
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((i + 1) as f64);
            assert!((lg - f64::ln(f)).abs() < 1e-11, "Γ({}) → {lg}", i + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
        // Γ(3/2) = √π/2.
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-11);
    }

    #[test]
    fn ln_factorial_agrees_with_gamma() {
        for n in [0u64, 1, 2, 10, 100, 255, 256, 1000, 50_000] {
            let a = ln_factorial(n);
            let b = ln_gamma(n as f64 + 1.0);
            assert!(
                (a - b).abs() < 1e-8 * a.abs().max(1.0),
                "n = {n}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn ln_binomial_pascal_row() {
        // C(10, k) = 1 10 45 120 210 252 ...
        let expect = [1.0, 10.0, 45.0, 120.0, 210.0, 252.0];
        for (k, &e) in expect.iter().enumerate() {
            assert!((ln_binomial(10, k as u64).exp() - e).abs() < 1e-9);
        }
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn poisson_pmf_small_lambda() {
        // Direct evaluation is safe for λ = 2.
        let lambda = 2.0f64;
        let mut direct = (-lambda).exp();
        assert!((poisson_pmf(lambda, 0) - direct).abs() < 1e-15);
        for n in 1..20u64 {
            direct *= lambda / n as f64;
            assert!((poisson_pmf(lambda, n) - direct).abs() < 1e-14, "n = {n}");
        }
    }

    #[test]
    fn poisson_pmf_huge_lambda_stable() {
        // λ = 40 000 (the paper's uniformisation regime): mode probability
        // ≈ 1/√(2πλ), must not under/overflow.
        let lambda = 40_000.0;
        let mode = poisson_pmf(lambda, 40_000);
        let expected = 1.0 / (2.0 * std::f64::consts::PI * lambda).sqrt();
        assert!((mode - expected).abs() / expected < 1e-3);
        // Far tails underflow to zero gracefully.
        assert_eq!(poisson_pmf(lambda, 0), 0.0);
    }

    #[test]
    fn poisson_zero_lambda() {
        assert_eq!(poisson_pmf(0.0, 0), 1.0);
        assert_eq!(poisson_pmf(0.0, 3), 0.0);
    }

    #[test]
    fn poisson_mass_sums_to_one() {
        for &lambda in &[0.5f64, 5.0, 50.0, 500.0] {
            let hi = (lambda + 20.0 * lambda.sqrt() + 20.0) as u64;
            let total: f64 = (0..hi).map(|n| poisson_pmf(lambda, n)).sum();
            assert!((total - 1.0).abs() < 1e-10, "λ = {lambda}: {total}");
        }
    }

    #[test]
    fn erf_reference_values() {
        // Known values (Abramowitz & Stegun tables).
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, e) in cases {
            assert!((erf(x) - e).abs() < 1e-9, "erf({x}) = {} vs {e}", erf(x));
            assert!((erf(-x) + e).abs() < 1e-9);
        }
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-8);
        assert!((normal_cdf(-1.959963984540054) - 0.025).abs() < 1e-8);
    }

    proptest! {
        #[test]
        fn ln_gamma_recurrence(x in 0.1f64..50.0) {
            // Γ(x+1) = x Γ(x).
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
        }

        #[test]
        fn binomial_symmetry(n in 0u64..300, k in 0u64..300) {
            prop_assume!(k <= n);
            let a = ln_binomial(n, k);
            let b = ln_binomial(n, n - k);
            prop_assert!((a - b).abs() < 1e-9);
        }

        #[test]
        fn poisson_recurrence(lambda in 0.1f64..1000.0, n in 0u64..2000) {
            // p(n+1) = p(n) · λ/(n+1) in log space.
            let lhs = poisson_ln_pmf(lambda, n + 1);
            let rhs = poisson_ln_pmf(lambda, n) + lambda.ln() - ((n + 1) as f64).ln();
            prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
        }

        #[test]
        fn erf_is_odd_and_bounded(x in -6.0f64..6.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
            prop_assert!(erf(x) <= 1.0 && erf(x) >= -1.0);
        }
    }
}
