//! Bracketing root finders.
//!
//! Battery depletion times are zeros of smooth scalar functions (the
//! available charge `y1(t)` within a constant-current segment), so a
//! bracketing method with guaranteed convergence is the right tool.

use std::fmt;

/// Errors from the root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign, so `[a, b]` is not a bracket.
    NoBracket {
        /// Function value at the left endpoint.
        fa: f64,
        /// Function value at the right endpoint.
        fb: f64,
    },
    /// The iteration limit was reached before the tolerance was met.
    MaxIterations,
    /// The interval is malformed (`a >= b`) or a function value is NaN.
    BadInput(String),
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::NoBracket { fa, fb } => {
                write!(f, "no sign change over bracket: f(a) = {fa}, f(b) = {fb}")
            }
            RootError::MaxIterations => write!(f, "root finder hit the iteration limit"),
            RootError::BadInput(msg) => write!(f, "bad root-finder input: {msg}"),
        }
    }
}

impl std::error::Error for RootError {}

fn validate(a: f64, b: f64, fa: f64, fb: f64) -> Result<(), RootError> {
    if !(a < b) {
        return Err(RootError::BadInput(format!("need a < b, got [{a}, {b}]")));
    }
    if fa.is_nan() || fb.is_nan() {
        return Err(RootError::BadInput("NaN function value at bracket".into()));
    }
    if fa * fb > 0.0 {
        return Err(RootError::NoBracket { fa, fb });
    }
    Ok(())
}

/// Bisection on `[a, b]`, returning a root of `f` to absolute tolerance
/// `tol` in at most `max_iter` halvings.
///
/// # Errors
///
/// [`RootError::NoBracket`] when `f(a)·f(b) > 0`; [`RootError::BadInput`]
/// for malformed intervals; [`RootError::MaxIterations`] when `tol` is not
/// reached in `max_iter` steps.
pub fn bisect(
    f: impl Fn(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    validate(a, b, fa, fb)?;
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        if b - a < tol {
            return Ok(mid);
        }
        let fm = f(mid);
        if fm == 0.0 {
            return Ok(mid);
        }
        if fa * fm < 0.0 {
            b = mid;
        } else {
            a = mid;
            fa = fm;
        }
    }
    Err(RootError::MaxIterations)
}

/// Brent's method on `[a, b]`: inverse quadratic interpolation guarded by
/// bisection. Converges superlinearly on smooth functions while never
/// leaving the bracket.
///
/// This is the Brent–Dekker scheme from *Algorithms for Minimization
/// without Derivatives* (1973), ch. 4.
///
/// # Errors
///
/// Same conditions as [`bisect`].
pub fn brent(
    f: impl Fn(f64) -> f64,
    a0: f64,
    b0: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, RootError> {
    let (mut a, mut b) = (a0, b0);
    let (mut fa, mut fb) = (f(a), f(b));
    validate(a, b, fa, fb)?;
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    // Ensure b is the best estimate (smallest |f|).
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let within = (lo.min(b)..=lo.max(b)).contains(&s);
        let cond_bisect = !within
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= d.abs() / 2.0)
            || (mflag && (b - c).abs() < tol)
            || (!mflag && d.abs() < tol);
        if cond_bisect {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if fs.is_nan() {
            return Err(RootError::BadInput(format!("NaN at x = {s}")));
        }
        d = b - c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations)
}

/// Expands `[a, a+step]` to the right until `f` changes sign, then returns
/// the bracket `(lo, hi)`. Used to bracket battery depletion times whose
/// rough scale is unknown.
///
/// # Errors
///
/// [`RootError::NoBracket`] if no sign change is found before `hi_limit`,
/// [`RootError::BadInput`] for non-positive `step`.
pub fn bracket_forward(
    f: impl Fn(f64) -> f64,
    a: f64,
    step: f64,
    hi_limit: f64,
) -> Result<(f64, f64), RootError> {
    if !(step > 0.0) {
        return Err(RootError::BadInput(format!(
            "step must be positive, got {step}"
        )));
    }
    let fa = f(a);
    if fa == 0.0 {
        return Ok((a, a));
    }
    let mut lo = a;
    let mut flo = fa;
    let mut width = step;
    while lo < hi_limit {
        let hi = (lo + width).min(hi_limit);
        let fhi = f(hi);
        if fhi == 0.0 || flo * fhi < 0.0 {
            return Ok((lo, hi));
        }
        lo = hi;
        flo = fhi;
        width *= 2.0;
    }
    Err(RootError::NoBracket { fa, fb: flo })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 100).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_sqrt2_faster_than_bisection() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 100).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn brent_transcendental() {
        // x e^x = 1 → x = W(1) ≈ 0.567143290409783...
        let r = brent(|x| x * x.exp() - 1.0, 0.0, 1.0, 1e-14, 100).unwrap();
        assert!((r - 0.5671432904097838).abs() < 1e-10);
    }

    #[test]
    fn exact_roots_at_endpoints() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 10).unwrap(), 1.0);
        assert_eq!(brent(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-12, 10).unwrap(), 1.0);
    }

    #[test]
    fn no_bracket_detected() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(RootError::NoBracket { .. })
        ));
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(RootError::NoBracket { .. })
        ));
    }

    #[test]
    fn bad_interval_detected() {
        assert!(matches!(
            bisect(|x| x, 1.0, 0.0, 1e-12, 100),
            Err(RootError::BadInput(_))
        ));
        assert!(matches!(
            brent(|x| x, 1.0, 1.0, 1e-12, 100),
            Err(RootError::BadInput(_))
        ));
    }

    #[test]
    fn iteration_limit_reported() {
        assert_eq!(
            bisect(|x| x - 0.3, 0.0, 1.0, 1e-15, 3),
            Err(RootError::MaxIterations)
        );
    }

    #[test]
    fn bracket_forward_finds_depletion_scale() {
        // Root at x = 1000; start stepping from 0 with step 1.
        let f = |x: f64| 1000.0 - x;
        let (lo, hi) = bracket_forward(f, 0.0, 1.0, 1e9).unwrap();
        assert!(lo <= 1000.0 && 1000.0 <= hi);
        let r = brent(f, lo, hi, 1e-10, 200).unwrap();
        assert!((r - 1000.0).abs() < 1e-8);
    }

    #[test]
    fn bracket_forward_failure_modes() {
        assert!(matches!(
            bracket_forward(|_| 1.0, 0.0, 1.0, 100.0),
            Err(RootError::NoBracket { .. })
        ));
        assert!(matches!(
            bracket_forward(|x| x, 0.0, 0.0, 100.0),
            Err(RootError::BadInput(_))
        ));
        // Root exactly at the start.
        assert_eq!(bracket_forward(|x| x, 0.0, 1.0, 10.0).unwrap(), (0.0, 0.0));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            RootError::NoBracket { fa: 1.0, fb: 2.0 },
            RootError::MaxIterations,
            RootError::BadInput("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    proptest! {
        #[test]
        fn brent_finds_planted_cubic_root(root in -5.0f64..5.0, scale in 0.1f64..3.0) {
            let f = move |x: f64| scale * (x - root) * ((x - root).powi(2) + 1.0);
            let r = brent(f, root - 7.0, root + 9.0, 1e-12, 200).unwrap();
            prop_assert!((r - root).abs() < 1e-8);
        }

        #[test]
        fn bisect_and_brent_agree(root in -1.0f64..1.0) {
            let f = move |x: f64| (x - root).tanh();
            let r1 = bisect(f, -2.0, 2.0, 1e-12, 200).unwrap();
            let r2 = brent(f, -2.0, 2.0, 1e-12, 200).unwrap();
            prop_assert!((r1 - r2).abs() < 1e-9);
        }
    }
}
