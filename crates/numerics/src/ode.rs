//! Explicit ODE solvers for small systems.
//!
//! The KiBaM differential equations (paper eq. (1)) have a closed-form
//! solution for constant current, but the *modified* KiBaM of Rao et al.
//! does not — its recovery term depends nonlinearly on the bound-charge
//! height. These integrators serve both to evaluate the modified model and
//! to cross-validate the closed form.
//!
//! Three schemes are provided: fixed-step [`euler`] and [`rk4`], and the
//! adaptive Runge–Kutta–Fehlberg 4(5) pair [`rkf45`] with PI step control.

use std::fmt;

/// Right-hand side of an autonomous-in-form ODE `y' = f(t, y)`.
///
/// Implementors write the derivative of `y` at `(t, y)` into `dydt`
/// (an out-buffer is used so the hot integration loop allocates nothing).
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Evaluates `dydt = f(t, y)`.
    fn deriv(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

/// Blanket implementation so closures `(t, y, dydt)` can be used directly,
/// with the dimension supplied by [`FnSystem`].
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps a closure as an [`OdeSystem`] of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn deriv(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (self.f)(t, y, dydt)
    }
}

/// Errors reported by the ODE drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum OdeError {
    /// Inconsistent dimensions or a non-positive step/span.
    BadInput(String),
    /// The adaptive driver shrank the step below `min_step` without meeting
    /// the tolerance.
    StepUnderflow {
        /// Time at which the underflow occurred.
        t: f64,
    },
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::BadInput(msg) => write!(f, "bad ODE input: {msg}"),
            OdeError::StepUnderflow { t } => {
                write!(f, "adaptive step underflow at t = {t}")
            }
        }
    }
}

impl std::error::Error for OdeError {}

/// A dense sequence of `(t, y)` samples produced by an integrator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// Sample times, strictly increasing.
    pub times: Vec<f64>,
    /// State at each sample time (same length as `times`).
    pub states: Vec<Vec<f64>>,
}

impl Trajectory {
    /// The final `(t, y)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty (drivers never return empty ones).
    pub fn last(&self) -> (f64, &[f64]) {
        (
            *self.times.last().expect("nonempty trajectory"),
            self.states.last().unwrap(),
        )
    }
}

fn check_input(
    system: &impl OdeSystem,
    y0: &[f64],
    t0: f64,
    t1: f64,
    step_like: f64,
) -> Result<(), OdeError> {
    if y0.len() != system.dim() {
        return Err(OdeError::BadInput(format!(
            "state length {} != system dim {}",
            y0.len(),
            system.dim()
        )));
    }
    if !(t1 > t0) {
        return Err(OdeError::BadInput(format!(
            "need t1 > t0, got [{t0}, {t1}]"
        )));
    }
    if !(step_like > 0.0) {
        return Err(OdeError::BadInput(format!(
            "step must be positive, got {step_like}"
        )));
    }
    Ok(())
}

/// Forward-Euler integration with fixed step `h` from `t0` to `t1`.
///
/// First-order accurate; provided mainly as a baseline for convergence
/// tests of the higher-order schemes.
///
/// # Errors
///
/// [`OdeError::BadInput`] on dimension mismatch or non-positive `h`/span.
pub fn euler(
    system: &impl OdeSystem,
    y0: &[f64],
    t0: f64,
    t1: f64,
    h: f64,
) -> Result<Trajectory, OdeError> {
    check_input(system, y0, t0, t1, h)?;
    let dim = system.dim();
    let mut y = y0.to_vec();
    let mut dydt = vec![0.0; dim];
    let mut t = t0;
    let mut traj = Trajectory {
        times: vec![t0],
        states: vec![y.clone()],
    };
    while t < t1 {
        let step = h.min(t1 - t);
        system.deriv(t, &y, &mut dydt);
        for (yi, di) in y.iter_mut().zip(&dydt) {
            *yi += step * di;
        }
        t += step;
        traj.times.push(t);
        traj.states.push(y.clone());
    }
    Ok(traj)
}

/// Classical fourth-order Runge–Kutta with fixed step `h`.
///
/// # Errors
///
/// [`OdeError::BadInput`] on dimension mismatch or non-positive `h`/span.
pub fn rk4(
    system: &impl OdeSystem,
    y0: &[f64],
    t0: f64,
    t1: f64,
    h: f64,
) -> Result<Trajectory, OdeError> {
    check_input(system, y0, t0, t1, h)?;
    let dim = system.dim();
    let mut y = y0.to_vec();
    let (mut k1, mut k2, mut k3, mut k4) = (
        vec![0.0; dim],
        vec![0.0; dim],
        vec![0.0; dim],
        vec![0.0; dim],
    );
    let mut tmp = vec![0.0; dim];
    let mut t = t0;
    let mut traj = Trajectory {
        times: vec![t0],
        states: vec![y.clone()],
    };
    while t < t1 {
        let step = h.min(t1 - t);
        system.deriv(t, &y, &mut k1);
        for i in 0..dim {
            tmp[i] = y[i] + 0.5 * step * k1[i];
        }
        system.deriv(t + 0.5 * step, &tmp, &mut k2);
        for i in 0..dim {
            tmp[i] = y[i] + 0.5 * step * k2[i];
        }
        system.deriv(t + 0.5 * step, &tmp, &mut k3);
        for i in 0..dim {
            tmp[i] = y[i] + step * k3[i];
        }
        system.deriv(t + step, &tmp, &mut k4);
        for i in 0..dim {
            y[i] += step / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += step;
        traj.times.push(t);
        traj.states.push(y.clone());
    }
    Ok(traj)
}

/// Options for the adaptive [`rkf45`] driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Relative error tolerance per step.
    pub rtol: f64,
    /// Absolute error tolerance per step.
    pub atol: f64,
    /// Initial step size.
    pub h0: f64,
    /// Smallest permitted step before [`OdeError::StepUnderflow`].
    pub min_step: f64,
    /// Largest permitted step.
    pub max_step: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rtol: 1e-8,
            atol: 1e-10,
            h0: 1e-3,
            min_step: 1e-12,
            max_step: f64::MAX,
        }
    }
}

/// Runge–Kutta–Fehlberg 4(5) adaptive integration from `t0` to `t1`.
///
/// The step is accepted when the embedded 4th/5th-order error estimate is
/// below `atol + rtol·|y|` component-wise, and the step size follows the
/// standard 0.2-exponent controller with a safety factor of 0.9.
///
/// # Errors
///
/// [`OdeError::BadInput`] on malformed input, [`OdeError::StepUnderflow`]
/// when the controller cannot meet the tolerance above `min_step`.
pub fn rkf45(
    system: &impl OdeSystem,
    y0: &[f64],
    t0: f64,
    t1: f64,
    opts: &AdaptiveOptions,
) -> Result<Trajectory, OdeError> {
    check_input(system, y0, t0, t1, opts.h0)?;
    const A: [[f64; 5]; 5] = [
        [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
        [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
        [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
        [
            -8.0 / 27.0,
            2.0,
            -3544.0 / 2565.0,
            1859.0 / 4104.0,
            -11.0 / 40.0,
        ],
    ];
    const C: [f64; 6] = [0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0];
    // 5th-order weights (solution) and 4th-order weights (error estimate).
    const B5: [f64; 6] = [
        16.0 / 135.0,
        0.0,
        6656.0 / 12825.0,
        28561.0 / 56430.0,
        -9.0 / 50.0,
        2.0 / 55.0,
    ];
    const B4: [f64; 6] = [
        25.0 / 216.0,
        0.0,
        1408.0 / 2565.0,
        2197.0 / 4104.0,
        -1.0 / 5.0,
        0.0,
    ];

    let dim = system.dim();
    let mut y = y0.to_vec();
    let mut t = t0;
    let mut h = opts.h0.min(t1 - t0);
    let mut k = vec![vec![0.0; dim]; 6];
    let mut tmp = vec![0.0; dim];
    let mut traj = Trajectory {
        times: vec![t0],
        states: vec![y.clone()],
    };

    while t < t1 {
        let remaining = t1 - t;
        // Floating-point accumulation can leave a sliver smaller than any
        // permissible step; snap to the endpoint instead of underflowing.
        let snap = opts.min_step.max(4.0 * f64::EPSILON * t1.abs().max(1.0));
        if remaining <= snap {
            if let Some(last) = traj.times.last_mut() {
                *last = t1;
            }
            break;
        }
        h = h.min(remaining).min(opts.max_step);
        if h < opts.min_step {
            return Err(OdeError::StepUnderflow { t });
        }
        // Evaluate the six stages.
        system.deriv(t, &y, &mut k[0]);
        for stage in 1..6 {
            for i in 0..dim {
                let mut acc = 0.0;
                for (j, kj) in k.iter().enumerate().take(stage) {
                    acc += A[stage - 1][j] * kj[i];
                }
                tmp[i] = y[i] + h * acc;
            }
            let ti = t + C[stage] * h;
            let (head, tail) = k.split_at_mut(stage);
            let _ = head;
            system.deriv(ti, &tmp, &mut tail[0]);
        }
        // Error estimate and tentative 5th-order solution.
        let mut err_ratio: f64 = 0.0;
        for i in 0..dim {
            let mut y5 = y[i];
            let mut y4 = y[i];
            for (j, kj) in k.iter().enumerate() {
                y5 += h * B5[j] * kj[i];
                y4 += h * B4[j] * kj[i];
            }
            let scale = opts.atol + opts.rtol * y[i].abs().max(y5.abs());
            err_ratio = err_ratio.max(((y5 - y4) / scale).abs());
            tmp[i] = y5;
        }
        if err_ratio <= 1.0 {
            // Accept.
            y.copy_from_slice(&tmp);
            t += h;
            traj.times.push(t);
            traj.states.push(y.clone());
        }
        // Standard step controller (applies to both accept and reject).
        let factor = if err_ratio > 0.0 {
            0.9 * err_ratio.powf(-0.2)
        } else {
            5.0
        };
        h *= factor.clamp(0.2, 5.0);
    }
    Ok(traj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// y' = -y, y(0) = 1 → y(t) = e^{-t}.
    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y, d| d[0] = -y[0])
    }

    /// Harmonic oscillator: y'' = -y as a 2-d system.
    fn oscillator() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y, d| {
            d[0] = y[1];
            d[1] = -y[0];
        })
    }

    #[test]
    fn euler_converges_first_order() {
        let sys = decay();
        let coarse = euler(&sys, &[1.0], 0.0, 1.0, 0.1).unwrap();
        let fine = euler(&sys, &[1.0], 0.0, 1.0, 0.01).unwrap();
        let exact = (-1.0f64).exp();
        let e_coarse = (coarse.last().1[0] - exact).abs();
        let e_fine = (fine.last().1[0] - exact).abs();
        // Error should shrink roughly 10× for 10× smaller steps.
        assert!(e_fine < e_coarse / 5.0, "{e_coarse} vs {e_fine}");
    }

    #[test]
    fn rk4_matches_exponential() {
        let sys = decay();
        let traj = rk4(&sys, &[1.0], 0.0, 2.0, 0.01).unwrap();
        assert!((traj.last().1[0] - (-2.0f64).exp()).abs() < 1e-9);
        // Every sample should match the closed form.
        for (t, y) in traj.times.iter().zip(&traj.states) {
            assert!((y[0] - (-t).exp()).abs() < 1e-8);
        }
    }

    #[test]
    fn rk4_oscillator_conserves_energy() {
        let sys = oscillator();
        let traj = rk4(&sys, &[1.0, 0.0], 0.0, 10.0, 0.005).unwrap();
        let (_, y) = traj.last();
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-8);
        assert!((y[0] - 10.0f64.cos()).abs() < 1e-6);
    }

    #[test]
    fn rkf45_adapts_and_matches() {
        let sys = oscillator();
        let opts = AdaptiveOptions {
            rtol: 1e-10,
            atol: 1e-12,
            ..Default::default()
        };
        let traj = rkf45(&sys, &[1.0, 0.0], 0.0, 10.0, &opts).unwrap();
        let (t, y) = traj.last();
        assert!((t - 10.0).abs() < 1e-12);
        assert!((y[0] - 10.0f64.cos()).abs() < 1e-7);
        // Adaptive solver should need far fewer steps than h=0.005 fixed.
        assert!(traj.times.len() < 2001);
    }

    #[test]
    fn rkf45_lands_exactly_on_t1() {
        let sys = decay();
        let traj = rkf45(&sys, &[1.0], 0.0, 0.37, &AdaptiveOptions::default()).unwrap();
        assert!((traj.last().0 - 0.37).abs() < 1e-12);
    }

    #[test]
    fn bad_inputs_rejected() {
        let sys = decay();
        assert!(matches!(
            euler(&sys, &[1.0, 2.0], 0.0, 1.0, 0.1),
            Err(OdeError::BadInput(_))
        ));
        assert!(matches!(
            rk4(&sys, &[1.0], 1.0, 0.0, 0.1),
            Err(OdeError::BadInput(_))
        ));
        assert!(matches!(
            rk4(&sys, &[1.0], 0.0, 1.0, 0.0),
            Err(OdeError::BadInput(_))
        ));
        let opts = AdaptiveOptions {
            h0: -1.0,
            ..Default::default()
        };
        assert!(rkf45(&sys, &[1.0], 0.0, 1.0, &opts).is_err());
    }

    #[test]
    fn error_display() {
        assert!(OdeError::BadInput("x".into())
            .to_string()
            .contains("bad ODE input"));
        assert!(OdeError::StepUnderflow { t: 1.0 }
            .to_string()
            .contains("underflow"));
    }

    #[test]
    fn trajectory_last_returns_final_sample() {
        let traj = Trajectory {
            times: vec![0.0, 1.0],
            states: vec![vec![1.0], vec![2.0]],
        };
        let (t, y) = traj.last();
        assert_eq!(t, 1.0);
        assert_eq!(y, &[2.0]);
    }

    proptest! {
        #[test]
        fn rk4_and_rkf45_agree_on_linear_systems(a in 0.05f64..2.0, t1 in 0.1f64..3.0) {
            let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -a * y[0]);
            let r1 = rk4(&sys, &[1.0], 0.0, t1, 1e-3).unwrap();
            let r2 = rkf45(&sys, &[1.0], 0.0, t1, &AdaptiveOptions::default()).unwrap();
            let exact = (-a * t1).exp();
            prop_assert!((r1.last().1[0] - exact).abs() < 1e-7);
            prop_assert!((r2.last().1[0] - exact).abs() < 1e-6);
        }
    }
}
