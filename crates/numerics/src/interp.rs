//! Piecewise-linear interpolation over sampled curves.
//!
//! Lifetime-distribution curves are computed on discrete time grids; the
//! experiment harness compares curves from different methods (simulation,
//! discretisation at several `Δ`, Sericola) by interpolating them onto a
//! common grid.

use std::fmt;

/// Errors from [`LinearInterpolator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Fewer than one point, or mismatched x/y lengths.
    BadInput(String),
    /// The x grid is not strictly increasing.
    NotMonotone,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::BadInput(msg) => write!(f, "bad interpolation input: {msg}"),
            InterpError::NotMonotone => write!(f, "x grid is not strictly increasing"),
        }
    }
}

impl std::error::Error for InterpError {}

/// A piecewise-linear interpolant through `(x_i, y_i)` points with a
/// strictly increasing x grid. Evaluation clamps outside the grid
/// (constant extrapolation), which is the correct behaviour for CDFs.
///
/// # Examples
///
/// ```
/// use numerics::interp::LinearInterpolator;
///
/// let f = LinearInterpolator::new(vec![0.0, 1.0, 2.0], vec![0.0, 0.5, 1.0]).unwrap();
/// assert_eq!(f.eval(0.5), 0.25);
/// assert_eq!(f.eval(-1.0), 0.0); // clamped
/// assert_eq!(f.eval(3.0), 1.0);  // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterpolator {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterpolator {
    /// Builds the interpolant.
    ///
    /// # Errors
    ///
    /// [`InterpError::BadInput`] for empty/mismatched inputs or NaN,
    /// [`InterpError::NotMonotone`] when `xs` is not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, InterpError> {
        if xs.is_empty() {
            return Err(InterpError::BadInput("empty grid".into()));
        }
        if xs.len() != ys.len() {
            return Err(InterpError::BadInput(format!(
                "{} x values vs {} y values",
                xs.len(),
                ys.len()
            )));
        }
        if xs.iter().chain(ys.iter()).any(|v| v.is_nan()) {
            return Err(InterpError::BadInput("NaN in grid".into()));
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(InterpError::NotMonotone);
        }
        Ok(LinearInterpolator { xs, ys })
    }

    /// Evaluates the interpolant at `x`, clamping outside the grid.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Index of the first grid point > x; the segment is [idx-1, idx].
        let idx = self.xs.partition_point(|&g| g <= x);
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The x grid.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y values.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Maximum absolute difference to another interpolant, measured on the
    /// union of both grids (where piecewise-linear functions attain their
    /// maximum difference).
    pub fn max_abs_difference(&self, other: &LinearInterpolator) -> f64 {
        let mut grid: Vec<f64> = self.xs.iter().chain(other.xs.iter()).copied().collect();
        grid.sort_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
        grid.dedup();
        grid.iter()
            .map(|&x| (self.eval(x) - other.eval(x)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn midpoint_interpolation() {
        let f = LinearInterpolator::new(vec![0.0, 2.0], vec![10.0, 20.0]).unwrap();
        assert_eq!(f.eval(1.0), 15.0);
        assert_eq!(f.eval(0.0), 10.0);
        assert_eq!(f.eval(2.0), 20.0);
        assert_eq!(f.xs(), &[0.0, 2.0]);
        assert_eq!(f.ys(), &[10.0, 20.0]);
    }

    #[test]
    fn clamping_outside_grid() {
        let f = LinearInterpolator::new(vec![1.0, 2.0], vec![5.0, 7.0]).unwrap();
        assert_eq!(f.eval(0.0), 5.0);
        assert_eq!(f.eval(100.0), 7.0);
    }

    #[test]
    fn singleton_grid_is_constant() {
        let f = LinearInterpolator::new(vec![1.0], vec![4.0]).unwrap();
        assert_eq!(f.eval(-3.0), 4.0);
        assert_eq!(f.eval(1.0), 4.0);
        assert_eq!(f.eval(9.0), 4.0);
    }

    #[test]
    fn bad_inputs() {
        assert!(matches!(
            LinearInterpolator::new(vec![], vec![]),
            Err(InterpError::BadInput(_))
        ));
        assert!(matches!(
            LinearInterpolator::new(vec![1.0], vec![1.0, 2.0]),
            Err(InterpError::BadInput(_))
        ));
        assert_eq!(
            LinearInterpolator::new(vec![1.0, 1.0], vec![0.0, 0.0]),
            Err(InterpError::NotMonotone)
        );
        assert_eq!(
            LinearInterpolator::new(vec![2.0, 1.0], vec![0.0, 0.0]),
            Err(InterpError::NotMonotone)
        );
        assert!(LinearInterpolator::new(vec![f64::NAN], vec![0.0]).is_err());
    }

    #[test]
    fn max_abs_difference_on_shifted_curves() {
        let f = LinearInterpolator::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        let g = LinearInterpolator::new(vec![0.0, 1.0], vec![0.25, 1.25]).unwrap();
        assert!((f.max_abs_difference(&g) - 0.25).abs() < 1e-12);
        assert_eq!(f.max_abs_difference(&f), 0.0);
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!InterpError::NotMonotone.to_string().is_empty());
        assert!(!InterpError::BadInput("x".into()).to_string().is_empty());
    }

    proptest! {
        #[test]
        fn interpolation_preserves_linear_functions(
            a in -5.0f64..5.0, b in -5.0f64..5.0, x in 0.0f64..10.0,
        ) {
            let xs: Vec<f64> = (0..=10).map(|i| i as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|&x| a * x + b).collect();
            let f = LinearInterpolator::new(xs, ys).unwrap();
            prop_assert!((f.eval(x) - (a * x + b)).abs() < 1e-9);
        }

        #[test]
        fn eval_between_neighbouring_ys(
            ys in proptest::collection::vec(0.0f64..1.0, 2..50), t in 0.0f64..1.0,
        ) {
            let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            let hi = xs[xs.len() - 1];
            let f = LinearInterpolator::new(xs, ys.clone()).unwrap();
            let x = t * hi;
            let v = f.eval(x);
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi_y = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-12 && v <= hi_y + 1e-12);
        }
    }
}
