//! Numerical substrate for the `kibam-rs` workspace.
//!
//! The battery-lifetime algorithms of Cloth, Jongerden & Haverkort (DSN'07)
//! rest on a small set of classical numerical tools. This crate implements
//! all of them from scratch, with no external dependencies:
//!
//! * [`linalg`] — dense matrices, LU decomposition, and a scaling-and-squaring
//!   matrix exponential used to validate uniformisation on small chains;
//! * [`ode`] — explicit ODE solvers (Euler, RK4, adaptive RKF45) for the
//!   KiBaM and modified-KiBaM differential equations;
//! * [`roots`] — bracketing root finders (bisection, Brent) for battery
//!   depletion times;
//! * [`special`] — `ln Γ`, log-factorials, log-binomials and Poisson
//!   probabilities, the raw material of Fox–Glynn and Sericola;
//! * [`stats`] — empirical CDFs, moments, Kolmogorov–Smirnov distances and
//!   binomial confidence intervals for simulation output analysis;
//! * [`interp`] — linear interpolation over sampled curves.
//!
//! # Examples
//!
//! ```
//! use numerics::roots::brent;
//!
//! // Solve x² = 2 on [0, 2].
//! let root = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
//! assert!((root - 2f64.sqrt()).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]

pub mod interp;
pub mod linalg;
pub mod ode;
pub mod roots;
pub mod special;
pub mod stats;

/// Relative/absolute closeness test used throughout the test-suites.
///
/// Returns `true` when `|a-b| <= atol + rtol·max(|a|,|b|)`.
///
/// # Examples
///
/// ```
/// assert!(numerics::close(1.0, 1.0 + 1e-13, 1e-9, 1e-9));
/// assert!(!numerics::close(1.0, 1.1, 1e-9, 1e-9));
/// ```
#[inline]
pub fn close(a: f64, b: f64, rtol: f64, atol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    #[test]
    fn close_basics() {
        assert!(super::close(0.0, 0.0, 0.0, 0.0));
        assert!(super::close(1e6, 1e6 * (1.0 + 1e-12), 1e-9, 0.0));
        assert!(!super::close(1.0, 2.0, 1e-3, 1e-3));
    }
}
