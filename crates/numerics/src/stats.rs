//! Simulation output analysis: empirical CDFs, moments, Kolmogorov–Smirnov
//! distances and binomial proportion confidence intervals.
//!
//! The paper's "Simulation" curves (Figs. 7, 8, 10) are empirical lifetime
//! CDFs over 1000 independent runs; this module provides the estimators the
//! harness uses to draw and compare them.

use std::fmt;

/// Errors from the statistics constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// A sample set was empty.
    Empty,
    /// A sample contained NaN.
    NotANumber,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Empty => write!(f, "empty sample set"),
            StatsError::NotANumber => write!(f, "sample contains NaN"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Mean of a sample slice.
///
/// # Errors
///
/// [`StatsError::Empty`] on empty input, [`StatsError::NotANumber`] on NaN.
pub fn mean(samples: &[f64]) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::Empty);
    }
    if samples.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NotANumber);
    }
    Ok(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Unbiased sample variance (n−1 denominator); zero for singleton samples.
///
/// # Errors
///
/// Same conditions as [`mean`].
pub fn variance(samples: &[f64]) -> Result<f64, StatsError> {
    let m = mean(samples)?;
    if samples.len() < 2 {
        return Ok(0.0);
    }
    let ss: f64 = samples.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (samples.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// Same conditions as [`mean`].
pub fn std_dev(samples: &[f64]) -> Result<f64, StatsError> {
    variance(samples).map(f64::sqrt)
}

/// An empirical cumulative distribution function over a finite sample.
///
/// # Examples
///
/// ```
/// use numerics::stats::EmpiricalCdf;
///
/// let cdf = EmpiricalCdf::new(vec![3.0, 1.0, 2.0]).unwrap();
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(1.0), 1.0 / 3.0);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the empirical CDF of `samples` (takes ownership and sorts).
    ///
    /// # Errors
    ///
    /// [`StatsError::Empty`] on empty input, [`StatsError::NotANumber`]
    /// on NaN.
    pub fn new(mut samples: Vec<f64>) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::Empty);
        }
        if samples.iter().any(|x| x.is_nan()) {
            return Err(StatsError::NotANumber);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ok(EmpiricalCdf { sorted: samples })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` iff there are no samples (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x) = (#samples ≤ x) / n`.
    pub fn eval(&self, x: f64) -> f64 {
        self.count_le(x) as f64 / self.sorted.len() as f64
    }

    /// The exact number of samples `≤ x` — the binomial success count
    /// behind [`EmpiricalCdf::eval`]. Confidence intervals must be built
    /// from this integer, not from a rounded `p̂·n` reconstruction
    /// (which is lossy near ties).
    pub fn count_le(&self, x: f64) -> usize {
        self.sorted.partition_point(|&s| s <= x)
    }

    /// The `q`-quantile (inverse CDF) for `q ∈ [0, 1]`, using the
    /// left-continuous inverse: smallest sample `x` with `F(x) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        debug_assert!(
            (0.0..=1.0).contains(&q),
            "quantile needs q in [0,1], got {q}"
        );
        if q <= 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("nonempty")
    }

    /// The sorted samples (jump points of the CDF).
    pub fn support(&self) -> &[f64] {
        &self.sorted
    }

    /// The Kolmogorov–Smirnov distance `sup_x |F_n(x) − G(x)|` against an
    /// arbitrary reference CDF `g`, evaluated at the jump points (both
    /// one-sided limits are considered).
    pub fn ks_distance(&self, g: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let gx = g(x);
            let before = i as f64 / n;
            let after = (i + 1) as f64 / n;
            d = d.max((gx - before).abs()).max((after - gx).abs());
        }
        d
    }
}

/// Two-sided `(1−α)` Wald confidence half-width for a binomial proportion
/// estimated by `successes/trials`.
///
/// Returns 0 for `trials = 0`. **Degenerates to zero width at
/// `p̂ ∈ {0, 1}`** — a 0-out-of-n observation is reported as "exactly 0
/// with no uncertainty", which is wrong for every finite `n`. The
/// simulation error bars therefore use [`wilson_ci_half_width`]; the Wald
/// form is kept as the textbook reference (and for callers that need the
/// classical interval).
pub fn binomial_ci_half_width(successes: u64, trials: u64, z: f64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    z * (p * (1.0 - p) / n).sqrt()
}

/// Two-sided `(1−α)` **Wilson score** confidence half-width for a
/// binomial proportion estimated by `successes/trials` — the error bars
/// on every simulated `Pr[battery empty at t]` point.
///
/// Unlike the Wald interval, the Wilson interval stays strictly positive
/// at `p̂ ∈ {0, 1}` (`half-width → z²/(2n)/(1 + z²/n)`), never leaves
/// `[0, 1]`, and keeps close-to-nominal coverage at small `n` — exactly
/// the regimes a lifetime curve hits at its head (`p̂ = 0` before the
/// first depletion) and tail (`p̂ = 1` once every run depleted).
///
/// The interval is centred at `(p̂ + z²/2n) / (1 + z²/n)`, not at `p̂`;
/// this function returns its half-width
/// `z/(1 + z²/n) · √(p̂(1−p̂)/n + z²/4n²)`. Returns 0 for `trials = 0`.
pub fn wilson_ci_half_width(successes: u64, trials: u64, z: f64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    debug_assert!(successes <= trials, "{successes} successes of {trials}");
    let n = trials as f64;
    let p = (successes.min(trials)) as f64 / n;
    let z2 = z * z;
    z / (1.0 + z2 / n) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt()
}

/// The 97.5 % standard-normal quantile, for 95 % two-sided intervals.
pub const Z_95: f64 = 1.959963984540054;

/// Streaming (single-pass) sample moments: count, mean, min/max and the
/// centred sum of squares, updated by Welford's recurrence and mergeable
/// by Chan's pairwise rule — the `O(1)`-memory replacement for collecting
/// samples into a `Vec` first.
///
/// Merging is **deterministic**: `a.merge(&b)` is a fixed sequence of
/// floating-point operations, so folding the same partition of a sample
/// in the same order always reproduces the same bits (the parallel
/// simulation engine relies on this for its thread-count-independence
/// guarantee). Merging is *not* bit-wise associative — reorder or
/// repartition the stream and last bits may move, like any other
/// floating-point summation.
///
/// # Examples
///
/// ```
/// use numerics::stats::StreamingMoments;
///
/// let mut m = StreamingMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert_eq!(m.mean(), Some(5.0));
/// assert!((m.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    /// Centred sum of squares `Σ (x − mean)²` (a.k.a. Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingMoments {
    fn default() -> Self {
        // Not derivable: min/max must start at ±∞, not 0.0, or the
        // first pushed sample loses the extrema race.
        StreamingMoments::new()
    }
}

impl StreamingMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample in (Welford's recurrence).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on NaN (a NaN would silently poison every
    /// later estimate).
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "streaming moments fed NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator in (Chan's parallel update). The
    /// result equals folding `other`'s samples after `self`'s, up to
    /// floating-point reassociation; the operation itself is
    /// deterministic bit for bit.
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (n−1 denominator; 0 for singletons,
    /// `None` when empty) — matches [`variance`] on the same samples.
    pub fn variance(&self) -> Option<f64> {
        match self.count {
            0 => None,
            1 => Some(0.0),
            n => Some(self.m2 / (n - 1) as f64),
        }
    }

    /// Sample standard deviation (`None` when empty).
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert_eq!(mean(&[]), Err(StatsError::Empty));
        assert_eq!(mean(&[f64::NAN]), Err(StatsError::NotANumber));
        assert_eq!(EmpiricalCdf::new(vec![]).unwrap_err(), StatsError::Empty);
        assert_eq!(
            EmpiricalCdf::new(vec![1.0, f64::NAN]).unwrap_err(),
            StatsError::NotANumber
        );
    }

    #[test]
    fn singleton_variance_zero() {
        assert_eq!(variance(&[3.0]).unwrap(), 0.0);
    }

    #[test]
    fn cdf_step_values() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(1.5), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(9.0), 1.0);
        assert_eq!(cdf.len(), 4);
        assert!(!cdf.is_empty());
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 4.0);
        assert_eq!(cdf.support(), &[1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn quantiles() {
        let cdf = EmpiricalCdf::new((1..=100).map(|i| i as f64).collect()).unwrap();
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(0.95), 95.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.mean(), 50.5);
    }

    #[test]
    fn ks_distance_against_self_is_small() {
        let cdf = EmpiricalCdf::new((1..=1000).map(|i| i as f64 / 1000.0).collect()).unwrap();
        // Against the uniform CDF on [0,1] the distance is ≤ 1/n.
        let d = cdf.ks_distance(|x| x.clamp(0.0, 1.0));
        assert!(d <= 1.0 / 1000.0 + 1e-12, "d = {d}");
    }

    #[test]
    fn ks_distance_detects_shift() {
        let cdf = EmpiricalCdf::new((1..=100).map(|i| i as f64 / 100.0).collect()).unwrap();
        let d = cdf.ks_distance(|x| (x - 0.3).clamp(0.0, 1.0));
        assert!(d > 0.25, "d = {d}");
    }

    #[test]
    fn binomial_ci() {
        assert_eq!(binomial_ci_half_width(0, 0, Z_95), 0.0);
        // p = 0.5, n = 100 → half width ≈ 1.96 · 0.05 = 0.098.
        let hw = binomial_ci_half_width(50, 100, Z_95);
        assert!((hw - 0.0979981992).abs() < 1e-6);
        // Degenerate proportions give zero width — the Wald failure mode
        // the Wilson interval exists to fix.
        assert_eq!(binomial_ci_half_width(100, 100, Z_95), 0.0);
    }

    #[test]
    fn wilson_ci_stays_positive_at_degenerate_proportions() {
        assert_eq!(wilson_ci_half_width(0, 0, Z_95), 0.0);
        // At p̂ ∈ {0, 1} the half-width is z²/(2n)/(1 + z²/n) > 0.
        let n = 100u64;
        let expect = Z_95 * Z_95 / (2.0 * n as f64) / (1.0 + Z_95 * Z_95 / n as f64);
        for successes in [0, n] {
            let hw = wilson_ci_half_width(successes, n, Z_95);
            assert!((hw - expect).abs() < 1e-12, "p̂ degenerate: {hw}");
            assert!(hw > 0.0);
        }
        // Mid-range it agrees with Wald to O(1/n).
        let wald = binomial_ci_half_width(500, 1000, Z_95);
        let wilson = wilson_ci_half_width(500, 1000, Z_95);
        assert!((wald - wilson).abs() < 2e-4, "{wald} vs {wilson}");
        // The interval never leaves [0, 1]: centre ± hw fits.
        let n = 10u64;
        for s in 0..=n {
            let p = s as f64 / n as f64;
            let z2 = Z_95 * Z_95;
            let centre = (p + z2 / (2.0 * n as f64)) / (1.0 + z2 / n as f64);
            let hw = wilson_ci_half_width(s, n, Z_95);
            assert!(centre - hw >= -1e-12 && centre + hw <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn count_le_is_the_exact_success_count() {
        let cdf = EmpiricalCdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(cdf.count_le(0.5), 0);
        assert_eq!(cdf.count_le(1.0), 1);
        assert_eq!(cdf.count_le(2.0), 3);
        assert_eq!(cdf.count_le(3.9), 3);
        assert_eq!(cdf.count_le(4.0), 4);
    }

    #[test]
    fn streaming_moments_match_batch_estimators() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = StreamingMoments::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.variance(), None);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
        for x in xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((m.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-12);
        assert!((m.std_dev().unwrap() - std_dev(&xs).unwrap()).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
        // Singletons have zero variance, matching `variance`.
        let mut one = StreamingMoments::new();
        one.push(3.0);
        assert_eq!(one.variance(), Some(0.0));
    }

    #[test]
    fn streaming_moments_merge_is_deterministic_and_accurate() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let mut whole = StreamingMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        // Merge a fixed partition twice: bit-identical both times.
        let merge_parts = |chunk: usize| {
            let mut acc = StreamingMoments::new();
            for part in xs.chunks(chunk) {
                let mut p = StreamingMoments::new();
                for &x in part {
                    p.push(x);
                }
                acc.merge(&p);
            }
            acc
        };
        assert_eq!(merge_parts(64), merge_parts(64));
        // And close to the un-partitioned fold.
        let merged = merge_parts(64);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((merged.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        // Merging an empty accumulator is the identity.
        let mut m = merge_parts(128);
        let before = m.clone();
        m.merge(&StreamingMoments::new());
        assert_eq!(m, before);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone_and_bounded(mut xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let cdf = EmpiricalCdf::new(xs.clone()).unwrap();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for x in (-10..=10).map(|i| i as f64 * 100.0) {
                let v = cdf.eval(x);
                prop_assert!((0.0..=1.0).contains(&v));
                prop_assert!(v >= prev);
                prev = v;
            }
            prop_assert_eq!(cdf.eval(f64::INFINITY), 1.0);
        }

        #[test]
        fn quantile_inverts_cdf(xs in proptest::collection::vec(0.0f64..1e3, 1..100), q in 0.01f64..1.0) {
            let cdf = EmpiricalCdf::new(xs).unwrap();
            let x = cdf.quantile(q);
            // F(x) ≥ q by definition of the left-continuous inverse.
            prop_assert!(cdf.eval(x) + 1e-12 >= q);
        }

        #[test]
        fn mean_within_range(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let m = mean(&xs).unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
