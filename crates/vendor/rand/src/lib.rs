//! Vendored shim for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random`] for `f64`/`u64`/`u32`.
//!
//! The build environment has no registry access, so the real `rand`
//! cannot be fetched; this shim keeps the same call sites compiling and
//! behaving sensibly. The generator is xoshiro256++ seeded through
//! SplitMix64 — the standard small-state generator with excellent
//! statistical quality, deterministic and identical on every platform
//! (which is all the simulation layer requires: the paper's replications
//! must be exactly reproducible from their seeds).
//!
//! Not cryptographically secure; not stream-compatible with the real
//! `rand::rngs::StdRng` (callers only rely on determinism, not on
//! specific streams).

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution: uniform over the
/// full domain for integers, uniform in `[0, 1)` for floats.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Extension trait with the generic sampling front-end (`rand 1.0`'s
/// spelling of `Rng::gen`).
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion: decorrelates consecutive seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn u32_and_f32_paths() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut any_high = false;
        for _ in 0..100 {
            let v: u32 = rng.random();
            any_high |= v > u32::MAX / 2;
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(any_high);
    }
}
