//! Vendored shim for the subset of the `proptest` API this workspace
//! uses. The build environment has no registry access, so the real
//! `proptest` cannot be fetched.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//!   multiple `#[test]` functions per block, and `pattern in strategy`
//!   arguments (including `mut` bindings);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * range strategies over `f64`/`u32`/`u64`/`usize`/`i32`
//!   (`a..b`, `a..=b`), tuple strategies up to arity 3, and
//!   [`collection::vec`] with a fixed or ranged length.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (fully deterministic, no `PROPTEST_` env handling) and
//! there is **no shrinking** — a failure reports the raw inputs of the
//! failing case instead of a minimised one.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Number of cases to run per property (default 64; the real crate's 256
/// is overkill for the deterministic generator used here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Cases executed per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs: resample, don't count.
    Reject,
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "inputs rejected by prop_assume!"),
        }
    }
}

/// Deterministic per-test random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a reproducible stream from the test's name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable, spread-out seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)` without modulo bias worth caring
    /// about at test sample sizes.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always yields a clone of the same value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Asserts inside a [`proptest!`] body without panicking the harness
/// thread directly (the macro reports inputs alongside the message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Rejects the current inputs (the case is resampled, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The property-test declaration macro. See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$attr:meta])*
     fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut done: u32 = 0;
            let mut attempts: u32 = 0;
            while done < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(100).max(1000) {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} attempts)",
                        stringify!($name), done, attempts
                    );
                }
                let mut inputs = String::new();
                $(
                    let sampled = $crate::Strategy::sample(&($strat), &mut rng);
                    inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), &sampled));
                    let $arg = sampled;
                )+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => done += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}\n  inputs: {}",
                            stringify!($name), done, msg, inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let f = Strategy::sample(&(1.5f64..2.5), &mut rng);
            assert!((1.5..2.5).contains(&f));
            let u = Strategy::sample(&(3u32..=8), &mut rng);
            assert!((3..=8).contains(&u));
            let n = Strategy::sample(&(-4i32..3), &mut rng);
            assert!((-4..3).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::deterministic("vecs");
        for _ in 0..200 {
            let v = Strategy::sample(&collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let fixed = Strategy::sample(&collection::vec(0u32..9, 7), &mut rng);
            assert_eq!(fixed.len(), 7);
        }
    }

    #[test]
    fn tuples_and_just() {
        let mut rng = TestRng::deterministic("tuples");
        let (a, b, c) = Strategy::sample(&(0u64..5, 1.0f64..2.0, Just("x")), &mut rng);
        assert!(a < 5);
        assert!((1.0..2.0).contains(&b));
        assert_eq!(c, "x");
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, `mut` bindings, assume + asserts.
        #[test]
        fn macro_roundtrip(mut xs in collection::vec(-5.0f64..5.0, 1..10), k in 1u32..4) {
            prop_assume!(!xs.is_empty());
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(xs.first().unwrap() <= xs.last().unwrap());
            prop_assert_eq!(k.min(3), k);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_reports_inputs() {
        proptest! {
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x = {} is not negative", x);
            }
        }
        always_fails();
    }
}
