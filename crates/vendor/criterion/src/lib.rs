//! Vendored shim for the subset of the `criterion` benchmarking API this
//! workspace uses. The build environment has no registry access, so the
//! real `criterion` cannot be fetched.
//!
//! The shim keeps the same bench sources compiling and produces honest
//! wall-clock measurements: each benchmark is warmed up, then timed in
//! batches until a small time budget is spent, and the mean / best batch
//! time per iteration is reported on stdout. No statistics, plots or
//! regression baselines — the numbers are for relative comparison on one
//! machine in one run, which is how the harness uses them.
//!
//! Environment knobs:
//!
//! * `BENCH_BUDGET_MS` — per-benchmark measurement budget in
//!   milliseconds (default 300).
//! * Command-line filter — `cargo bench -- <substring>` runs only the
//!   benchmarks whose id contains the substring (criterion's behaviour).

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(fun), Some(p)) => write!(f, "{fun}/{p}"),
            (Some(fun), None) => write!(f, "{fun}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Throughput annotation (reported alongside the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    /// Mean seconds per iteration of the best measured batch.
    best_s_per_iter: f64,
    iterations_done: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            best_s_per_iter: f64::INFINITY,
            iterations_done: 0,
            budget,
        }
    }

    /// Times `routine`, repeatedly, until the budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: one timed call decides the batch size.
        let t0 = Instant::now();
        std_black_box(routine());
        let first = t0.elapsed();
        self.iterations_done = 1;
        let batch = if first.as_nanos() == 0 {
            1024
        } else {
            // Aim for batches of ~1/10 of the budget, at least one call.
            ((self.budget.as_nanos() / 10).saturating_div(first.as_nanos().max(1)))
                .clamp(1, 1 << 20) as u64
        };
        // Best time comes from *batched* measurements only: a single
        // warm-up call can read 0 on coarse timers, which would lock
        // the minimum at zero for the whole benchmark.
        let started = Instant::now();
        let mut best = f64::INFINITY;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let per_iter = t.elapsed().as_secs_f64() / batch as f64;
            self.iterations_done += batch;
            if per_iter < best {
                best = per_iter;
            }
            if started.elapsed() >= self.budget {
                break;
            }
        }
        self.best_s_per_iter = best;
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

fn budget_from_env() -> Duration {
    std::env::var("BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(300))
}

fn cli_filter() -> Option<String> {
    // `cargo bench -- foo` passes `foo` through; ignore `--bench`-style
    // flags that cargo itself forwards.
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// Top-level benchmark driver (a minimal stand-in for
/// `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: budget_from_env(),
            filter: cli_filter(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let id = name.to_owned();
        self.run_one(&id, None, &mut routine);
        self
    }

    fn run_one<R: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        routine: &mut R,
    ) {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return;
            }
        }
        let mut b = Bencher::new(self.budget);
        routine(&mut b);
        let time = b.best_s_per_iter;
        let mut line = format!("{id:<60} time: [{}]", format_time(time));
        match throughput {
            Some(Throughput::Elements(n)) if time > 0.0 => {
                let per_s = n as f64 / time;
                if per_s >= 1e6 {
                    line.push_str(&format!("  thrpt: [{:.3} Melem/s]", per_s / 1e6));
                } else {
                    line.push_str(&format!("  thrpt: [{per_s:.2} elem/s]"));
                }
            }
            Some(Throughput::Bytes(n)) if time > 0.0 => {
                line.push_str(&format!(
                    "  thrpt: [{:.3} MiB/s]",
                    n as f64 / time / (1 << 20) as f64
                ));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Criterion's CLI configuration hook; a no-op here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Criterion's statistical sample count; accepted and ignored (the
    /// shim's budget is time-based).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion's measurement window; scales the shim's budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.budget = d.min(Duration::from_secs(5));
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, R: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, &mut routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion
            .run_one(&full, throughput, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group (purely cosmetic here).
    pub fn finish(self) {}
}

/// Declares a group function that runs each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.best_s_per_iter.is_finite());
        assert!(b.best_s_per_iter >= 0.0);
        assert!(b.iterations_done >= 1);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 5).to_string(), "f/5");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(3.2e-9).ends_with("ns"));
        assert!(format_time(4.5e-6).ends_with("µs"));
        assert!(format_time(7.8e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with(" s"));
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_function("inner", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
            filter: Some("zzz".into()),
        };
        let mut ran = false;
        c.bench_function("abc", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }
}
