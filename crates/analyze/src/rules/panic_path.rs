//! Rule `panic-path`: the request paths must be panic-free.
//!
//! In the configured files (the network front and the resident
//! service), outside `#[cfg(test)]` items, the following are findings
//! unless the line (or the comment run directly above it) carries
//! `// PANIC-OK: <reason>`:
//!
//! * `.unwrap()` / `.expect(…)` method calls,
//! * `panic! / todo! / unreachable! / unimplemented!` macros,
//! * slice/array indexing (`buf[i]`, `&bytes[a..b]`) — every index
//!   expression can panic on a bad bound.
//!
//! The indexing detector is lexical: a `[` directly preceded by an
//! identifier, `)`, `]` or `?` is an index expression; a `[` after an
//! operator, `=`, `(` or a keyword is an array literal, type or
//! attribute and is ignored. Keywords that can legally precede an
//! array literal (`return [0; 4]`, `in [a, b]`…) are filtered
//! explicitly.

use super::{Finding, RULE_PANIC_PATH};
use crate::config::{path_matches, Config};
use crate::lexer::TokKind;
use crate::source::SourceFile;

const PANIC_MACROS: &[&str] = &["panic", "todo", "unreachable", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Keywords that may directly precede a `[` that is *not* an index
/// expression (array literals/types in expression position).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "in", "if", "else", "match", "while", "loop", "break", "as", "mut", "ref", "move",
    "let", "const", "static", "dyn", "impl", "where", "for", "fn", "use", "pub", "crate", "box",
    "await", "yield", "unsafe",
];

const ANNOTATION: &str = "PANIC-OK:";
const LOOKBACK: u32 = 2;

pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !path_matches(&file.path, &config.panic_paths) {
            continue;
        }
        let tokens = file.tokens();
        for (i, token) in tokens.iter().enumerate() {
            if file.in_test(token.line) {
                continue;
            }
            let mut report = |line: u32, message: String| {
                if !file.lexed.has_marker(line, LOOKBACK, ANNOTATION) {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line,
                        rule: RULE_PANIC_PATH,
                        message,
                        hint: "return a typed error (or use .get()/try_into/checked ops); \
                               if provably unreachable, justify with `// PANIC-OK: <reason>`"
                            .to_string(),
                    });
                }
            };
            match token.kind {
                TokKind::Ident => {
                    // `.unwrap(` / `.expect(` — a method *call*, so the
                    // dot before and the paren after are both required
                    // (a local `fn expect` definition does not match).
                    if PANIC_METHODS.contains(&token.text.as_str())
                        && i > 0
                        && tokens[i - 1].text == "."
                        && tokens.get(i + 1).is_some_and(|t| t.text == "(")
                    {
                        report(
                            token.line,
                            format!("`.{}()` on the request path", token.text),
                        );
                    }
                    // `panic!(` and friends.
                    if PANIC_MACROS.contains(&token.text.as_str())
                        && tokens.get(i + 1).is_some_and(|t| t.text == "!")
                        // `core::panic` in a `use` or path position still
                        // only matters when invoked as a macro.
                        && tokens.get(i + 2).is_some_and(|t| t.text == "(" || t.text == "[")
                    {
                        report(token.line, format!("`{}!` on the request path", token.text));
                    }
                }
                TokKind::Punct if token.text == "[" => {
                    let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
                        continue;
                    };
                    let is_index = match prev.kind {
                        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                        _ => false,
                    };
                    if is_index {
                        report(
                            token.line,
                            "slice/array indexing can panic on the request path".to_string(),
                        );
                    }
                }
                _ => {}
            }
        }
    }
    findings
}
