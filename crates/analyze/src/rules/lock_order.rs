//! Rule `lock-order`: potential deadlocks from inconsistent lock
//! acquisition order.
//!
//! ## Model
//!
//! The rule extracts, per function, the sequence of
//! `Mutex::lock()` / `RwLock::read()` / `RwLock::write()` acquisitions
//! (zero-argument calls only, so `io::Read::read(&mut buf)` never
//! matches). A lock is named by the *text* of its receiver chain
//! (`self.done`, `slot`, `inner.cache`); a bare `self…` receiver is
//! qualified by the surrounding `impl` type (`Flight::self.done`), and
//! the config's `alias` table unifies spellings that name the same
//! mutex (`FlightGuard::self.service` and `LifetimeService::self` are
//! one lock). Guard lifetime is approximated:
//!
//! * `let g = x.lock();` holds until the end of the binding's block or
//!   an explicit `drop(g)`,
//! * any other acquisition (`x.lock().field += 1;`, a `match`
//!   scrutinee) is a temporary released at the statement's `;`.
//!
//! Acquiring `B` while `A` is held contributes a directed edge `A → B`
//! to one workspace-wide graph; every cycle is reported at each
//! participating edge, and acquiring a lock textually identical to one
//! already held is reported as re-entrant (self-deadlock for a
//! `Mutex`).
//!
//! ## False-positive policy
//!
//! Textual naming over-approximates (two different locals named `slot`
//! unify) and the block-scoped guard model under-approximates guards
//! moved out of their block. Edges reviewed as benign are suppressed
//! via `[rule.lock-order] ignore = ["A->B"]` with a justifying comment
//! in analyze.toml — never by weakening the model. See DESIGN.md §14.

use super::{receiver_chain, Finding, RULE_LOCK_ORDER};
use crate::config::{path_matches, Config};
use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One observed `held → acquired` pair.
#[derive(Debug, Clone)]
struct Edge {
    held: String,
    acquired: String,
    file: String,
    line: u32,
    function: String,
}

pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    for file in files {
        if !path_matches(&file.path, &config.lock_paths) {
            continue;
        }
        scan_file(file, config, &mut edges, &mut findings);
    }
    let ignored: BTreeSet<(String, String)> = config.lock_ignored_edges.iter().cloned().collect();
    edges.retain(|e| !ignored.contains(&(e.held.clone(), e.acquired.clone())));
    report_cycles(&edges, &mut findings);
    findings
}

/// A lock currently held during the scan of one function.
struct Held {
    name: String,
    /// Brace depth at the acquisition: let-bound guards release when
    /// the depth drops below it, temporaries at the next `;` on it.
    depth: usize,
    /// The guard binding (`let g = …`), when there is one.
    guard: Option<String>,
    /// Temporary (non-`let`) acquisition.
    temporary: bool,
}

fn scan_file(
    file: &SourceFile,
    config: &Config,
    edges: &mut Vec<Edge>,
    findings: &mut Vec<Finding>,
) {
    let tokens = file.tokens();
    let alias: BTreeMap<&str, &str> = config
        .lock_aliases
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();

    let mut depth = 0usize;
    // (impl type name, depth it opened at)
    let mut impls: Vec<(String, usize)> = Vec::new();
    // (fn name, depth its body opened at)
    let mut fns: Vec<(String, usize)> = Vec::new();
    let mut held: Vec<Held> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                while impls.last().is_some_and(|(_, d)| *d > depth) {
                    impls.pop();
                }
                // A function's guards all release at its body's end.
                while fns.last().is_some_and(|(_, d)| *d > depth) {
                    fns.pop();
                }
                held.retain(|h| h.depth <= depth);
            }
            (TokKind::Punct, ";") => {
                held.retain(|h| !(h.temporary && h.depth == depth));
            }
            (TokKind::Ident, "impl") => {
                if let Some(name) = impl_type_name(tokens, i) {
                    // The body opens at depth+1 once its `{` is seen;
                    // record the depth it will live at.
                    impls.push((name, depth + 1));
                }
            }
            (TokKind::Ident, "fn") => {
                if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    fns.push((name.text.clone(), depth + 1));
                }
            }
            (TokKind::Ident, "drop")
                // `drop(guard)` releases the named let-bound guard.
                if tokens.get(i + 1).is_some_and(|t| t.text == "(")
                    && tokens.get(i + 3).is_some_and(|t| t.text == ")")
                => {
                    if let Some(g) = tokens.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                        held.retain(|h| h.guard.as_deref() != Some(g.text.as_str()));
                    }
                }
            (TokKind::Ident, m) if ACQUIRE_METHODS.contains(&m) => {
                // `.lock()` / `.read()` / `.write()` — zero-arg call
                // with a dot before it.
                let is_acquire = i > 0
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|t| t.text == "(")
                    && tokens.get(i + 2).is_some_and(|t| t.text == ")");
                if !is_acquire {
                    i += 1;
                    continue;
                }
                let Some((chain, chain_start)) = receiver_chain(tokens, i - 1) else {
                    i += 1;
                    continue;
                };
                let qualified = qualify(&chain, &impls);
                let name = alias
                    .get(qualified.as_str())
                    .map_or(qualified.as_str(), |v| v)
                    .to_string();
                let function = fns.last().map_or("<file>", |(n, _)| n.as_str()).to_string();

                // Re-entrant acquisition of a held lock: immediate
                // finding (not an edge — the cycle is length 1).
                if held.iter().any(|h| h.name == name) {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: t.line,
                        rule: RULE_LOCK_ORDER,
                        message: format!(
                            "lock `{name}` acquired in `{function}` while already held \
                             (re-entrant Mutex lock deadlocks)"
                        ),
                        hint: "drop the first guard before re-acquiring, or thread the \
                               guard through instead of re-locking"
                            .to_string(),
                    });
                } else {
                    for h in &held {
                        edges.push(Edge {
                            held: h.name.clone(),
                            acquired: name.clone(),
                            file: file.path.clone(),
                            line: t.line,
                            function: function.clone(),
                        });
                    }
                }

                let guard = let_binding(tokens, chain_start);
                held.push(Held {
                    name,
                    depth,
                    temporary: guard.is_none(),
                    guard,
                });
            }
            _ => {}
        }
        i += 1;
    }
}

/// The guard identifier when the acquisition at `chain_start` is the
/// right-hand side of a `let [mut] g = <chain>.lock()` binding.
fn let_binding(tokens: &[Token], chain_start: usize) -> Option<String> {
    let mut j = chain_start.checked_sub(1)?;
    if tokens[j].text != "=" {
        return None;
    }
    j = j.checked_sub(1)?;
    let ident = tokens.get(j).filter(|t| t.kind == TokKind::Ident)?;
    let mut k = j.checked_sub(1)?;
    if tokens[k].text == "mut" {
        k = k.checked_sub(1)?;
    }
    (tokens[k].text == "let").then(|| ident.text.clone())
}

/// Qualifies a `self…` receiver with the innermost `impl` type.
fn qualify(chain: &str, impls: &[(String, usize)]) -> String {
    if chain == "self" || chain.starts_with("self.") {
        if let Some((ty, _)) = impls.last() {
            return format!("{ty}::{chain}");
        }
    }
    chain.to_string()
}

/// The type name of an `impl` header starting at token `at` (which is
/// the `impl` ident): the first identifier outside angle brackets
/// after `for` when present, otherwise the first one after `impl`.
fn impl_type_name(tokens: &[Token], at: usize) -> Option<String> {
    let mut angle = 0isize;
    let mut after_for = false;
    let mut candidate: Option<&str> = None;
    for t in tokens.iter().skip(at + 1) {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Punct, "{") | (TokKind::Punct, ";") if angle == 0 => break,
            (TokKind::Ident, "where") if angle == 0 => break,
            (TokKind::Ident, "for") if angle == 0 => {
                after_for = true;
                candidate = None;
            }
            (TokKind::Ident, name) if angle == 0 && (candidate.is_none() || after_for) => {
                candidate = Some(name);
                after_for = false;
            }
            _ => {}
        }
    }
    candidate.map(str::to_string)
}

/// Finds directed cycles in the edge set and reports each one once,
/// anchored at its lexically first edge.
fn report_cycles(edges: &[Edge], findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str()).or_default().push(e);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &nodes {
        // DFS from each node, only accepting cycles that return to it;
        // dedup by the cycle's canonical (sorted-rotation) node list.
        let mut stack: Vec<(&str, Vec<&Edge>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            if path.len() > nodes.len() {
                continue;
            }
            for e in adj.get(node).into_iter().flatten() {
                if e.acquired == start {
                    let mut cycle: Vec<&Edge> = path.clone();
                    cycle.push(e);
                    let mut names: Vec<String> = cycle.iter().map(|e| e.held.clone()).collect();
                    names.sort();
                    if !reported.insert(names) {
                        continue;
                    }
                    let order = cycle
                        .iter()
                        .map(|e| {
                            format!(
                                "`{}` → `{}` ({}:{} in `{}`)",
                                e.held, e.acquired, e.file, e.line, e.function
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    let anchor = cycle
                        .iter()
                        .min_by_key(|e| (&e.file, e.line))
                        .expect("cycle has at least one edge");
                    findings.push(Finding {
                        file: anchor.file.clone(),
                        line: anchor.line,
                        rule: RULE_LOCK_ORDER,
                        message: format!("lock-order cycle (potential deadlock): {order}"),
                        hint: "impose one global acquisition order (or drop the held guard \
                               first); a reviewed false positive can be suppressed via \
                               [rule.lock-order] ignore in analyze.toml"
                            .to_string(),
                    });
                } else if !path.iter().any(|p| p.held == e.acquired) && e.acquired != e.held {
                    let mut next = path.clone();
                    next.push(e);
                    stack.push((e.acquired.as_str(), next));
                }
            }
        }
    }
}
