//! Rule `lossy-cast`: `as` casts to integer (and `f32`) types are
//! denied in the wire/snapshot parser files.
//!
//! An `as` cast silently truncates, wraps or drops sign — exactly the
//! failure mode a trust-nothing parser exists to exclude. In the
//! configured `paths` (outside `#[cfg(test)]`), every `as <numeric>`
//! is a finding unless the line carries `// CAST-OK: <reason>` (the
//! reviewed spelling for provably lossless widenings like
//! `usize → u64`). `as f64` is exempt: the wire format's counters lose
//! no integer below 2⁵³ and the alternative spellings are noisier than
//! the risk.

use super::{Finding, RULE_LOSSY_CAST};
use crate::config::{path_matches, Config};
use crate::lexer::TokKind;
use crate::source::SourceFile;

const NUMERIC_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

const ANNOTATION: &str = "CAST-OK:";
const LOOKBACK: u32 = 2;

pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !path_matches(&file.path, &config.cast_paths) {
            continue;
        }
        let tokens = file.tokens();
        for (i, token) in tokens.iter().enumerate() {
            if token.kind != TokKind::Ident || token.text != "as" || file.in_test(token.line) {
                continue;
            }
            let Some(target) = tokens.get(i + 1) else {
                continue;
            };
            if target.kind != TokKind::Ident || !NUMERIC_TARGETS.contains(&target.text.as_str()) {
                continue;
            }
            if file.lexed.has_marker(token.line, LOOKBACK, ANNOTATION) {
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line: token.line,
                rule: RULE_LOSSY_CAST,
                message: format!(
                    "lossy `as {}` cast in a parser/serialiser file",
                    target.text
                ),
                hint: "use TryFrom/From with a typed error on overflow; annotate provably \
                       lossless widenings with `// CAST-OK: <reason>`"
                    .to_string(),
            });
        }
    }
    findings
}
