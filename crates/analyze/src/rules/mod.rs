//! The rule catalogue. Each rule consumes the lexed [`SourceFile`]s
//! and emits [`Finding`]s; DESIGN.md §14 documents every rule's model
//! and false-positive policy.

use crate::config::Config;
use crate::source::SourceFile;
use std::fmt;

pub mod determinism;
pub mod lock_order;
pub mod lossy_cast;
pub mod panic_path;
pub mod unsafe_safety;

/// Stable rule identifiers: these are contract — CI logs, fixture
/// assertions and annotation docs all refer to them by name.
pub const RULE_UNSAFE_SAFETY: &str = "unsafe-safety";
pub const RULE_PANIC_PATH: &str = "panic-path";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_LOSSY_CAST: &str = "lossy-cast";

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// One of the `RULE_*` identifiers.
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to annotate a reviewed exception).
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    fix: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Runs every rule over `files`, returning findings sorted by
/// (file, line, rule) so output and fixtures are stable.
pub fn run_all(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(unsafe_safety::check(files, config));
    findings.extend(panic_path::check(files, config));
    findings.extend(lock_order::check(files, config));
    findings.extend(determinism::check(files, config));
    findings.extend(lossy_cast::check(files, config));
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// Walks a `recv.field.sub` receiver chain *backwards* from the token
/// just before the method-call dot at `dot`, returning the dotted text
/// (e.g. `self.service`) and the index of the chain's first token.
/// Chains are identifiers and numeric tuple indexes joined by `.`;
/// anything else (a `)`, an operator) ends the walk.
pub(crate) fn receiver_chain(
    tokens: &[crate::lexer::Token],
    dot: usize,
) -> Option<(String, usize)> {
    use crate::lexer::TokKind;
    let mut parts: Vec<&str> = Vec::new();
    let mut i = dot; // index of the `.` punct
    loop {
        let prev = i.checked_sub(1)?;
        let t = &tokens[prev];
        let is_segment = match t.kind {
            TokKind::Ident => true,
            TokKind::Literal => t.text.bytes().all(|b| b.is_ascii_digit()) && !t.text.is_empty(),
            _ => false,
        };
        if !is_segment {
            return None;
        }
        parts.push(&t.text);
        // Another `.`-joined segment before this one?
        match prev.checked_sub(1) {
            Some(pp) if tokens[pp].kind == TokKind::Punct && tokens[pp].text == "." => i = pp,
            _ => {
                parts.reverse();
                return Some((parts.join("."), prev));
            }
        }
    }
}
