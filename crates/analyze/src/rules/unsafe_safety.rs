//! Rule `unsafe-safety`: every `unsafe` block, impl or fn must carry a
//! justification, and `unsafe` may only appear in the audited
//! inventory files at all.
//!
//! A justification is a comment containing `SAFETY:` (the block/impl
//! convention) or `# Safety` (the rustdoc contract section on an
//! `unsafe fn`) that touches the `lookback` lines above the `unsafe`
//! token. The window exists because the comment often annotates the
//! *statement* the unsafe expression sits in, one or two lines above
//! the token itself.

use super::{Finding, RULE_UNSAFE_SAFETY};
use crate::config::{path_matches, Config};
use crate::lexer::TokKind;
use crate::source::SourceFile;

pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        for token in file.tokens() {
            if token.kind != TokKind::Ident || token.text != "unsafe" {
                continue;
            }
            if !path_matches(&file.path, &config.unsafe_allowed_files) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: token.line,
                    rule: RULE_UNSAFE_SAFETY,
                    message: "`unsafe` outside the audited inventory files".to_string(),
                    hint: "keep unsafe code in the audited hot spots, or extend \
                           [rule.unsafe-safety] allowed_files in analyze.toml with a review"
                        .to_string(),
                });
                continue;
            }
            let lb = config.unsafe_lookback;
            if file.lexed.has_marker(token.line, lb, "SAFETY:")
                || file.lexed.has_marker(token.line, lb, "# Safety")
            {
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line: token.line,
                rule: RULE_UNSAFE_SAFETY,
                message: "`unsafe` without an adjacent `// SAFETY:` justification".to_string(),
                hint: "state the invariant that makes this sound in a `// SAFETY:` comment \
                       directly above (or a `# Safety` doc section on an unsafe fn)"
                    .to_string(),
            });
        }
    }
    findings
}
