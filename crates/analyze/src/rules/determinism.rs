//! Rule `determinism`: the repo's bit-identity guarantees must not be
//! undermined by FMA contraction, wall-clock reads on solver paths, or
//! hash-order-dependent iteration feeding output bytes.
//!
//! Three sub-checks over the configured `paths` (outside
//! `#[cfg(test)]`):
//!
//! * **FMA**: `.mul_add(…)` method calls (and `f64::mul_add` UFCS) are
//!   denied outside `mul_add_allowed` — fused multiply-add rounds once
//!   where the kernels' contract is exact mul-then-add. Calls *through*
//!   the project's own `simd::mul_add` wrapper are exempt by name.
//! * **Wall clocks**: `Instant::now`, `SystemTime`, and `.elapsed()`
//!   are denied outside `clock_allowed` (the budget/deadline/timeout
//!   modules) — clock reads on a solve path are how timing leaks into
//!   answers.
//! * **Unordered iteration**: in `ordered_output_paths` files, calling
//!   `.iter()/.keys()/.values()/.drain()/.into_iter()` on (or `for`-
//!   looping over) a receiver that the same file declares as `HashMap`
//!   or `HashSet` is a finding — bytes that leave the process must not
//!   depend on hash order. Sort first (and say so), switch to
//!   `BTreeMap`, or justify with `// DETERMINISM-OK: <reason>`.

use super::{receiver_chain, Finding, RULE_DETERMINISM};
use crate::config::{path_matches, Config};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

const ANNOTATION: &str = "DETERMINISM-OK:";
// Wider than the other rules' 2: the flagged `.iter()` token often
// sits a few lines into a formatted method chain whose justification
// annotates the statement head.
const LOOKBACK: u32 = 4;
// `.retain()` is deliberately absent: its visitation order cannot leak
// into the surviving set's contents.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

pub fn check(files: &[SourceFile], config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !path_matches(&file.path, &config.determinism_paths) {
            continue;
        }
        let tokens = file.tokens();
        let unordered = unordered_names(file);
        let ordered_output = path_matches(&file.path, &config.ordered_output_paths);
        for (i, token) in tokens.iter().enumerate() {
            if token.kind != TokKind::Ident || file.in_test(token.line) {
                continue;
            }
            if file.lexed.has_marker(token.line, LOOKBACK, ANNOTATION) {
                continue;
            }
            let mut report = |message: String, hint: &str| {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: token.line,
                    rule: RULE_DETERMINISM,
                    message,
                    hint: hint.to_string(),
                });
            };
            match token.text.as_str() {
                "mul_add" if !path_matches(&file.path, &config.mul_add_allowed) => {
                    let after_dot = i > 0 && tokens[i - 1].text == ".";
                    // `simd::mul_add` (the project's exact kernel) is
                    // the sanctioned spelling; any other path call
                    // (`f64::mul_add`) is FMA.
                    let via_simd = i >= 3
                        && tokens[i - 1].text == ":"
                        && tokens[i - 2].text == ":"
                        && tokens[i - 3].text == "simd";
                    let path_call = !after_dot && !via_simd && i > 0 && tokens[i - 1].text == ":";
                    if after_dot || path_call {
                        report(
                            "FMA (`mul_add`) outside the SIMD kernel module breaks the \
                             exact mul-then-add contract"
                                .to_string(),
                            "spell the arithmetic as `a * b + c` (or call simd::mul_add); \
                             bit-identity across builds depends on it",
                        );
                    }
                }
                "Instant"
                    if !path_matches(&file.path, &config.clock_allowed)
                        && tokens.get(i + 1).is_some_and(|t| t.text == ":")
                        && tokens.get(i + 3).is_some_and(|t| t.text == "now") =>
                {
                    report(
                        "wall-clock read (`Instant::now`) outside the budget/timeout \
                             modules"
                            .to_string(),
                        "thread a `Budget` (or a caller-supplied timestamp) through \
                             instead of reading the clock on a solve path",
                    );
                }
                "SystemTime" if !path_matches(&file.path, &config.clock_allowed) => {
                    report(
                        "wall-clock read (`SystemTime`) outside the budget/timeout modules"
                            .to_string(),
                        "thread a caller-supplied timestamp through instead",
                    );
                }
                "elapsed"
                    if !path_matches(&file.path, &config.clock_allowed)
                        && i > 0
                        && tokens[i - 1].text == "."
                        && tokens.get(i + 1).is_some_and(|t| t.text == "(") =>
                {
                    report(
                        "wall-clock read (`.elapsed()`) outside the budget/timeout \
                             modules"
                            .to_string(),
                        "thread a `Budget` (or a caller-supplied timestamp) through \
                             instead of reading the clock on a solve path",
                    );
                }
                m if ordered_output && ITER_METHODS.contains(&m) => {
                    let is_call = i > 0
                        && tokens[i - 1].text == "."
                        && tokens.get(i + 1).is_some_and(|t| t.text == "(");
                    if !is_call {
                        continue;
                    }
                    let Some((chain, _)) = receiver_chain(tokens, i - 1) else {
                        continue;
                    };
                    let tail = chain.rsplit('.').next().unwrap_or(&chain);
                    if unordered.contains(tail) {
                        report(
                            format!(
                                "iteration over hash-ordered `{tail}` feeds output in an \
                                 ordered-output file"
                            ),
                            "sort by a total, unique key before serialising (or use \
                             BTreeMap); justify reviewed perf-only uses with \
                             `// DETERMINISM-OK: <reason>`",
                        );
                    }
                }
                _ => {}
            }
        }
    }
    findings
}

/// Names declared as `HashMap`/`HashSet` in this file: struct fields
/// and locals (`name: HashMap<…>`, `let name = HashMap::new()`).
fn unordered_names(file: &SourceFile) -> BTreeSet<String> {
    let tokens = file.tokens();
    let mut names = BTreeSet::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokKind::Ident || (token.text != "HashMap" && token.text != "HashSet") {
            continue;
        }
        // `name : HashMap` (field or typed local/param).
        if i >= 2 && tokens[i - 1].text == ":" && tokens[i - 2].kind == TokKind::Ident {
            // Exclude `std::collections::HashMap` path segments, where
            // the token two back is also punct-joined (`:`-`:`).
            if !(i >= 3 && tokens[i - 3].text == ":") {
                names.insert(tokens[i - 2].text.clone());
                continue;
            }
        }
        // `let [mut] name = HashMap::…`.
        if i >= 2 && tokens[i - 1].text == "=" && tokens[i - 2].kind == TokKind::Ident {
            names.insert(tokens[i - 2].text.clone());
        }
    }
    names
}
