//! `kibamrm-analyze` — in-repo static analysis for the dependability
//! invariants the test suite can only probe dynamically.
//!
//! The workspace's headline guarantees (bit-identical answers across
//! thread counts, panic-free typed-error serving at the network
//! boundary, exact mul-then-add in the SIMD kernels) rest on coding
//! rules no compiler flag checks: justified `unsafe`, panic-free
//! request paths, a consistent lock order, no FMA or wall-clock reads
//! on solver paths, no lossy casts in the wire parsers. This crate
//! walks the workspace sources with a comment/string-aware lexer (see
//! [`lexer`]) and enforces those rules as a CI gate; `--deny` turns
//! any finding into a non-zero exit.
//!
//! The rule catalogue, each rule's model and its false-positive policy
//! are documented in DESIGN.md §14; the per-crate configuration lives
//! in `analyze.toml` at the workspace root. The crate is std-only and
//! dependency-free on purpose: it must build from a cold cache in
//! seconds and keep working on a tree that does not compile.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod source;

pub use config::{Config, ConfigError};
pub use rules::Finding;

use std::path::Path;

/// Lexes every configured source file under `root` and runs the full
/// rule catalogue. Findings come back sorted by (file, line, rule).
pub fn analyze_tree(root: &Path, config: &Config) -> std::io::Result<Vec<Finding>> {
    let files = source::load_workspace(root, config)?;
    Ok(rules::run_all(&files, config))
}

/// Convenience: load `analyze.toml` from `root` and run. The config
/// file is mandatory — an unconfigured gate silently checks nothing.
pub fn analyze_root(root: &Path) -> Result<Vec<Finding>, String> {
    let config_path = root.join("analyze.toml");
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = Config::from_toml(&text).map_err(|e| e.to_string())?;
    analyze_tree(root, &config).map_err(|e| format!("walking {}: {e}", root.display()))
}
