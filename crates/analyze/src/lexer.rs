//! A comment/string/raw-string-aware token scanner for Rust source.
//!
//! This is deliberately *not* a Rust parser: the rules in this crate
//! only need a faithful token stream (identifiers, punctuation,
//! literals, each tagged with its line) plus the comments as a separate
//! channel (the annotation escapes — `// SAFETY:`, `// PANIC-OK:` and
//! friends — live there). What the lexer must get exactly right is the
//! part naive `grep` gets wrong: `unsafe` inside a doc comment, a
//! `panic!` spelled inside a string literal, a `"]"` inside a raw
//! string, a lifetime tick versus a char literal. Everything else is
//! left to the rules' heuristics, which are documented in DESIGN.md §14
//! together with their false-positive policy.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `unwrap`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `[`, `{`, `!`, …).
    Punct,
    /// A string/char/byte/numeric literal. The text of string-like
    /// literals is dropped (never matched against), numeric literals
    /// keep their spelling so tuple indexes like `self.0` survive.
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment (line comments are one record per `//`; a block comment
/// is a single record spanning `start_line..=end_line`).
#[derive(Debug, Clone)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// The lexer's output: code tokens and comments as separate channels.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Is there a comment containing `marker` that annotates `line`?
    /// A comment counts when it touches any line in
    /// `line - lookback ..= line`, or when it belongs to a contiguous
    /// run of comments whose bottom edge does — a multi-line `//`
    /// justification reaches the code below it as one block, however
    /// long the prose is. This is how every annotation escape is
    /// recognised.
    pub fn has_marker(&self, line: u32, lookback: u32, marker: &str) -> bool {
        let lo = line.saturating_sub(lookback);
        // Direct hit: the marker's own comment touches the window.
        if self
            .comments
            .iter()
            .any(|c| c.end_line >= lo && c.start_line <= line && c.text.contains(marker))
        {
            return true;
        }
        // Block extension: walk upward from any comment inside the
        // window through vertically adjacent comments.
        let mut frontier: Vec<u32> = self
            .comments
            .iter()
            .filter(|c| c.end_line >= lo && c.start_line <= line)
            .map(|c| c.start_line)
            .collect();
        while let Some(top) = frontier.pop() {
            for c in &self.comments {
                if c.end_line + 1 == top {
                    if c.text.contains(marker) {
                        return true;
                    }
                    frontier.push(c.start_line);
                }
            }
        }
        false
    }
}

/// Lexes `src`, which is assumed to be UTF-8 Rust source. The scanner
/// never fails: on malformed input (unclosed string, stray byte) it
/// degrades to treating the remainder as a literal, which at worst
/// suppresses findings in a file that would not compile anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        at: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    at: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.at < self.bytes.len() {
            let b = self.bytes[self.at];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                b if b.is_ascii_whitespace() => self.at += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.tick(),
                b if b.is_ascii_digit() => self.number(),
                b if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => self.ident(),
                _ => {
                    self.push(TokKind::Punct, (b as char).to_string());
                    self.at += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.at + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String) {
        self.out.tokens.push(Token {
            kind,
            text,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.at + 2;
        while self.at < self.bytes.len() && self.bytes[self.at] != b'\n' {
            self.at += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start.min(self.at)..self.at]).into_owned();
        self.out.comments.push(Comment {
            start_line: self.line,
            end_line: self.line,
            text,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let text_start = self.at + 2;
        self.at += 2;
        let mut depth = 1usize;
        while self.at < self.bytes.len() && depth > 0 {
            match self.bytes[self.at] {
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.at += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.at += 2;
                }
                _ => self.at += 1,
            }
        }
        let end = self.at.saturating_sub(2).max(text_start);
        self.out.comments.push(Comment {
            start_line,
            end_line: self.line,
            text: String::from_utf8_lossy(&self.bytes[text_start..end]).into_owned(),
        });
    }

    /// A `"`-delimited string (escape-aware, may span lines).
    fn string_literal(&mut self) {
        let line = self.line;
        self.at += 1;
        while self.at < self.bytes.len() {
            match self.bytes[self.at] {
                b'\\' => self.at += 2,
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                b'"' => {
                    self.at += 1;
                    break;
                }
                _ => self.at += 1,
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Literal,
            text: String::new(),
            line,
        });
    }

    /// A raw string starting at the current `r`/`br` prefix position:
    /// `r"…"`, `r#"…"#`, any number of `#`s. Returns `false` when the
    /// text does not actually start one (then it was a plain ident).
    fn raw_string(&mut self, prefix_len: usize) -> bool {
        let mut probe = self.at + prefix_len;
        let mut hashes = 0usize;
        while self.bytes.get(probe) == Some(&b'#') {
            hashes += 1;
            probe += 1;
        }
        if self.bytes.get(probe) != Some(&b'"') {
            return false;
        }
        let line = self.line;
        self.at = probe + 1;
        'scan: while self.at < self.bytes.len() {
            match self.bytes[self.at] {
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                b'"' => {
                    let mut k = 0usize;
                    while k < hashes && self.bytes.get(self.at + 1 + k) == Some(&b'#') {
                        k += 1;
                    }
                    if k == hashes {
                        self.at += 1 + hashes;
                        break 'scan;
                    }
                    self.at += 1;
                }
                _ => self.at += 1,
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Literal,
            text: String::new(),
            line,
        });
        true
    }

    /// A `'`: lifetime/label if followed by an identifier that is not
    /// closed by another `'`; otherwise a char literal.
    fn tick(&mut self) {
        let mut probe = self.at + 1;
        if self
            .bytes
            .get(probe)
            .is_some_and(|&b| b.is_ascii_alphabetic() || b == b'_')
        {
            while self
                .bytes
                .get(probe)
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
            {
                probe += 1;
            }
            if self.bytes.get(probe) != Some(&b'\'') {
                // `'ident` with no closing tick: a lifetime or label.
                let text = String::from_utf8_lossy(&self.bytes[self.at..probe]).into_owned();
                self.push(TokKind::Lifetime, text);
                self.at = probe;
                return;
            }
        }
        // Char literal: `'x'`, `'\n'`, `'\''`, `'\u{1F600}'`.
        let line = self.line;
        self.at += 1;
        while self.at < self.bytes.len() {
            match self.bytes[self.at] {
                b'\\' => self.at += 2,
                b'\'' => {
                    self.at += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.at += 1;
                }
                _ => self.at += 1,
            }
        }
        self.out.tokens.push(Token {
            kind: TokKind::Literal,
            text: String::new(),
            line,
        });
    }

    fn number(&mut self) {
        let start = self.at;
        while self.at < self.bytes.len() {
            let b = self.bytes[self.at];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // Covers hex/binary digits, type suffixes and the `e`
                // of an exponent in one sweep.
                self.at += 1;
            } else if b == b'.'
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                && self.bytes[self.at - 1] != b'.'
            {
                // A fractional point, not the start of a `..` range.
                self.at += 1;
            } else if (b == b'+' || b == b'-')
                && matches!(self.bytes[self.at - 1], b'e' | b'E')
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
            {
                // A signed exponent (`1e-3`).
                self.at += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.at]).into_owned();
        self.push(TokKind::Literal, text);
    }

    fn ident(&mut self) {
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80)
        {
            self.at += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.at]).into_owned();
        // `r"…"` / `r#"…"` / `b"…"` / `br#"…"` prefixes bind to the
        // literal, not to an identifier.
        match text.as_str() {
            "r" | "br" => {
                self.at = start;
                if self.raw_string(text.len()) {
                    return;
                }
                self.at = start + text.len();
            }
            "b" => {
                if self.bytes.get(self.at) == Some(&b'"') {
                    self.string_literal();
                    return;
                }
                if self.bytes.get(self.at) == Some(&b'\'') {
                    self.tick();
                    return;
                }
            }
            _ => {}
        }
        self.push(TokKind::Ident, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code_words() {
        let src = r##"
// unsafe in a line comment
/* panic! in /* a nested */ block */
let s = "unsafe { panic!() }";
let r = r#"unwrap() "quoted" inside raw"#;
let c = '!';
fn real() {}
"##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "unsafe" || i == "panic" || i == "unwrap"));
        assert!(ids.iter().any(|i| i == "real"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        // `'x'` must have been swallowed as one char literal, so the
        // trailing `x` ident count stays at: param x + final x.
        let xs = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "x")
            .count();
        assert_eq!(xs, 2);
    }

    #[test]
    fn lines_survive_multiline_literals() {
        let src = "let a = \"two\nlines\";\nunsafe {}";
        let lexed = lex(src);
        let unsafe_tok = lexed
            .tokens
            .iter()
            .find(|t| t.text == "unsafe")
            .expect("unsafe token");
        assert_eq!(unsafe_tok.line, 3);
    }

    #[test]
    fn marker_lookup_spans_comment_runs() {
        let src = "// SAFETY: fine because reasons\n// continued\nunsafe {}\n";
        let lexed = lex(src);
        assert!(lexed.has_marker(3, 3, "SAFETY:"));
        assert!(!lexed.has_marker(3, 3, "PANIC-OK:"));
    }

    #[test]
    fn marker_reaches_through_a_long_comment_block() {
        // The marker line itself is outside the lookback window, but
        // the contiguous comment run's bottom edge is inside it.
        let src = "// DETERMINISM-OK: a justification\n// line two\n// line three\n// line four\n// line five\nx.iter()\n";
        let lexed = lex(src);
        assert!(lexed.has_marker(6, 2, "DETERMINISM-OK:"));
        // A blank line breaks the block: the marker no longer reaches.
        let src = "// DETERMINISM-OK: a justification\n\n// line three\n// line four\n// line five\nx.iter()\n";
        let lexed = lex(src);
        assert!(!lexed.has_marker(6, 2, "DETERMINISM-OK:"));
    }

    #[test]
    fn tuple_indexes_survive_as_number_literals() {
        let lexed = lex("self.0.lock()");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["self", ".", "0", ".", "lock", "(", ")"]);
    }
}
