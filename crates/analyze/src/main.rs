//! The `kibamrm-analyze` CLI. See the crate docs and DESIGN.md §14.
//!
//! ```text
//! kibamrm-analyze [--root PATH] [--config PATH] [--deny]
//! ```
//!
//! Prints every finding as `file:line: [rule-id] message` plus a fix
//! hint, then a summary. Exit status: 0 when clean (always, without
//! `--deny`), 1 when `--deny` and findings exist, 2 on usage/config
//! errors — so CI distinguishes "the tree is dirty" from "the gate is
//! broken".

#![forbid(unsafe_code)]

use kibamrm_analyze::{analyze_tree, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--config" => match args.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => return usage("--config needs a path"),
            },
            "--deny" => deny = true,
            "--help" | "-h" => {
                eprintln!("usage: kibamrm-analyze [--root PATH] [--config PATH] [--deny]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("analyze.toml"));
    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "kibamrm-analyze: cannot read {}: {e}",
                config_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let config = match Config::from_toml(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kibamrm-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match analyze_tree(&root, &config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("kibamrm-analyze: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!(
            "kibamrm-analyze: clean ({} rules over {})",
            5,
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        println!("kibamrm-analyze: {} finding(s)", findings.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("kibamrm-analyze: {msg}");
    eprintln!("usage: kibamrm-analyze [--root PATH] [--config PATH] [--deny]");
    ExitCode::from(2)
}
