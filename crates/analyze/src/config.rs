//! `analyze.toml` — the data-driven rule configuration.
//!
//! The workspace's no-external-dependency policy applies to the
//! analyzer too, so this module carries a tiny parser for exactly the
//! TOML subset the config uses: `[dotted.section]` headers, `key =
//! "string"`, `key = true|false`, `key = 123`, and (possibly
//! multi-line) `key = ["a", "b"]` string arrays, with `#` comments.
//! Anything outside that subset is a hard [`ConfigError`] — a config
//! typo must fail the gate loudly, never silently relax a rule.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation failure in `analyze.toml`.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analyze.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    Array(Vec<String>),
}

/// The raw parse: `section name → key → value`. Keys are
/// `section.key`-qualified so rule tables stay self-contained.
pub type Tables = BTreeMap<String, BTreeMap<String, Value>>;

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parses the TOML subset described in the module docs.
pub fn parse(src: &str) -> Result<Tables, ConfigError> {
    let mut tables = Tables::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated [section] header"))?
                .trim();
            if name.is_empty() {
                return Err(err(lineno, "empty section name"));
            }
            section = name.to_string();
            tables.entry(section.clone()).or_default();
            continue;
        }
        let (key, value_text) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = key.trim().to_string();
        let mut value_text = value_text.trim().to_string();
        // A multi-line array: keep consuming lines until the bracket
        // closes (string elements never contain brackets here).
        while value_text.starts_with('[') && !value_text.ends_with(']') {
            let (_, next) = lines
                .next()
                .ok_or_else(|| err(lineno, "unterminated array"))?;
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&value_text, lineno)?;
        if section.is_empty() {
            return Err(err(lineno, "key outside any [section]"));
        }
        tables
            .get_mut(&section)
            .expect("section inserted on header")
            .insert(key, value);
    }
    Ok(tables)
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ConfigError> {
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(part, lineno)?);
        }
        return Ok(Value::Array(items));
    }
    if text.starts_with('"') {
        return Ok(Value::Str(parse_string(text, lineno)?));
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(lineno, format!("unsupported value `{text}`")))
}

fn parse_string(text: &str, lineno: usize) -> Result<String, ConfigError> {
    text.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err(lineno, format!("expected a quoted string, got `{text}`")))
}

/// The typed configuration the rules consume.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories/files (workspace-relative) to scan.
    pub include: Vec<String>,
    /// Path prefixes excluded from every rule.
    pub exclude: Vec<String>,
    /// Files allowed to contain `unsafe` at all.
    pub unsafe_allowed_files: Vec<String>,
    /// How many lines above an `unsafe` token a justification comment
    /// may sit.
    pub unsafe_lookback: u32,
    /// Request-path files for the panic-freedom audit.
    pub panic_paths: Vec<String>,
    /// Files whose lock acquisitions feed the lock-order graph.
    pub lock_paths: Vec<String>,
    /// `receiver=canonical` pairs unifying textual receivers that name
    /// the same mutex.
    pub lock_aliases: Vec<(String, String)>,
    /// `A->B` edges suppressed as reviewed false positives.
    pub lock_ignored_edges: Vec<(String, String)>,
    /// Files scanned by the determinism rule.
    pub determinism_paths: Vec<String>,
    /// Files allowed to call FMA (`mul_add`).
    pub mul_add_allowed: Vec<String>,
    /// Files allowed to read wall clocks.
    pub clock_allowed: Vec<String>,
    /// Files whose output bytes must not depend on hash-map iteration
    /// order.
    pub ordered_output_paths: Vec<String>,
    /// Files audited for lossy `as` casts.
    pub cast_paths: Vec<String>,
}

impl Config {
    /// Parses and validates `analyze.toml` content. (Named `from_toml`
    /// rather than `from_str` to keep clippy's `FromStr` suggestion at
    /// bay — this is not a general-purpose conversion.)
    pub fn from_toml(src: &str) -> Result<Config, ConfigError> {
        let tables = parse(src)?;
        let mut cfg = Config {
            unsafe_lookback: 6,
            ..Config::default()
        };
        for (section, table) in &tables {
            for (key, value) in table {
                cfg.apply(section, key, value)
                    .map_err(|m| err(0, format!("[{section}] {key}: {m}")))?;
            }
        }
        if cfg.include.is_empty() {
            return Err(err(0, "[workspace] include must list at least one path"));
        }
        Ok(cfg)
    }

    fn apply(&mut self, section: &str, key: &str, value: &Value) -> Result<(), String> {
        let paths = |v: &Value| -> Result<Vec<String>, String> {
            match v {
                Value::Array(a) => Ok(a.clone()),
                _ => Err("expected an array of path strings".into()),
            }
        };
        match (section, key) {
            ("workspace", "include") => self.include = paths(value)?,
            ("workspace", "exclude") => self.exclude = paths(value)?,
            ("rule.unsafe-safety", "allowed_files") => self.unsafe_allowed_files = paths(value)?,
            ("rule.unsafe-safety", "lookback") => match value {
                Value::Int(n) if *n >= 0 => self.unsafe_lookback = *n as u32,
                _ => return Err("expected a non-negative integer".into()),
            },
            ("rule.panic-path", "paths") => self.panic_paths = paths(value)?,
            ("rule.lock-order", "paths") => self.lock_paths = paths(value)?,
            ("rule.lock-order", "alias") => {
                self.lock_aliases = pairs(&paths(value)?, '=')?;
            }
            ("rule.lock-order", "ignore") => {
                self.lock_ignored_edges = arrows(&paths(value)?)?;
            }
            ("rule.determinism", "paths") => self.determinism_paths = paths(value)?,
            ("rule.determinism", "mul_add_allowed") => self.mul_add_allowed = paths(value)?,
            ("rule.determinism", "clock_allowed") => self.clock_allowed = paths(value)?,
            ("rule.determinism", "ordered_output_paths") => {
                self.ordered_output_paths = paths(value)?;
            }
            ("rule.lossy-cast", "paths") => self.cast_paths = paths(value)?,
            _ => return Err("unknown configuration key".into()),
        }
        Ok(())
    }
}

fn pairs(items: &[String], sep: char) -> Result<Vec<(String, String)>, String> {
    items
        .iter()
        .map(|s| {
            s.split_once(sep)
                .map(|(a, b)| (a.trim().to_string(), b.trim().to_string()))
                .ok_or_else(|| format!("`{s}` is not a `from{sep}to` pair"))
        })
        .collect()
}

fn arrows(items: &[String]) -> Result<Vec<(String, String)>, String> {
    items
        .iter()
        .map(|s| {
            s.split_once("->")
                .map(|(a, b)| (a.trim().to_string(), b.trim().to_string()))
                .ok_or_else(|| format!("`{s}` is not an `A->B` edge"))
        })
        .collect()
}

/// Does `path` (workspace-relative, `/`-separated) fall under any of
/// the `prefixes` (each either a file path or a directory prefix)?
pub fn path_matches(path: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| path == p || path.starts_with(&format!("{p}/")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_subset() {
        let cfg = Config::from_toml(
            r#"
# top comment
[workspace]
include = ["crates"] # trailing comment
exclude = [
    "crates/vendor",
    "target",
]

[rule.unsafe-safety]
allowed_files = ["a.rs"]
lookback = 4

[rule.lock-order]
paths = ["b.rs"]
alias = ["self.service = service-inner"]
ignore = ["a -> b"]
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.include, vec!["crates"]);
        assert_eq!(cfg.exclude, vec!["crates/vendor", "target"]);
        assert_eq!(cfg.unsafe_lookback, 4);
        assert_eq!(
            cfg.lock_aliases,
            vec![("self.service".to_string(), "service-inner".to_string())]
        );
        assert_eq!(
            cfg.lock_ignored_edges,
            vec![("a".to_string(), "b".to_string())]
        );
    }

    #[test]
    fn unknown_keys_are_hard_errors() {
        let e = Config::from_toml("[workspace]\ninclude=[\"x\"]\ntypo = true\n");
        assert!(e.is_err(), "a config typo must not silently relax a rule");
    }

    #[test]
    fn missing_include_is_rejected() {
        assert!(Config::from_toml("[workspace]\nexclude = []\n").is_err());
    }

    #[test]
    fn path_prefix_matching() {
        let pre = vec![
            "crates/net/src".to_string(),
            "crates/core/src/service.rs".to_string(),
        ];
        assert!(path_matches("crates/net/src/http.rs", &pre));
        assert!(path_matches("crates/core/src/service.rs", &pre));
        assert!(!path_matches("crates/core/src/solver.rs", &pre));
        assert!(!path_matches("crates/network/src/x.rs", &pre));
    }
}
