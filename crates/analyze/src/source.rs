//! Workspace walking and the per-file source model the rules consume.

use crate::config::{path_matches, Config};
use crate::lexer::{lex, Lexed, TokKind, Token};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// One lexed source file plus the derived facts every rule needs.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across
    /// platforms — findings and config both use this form).
    pub path: String,
    pub lexed: Lexed,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
    /// items.
    pub test_regions: Vec<Range<u32>>,
}

impl SourceFile {
    pub fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|r| line >= r.start && line <= r.end)
    }

    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }
}

/// Collects and lexes every `.rs` file under the configured include
/// roots, skipping excluded prefixes. Files are returned sorted by
/// path so findings are stable run to run.
pub fn load_workspace(root: &Path, config: &Config) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for inc in &config.include {
        let base = root.join(inc);
        if base.is_file() {
            files.push(base);
        } else if base.is_dir() {
            walk(&base, &mut files)?;
        }
        // A missing include root is tolerated: the fixture corpus and
        // the real tree share this loader.
    }
    files.sort();
    files.dedup();
    let mut out = Vec::new();
    for file in files {
        let rel = relative(root, &file);
        if path_matches(&rel, &config.exclude) {
            continue;
        }
        let src = std::fs::read_to_string(&file)?;
        let lexed = lex(&src);
        let test_regions = find_test_regions(&lexed.tokens);
        out.push(SourceFile {
            path: rel,
            lexed,
            test_regions,
        });
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Finds the line ranges of items annotated `#[cfg(test)]` (or
/// `#[cfg(all(test, …))]`, or plain `#[test]`): attribute line through
/// the closing brace (or terminating semicolon) of the annotated item.
fn find_test_regions(tokens: &[Token]) -> Vec<Range<u32>> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Punct && tokens[i].text == "#") {
            i += 1;
            continue;
        }
        let Some(open) = tokens.get(i + 1).filter(|t| t.text == "[") else {
            i += 1;
            continue;
        };
        let _ = open;
        // Scan the attribute body to its matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut is_test = false;
        let mut saw_cfg = false;
        let mut saw_not = false;
        while j < tokens.len() {
            let t = &tokens[j];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, "cfg") => saw_cfg = true,
                // `#[cfg(not(test))]` guards *non*-test code.
                (TokKind::Ident, "not") => saw_not = true,
                (TokKind::Ident, "test")
                    // `#[test]` (the attribute itself) or `test` inside
                    // a `cfg(…)` predicate.
                    if ((saw_cfg && !saw_not) || j == i + 2) => {
                        is_test = true;
                    }
                _ => {}
            }
            j += 1;
        }
        if !is_test {
            i = j + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes stacked on the same item.
        let mut k = j + 1;
        while k + 1 < tokens.len() && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            let mut d = 0usize;
            k += 1;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the item body: the first `{` outside parens/brackets,
        // unless a `;` ends the item first (e.g. `#[cfg(test)] use …;`).
        let mut paren = 0isize;
        let mut end_line = tokens.get(k).map_or(start_line, |t| t.line);
        while k < tokens.len() {
            let t = &tokens[k];
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => {
                    end_line = t.line;
                    break;
                }
                "{" if paren == 0 => {
                    // Match braces to the end of the item body.
                    let mut braces = 0usize;
                    while k < tokens.len() {
                        match tokens[k].text.as_str() {
                            "{" => braces += 1,
                            "}" => {
                                braces -= 1;
                                if braces == 0 {
                                    end_line = tokens[k].line;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push(start_line..end_line);
        i = k + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(src: &str) -> Vec<Range<u32>> {
        find_test_regions(&lex(src).tokens)
    }

    #[test]
    fn cfg_test_mod_is_one_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        assert_eq!(regions(src), vec![2..5]);
    }

    #[test]
    fn plain_test_attribute_and_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn t() {\n  boom();\n}\n";
        assert_eq!(regions(src), vec![1..5]);
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m { }\n";
        assert_eq!(regions(src), vec![1..2]);
    }

    #[test]
    fn non_test_cfg_is_ignored() {
        let src = "#[cfg(feature = \"simd\")]\nfn f() { x.unwrap(); }\n";
        assert!(regions(src).is_empty());
    }

    #[test]
    fn semicolon_items() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() {}\n";
        assert_eq!(regions(src), vec![1..2]);
    }
}
