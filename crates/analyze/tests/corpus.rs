//! The committed bad-fixture corpus: every rule must fire at the
//! exact line with the exact rule id, and every in-file annotation
//! escape (`SAFETY:`, `PANIC-OK:`, `DETERMINISM-OK:`, `CAST-OK:`,
//! `#[cfg(test)]`) must hold — the corpus pins both directions.

#![forbid(unsafe_code)]

use kibamrm_analyze::{analyze_tree, Config};
use std::path::Path;

fn corpus_findings() -> Vec<(String, u32, &'static str)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = std::fs::read_to_string(root.join("analyze.toml")).expect("fixture config");
    let config = Config::from_toml(&text).expect("fixture config parses");
    analyze_tree(&root, &config)
        .expect("fixture tree walks")
        .into_iter()
        .map(|f| (f.file, f.line, f.rule))
        .collect()
}

#[test]
fn every_rule_fires_at_the_expected_lines() {
    let expected: Vec<(String, u32, &'static str)> = [
        ("bad/casts.rs", 4, "lossy-cast"),
        ("bad/casts.rs", 8, "lossy-cast"),
        ("bad/locks.rs", 14, "lock-order"),
        ("bad/locks.rs", 26, "lock-order"),
        ("bad/nondeterminism.rs", 9, "determinism"),
        ("bad/nondeterminism.rs", 13, "determinism"),
        ("bad/nondeterminism.rs", 14, "determinism"),
        ("bad/nondeterminism.rs", 24, "determinism"),
        ("bad/panics.rs", 4, "panic-path"),
        ("bad/panics.rs", 8, "panic-path"),
        ("bad/panics.rs", 13, "panic-path"),
        ("bad/unsafe_outside_inventory.rs", 7, "unsafe-safety"),
        ("bad/unsafe_undocumented.rs", 7, "unsafe-safety"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r))
    .collect();
    assert_eq!(corpus_findings(), expected);
}

#[test]
fn the_cycle_report_names_both_edges() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = std::fs::read_to_string(root.join("analyze.toml")).expect("fixture config");
    let config = Config::from_toml(&text).expect("fixture config parses");
    let findings = analyze_tree(&root, &config).expect("fixture tree walks");
    let cycle = findings
        .iter()
        .find(|f| f.rule == "lock-order" && f.message.contains("cycle"))
        .expect("the seeded inversion is reported");
    assert!(cycle.message.contains("`Pair::self.a` → `Pair::self.b`"));
    assert!(cycle.message.contains("`Pair::self.b` → `Pair::self.a`"));
    assert!(cycle.message.contains("in `forward`"));
    assert!(cycle.message.contains("in `backward`"));
}
