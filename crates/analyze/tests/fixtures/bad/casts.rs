//! Fixture: lossy `as` casts in a parser file.

pub fn parse_len(header: u64) -> usize {
    header as usize
}

pub fn narrow(v: u64) -> u32 {
    v as u32
}

pub fn widen(v: u32) -> u64 {
    // CAST-OK: u32 -> u64 widening never truncates.
    v as u64
}
