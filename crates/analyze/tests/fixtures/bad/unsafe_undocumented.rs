//! Fixture: `unsafe` inside the audited inventory but without an
//! adjacent safety justification comment. (The marker itself cannot
//! be spelled here: a comment is a comment to the lexer.)

pub fn undocumented(xs: &[u8]) -> u8 {
    let p = xs.as_ptr();
    unsafe { *p }
}

pub fn documented(xs: &[u8]) -> u8 {
    let p = xs.as_ptr();
    // SAFETY: the fixture's caller contract guarantees `xs` is
    // non-empty, so the pointer is valid for one read.
    unsafe { *p }
}
