//! Fixture: `unsafe` in a file outside the audited inventory — a
//! justification comment does not help; the file itself is the
//! violation.

pub fn read_first(xs: &[u8]) -> u8 {
    // SAFETY: documented, but this file is not in `allowed_files`.
    unsafe { *xs.as_ptr() }
}
