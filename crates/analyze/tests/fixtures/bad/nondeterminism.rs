//! Fixture: FMA outside the SIMD kernels, wall-clock reads outside
//! the budget modules, and hash-ordered iteration feeding the bytes of
//! an ordered-output file.

use std::collections::HashMap;
use std::time::Instant;

pub fn fused(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}

pub fn stamp() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub struct Sweep {
    rows: HashMap<String, u64>,
}

impl Sweep {
    pub fn serialise(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.rows.iter() {
            out.push_str(k);
            out.push_str(&v.to_string());
        }
        out
    }

    pub fn total(&self) -> u64 {
        // DETERMINISM-OK: summation is order-independent.
        self.rows.values().sum()
    }
}
