//! Fixture: panic-capable calls on an audited request path.

pub fn by_unwrap(xs: &[i64]) -> i64 {
    xs.first().copied().unwrap()
}

pub fn by_index(xs: &[i64]) -> i64 {
    xs[1]
}

pub fn by_macro(xs: &[i64]) -> i64 {
    if xs.len() < 3 {
        panic!("too short");
    }
    // PANIC-OK: the length was checked two lines up.
    xs[2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_inside_tests_is_exempt() {
        assert_eq!("3".parse::<i64>().unwrap(), 3);
    }
}
