//! Fixture: a seeded lock-order inversion (`a` → `b` in one function,
//! `b` → `a` in another) and a re-entrant acquisition.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }

    pub fn reentrant(&self) -> u32 {
        let first = self.a.lock().unwrap();
        let second = self.a.lock().unwrap();
        *first + *second
    }

    pub fn disciplined(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        drop(ga);
        let gb = self.b.lock().unwrap();
        *gb
    }
}
