//! The gate on the gate: the real workspace tree must be clean under
//! the real `analyze.toml`, so `--deny` in CI can never trip on a
//! commit that passes the test suite.

#![forbid(unsafe_code)]

use kibamrm_analyze::analyze_root;
use std::path::Path;

#[test]
fn workspace_tree_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = analyze_root(&root).expect("workspace analyzes");
    assert!(
        findings.is_empty(),
        "the workspace must stay clean (fix the code or annotate with a reviewed escape):\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
