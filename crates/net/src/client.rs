//! A minimal blocking HTTP/1.1 client — just enough to exercise the
//! server from tests, the chaos harness and the fleet example without
//! pulling a dependency. One request per connection (`Connection:
//! close`), bounded response parsing, socket timeouts on both
//! directions.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Cap on the response head (status line + headers).
const MAX_RESPONSE_HEAD: usize = 16 << 10;
/// Cap on the response body we are willing to buffer.
const MAX_RESPONSE_BODY: usize = 4 << 20;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (`200`, `429`, …).
    pub status: u16,
    /// Header name (lower-cased) / value pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — diagnostics only).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Performs one request and reads the full response.
///
/// # Errors
///
/// Socket errors, timeouts, or a response the bounded parser refuses.
pub fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    request_on(stream, method, target, headers, body)
}

/// As [`request`], over an already-connected stream (lets tests hold
/// sockets open, trickle bytes, or kill mid-write).
///
/// # Errors
///
/// As [`request`].
pub fn request_on(
    mut stream: TcpStream,
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<HttpResponse> {
    let mut head = format!("{method} {target} HTTP/1.1\r\nconnection: close\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    read_response(&mut stream)
}

/// Reads and parses one response from `stream`.
///
/// # Errors
///
/// Socket errors or malformed/oversized responses.
pub fn read_response<R: Read>(stream: &mut R) -> std::io::Result<HttpResponse> {
    // Head: read until the blank line, bounded.
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buffer) {
            break pos;
        }
        if buffer.len() > MAX_RESPONSE_HEAD {
            return Err(bad("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before response head"));
        }
        // PANIC-OK: `Read` guarantees `n <= chunk.len()`.
        buffer.extend_from_slice(&chunk[..n]);
    };
    // PANIC-OK: `head_end` is a `windows(4)` position inside `buffer`.
    let head = std::str::from_utf8(&buffer[..head_end]).map_err(|_| bad("head not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an HTTP/1.x response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status code"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            if content_length > MAX_RESPONSE_BODY {
                return Err(bad("response body too large"));
            }
        }
        headers.push((name, value));
    }
    // Body: the leftover bytes plus the rest of the declared length.
    // PANIC-OK: `head_end` is a `windows(4)` position, so
    // `head_end + 4 <= buffer.len()`.
    let mut body = buffer[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        // PANIC-OK: `Read` guarantees `n <= chunk.len()`.
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

fn find_blank_line(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `GET` a target (no body).
///
/// # Errors
///
/// As [`request`].
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request(addr, "GET", target, &[], b"", timeout)
}

/// `POST /query` with the given body.
///
/// # Errors
///
/// As [`request`].
pub fn post_query(
    addr: SocketAddr,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    request(addr, "POST", "/query", &[], body, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_response() {
        let wire =
            b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 5\r\nretry-after: 1\r\n\r\nhello";
        let mut cursor = &wire[..];
        let r = read_response(&mut cursor).unwrap();
        assert_eq!(r.status, 503);
        assert_eq!(r.header("Retry-After"), Some("1"));
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn refuses_garbage_and_truncation() {
        for wire in [
            &b"SMTP ready\r\n\r\n"[..],
            b"HTTP/1.1 abc Bad\r\n\r\n",
            b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nshort",
        ] {
            let mut cursor = wire;
            assert!(read_response(&mut cursor).is_err());
        }
    }
}
