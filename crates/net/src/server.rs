//! The bounded HTTP server over one resident
//! [`LifetimeService`]: acceptor, per-connection workers, routing,
//! error mapping, quotas, graceful drain and snapshot ticks.
//!
//! Robustness layering, outermost first:
//!
//! 1. **Connection cap.** At most [`NetConfig::max_connections`]
//!    connections are served at once; an accept beyond the cap is
//!    answered `503` + `Retry-After` immediately and closed — typed
//!    shedding, not an unbounded thread herd.
//! 2. **Socket timeouts.** Every connection carries read/write
//!    timeouts; a slow-loris client trickling its request header is
//!    disconnected with `408` when the read stalls, so it can pin a
//!    worker for at most one timeout, not forever.
//! 3. **Bounded parsing.** [`crate::http`] enforces head/body caps and
//!    refuses `Transfer-Encoding` before any unbounded work happens.
//! 4. **Per-client quotas.** [`crate::quota`] sheds a noisy neighbour
//!    by name (`429` + `Retry-After`) before it can saturate the
//!    global admission bound that protects everyone else.
//! 5. **The service's own ladder.** Admission, single-flight,
//!    deadlines, degradation and breakers live in
//!    [`LifetimeService`]; this layer only maps its typed errors onto
//!    HTTP statuses (`Overloaded`/`CircuitOpen` → `503` +
//!    `Retry-After`, deadline → `504`, degraded answers tagged in the
//!    `200` envelope with their explicit error bound).
//!
//! Shutdown is a drain, not a drop: the acceptor stops listening,
//! in-flight connections get [`NetConfig::drain_deadline`] to finish,
//! and the result cache is snapshotted to
//! [`NetConfig::snapshot_path`] (crash-safely — see
//! [`kibamrm::snapshot`]) so the next process starts warm.

use crate::http::{read_request, HttpError, HttpLimits, Request, Response};
use crate::json::{self, Json};
use crate::quota::{QuotaDecision, QuotaLedger};
use kibamrm::scenario::Scenario;
use kibamrm::service::{
    Answer, DegradedSource, LifetimeService, QueryOptions, RetryPolicy, ServiceError, ServiceStats,
};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sizing and policy knobs of the HTTP front.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Concurrent-connection cap; connections beyond it are shed with
    /// an immediate `503`. Default: 64.
    pub max_connections: usize,
    /// Per-read socket timeout (slow-loris bound). Default: 2 s.
    pub read_timeout: Duration,
    /// Per-write socket timeout (slow-reader bound). Default: 2 s.
    pub write_timeout: Duration,
    /// Request parsing bounds.
    pub limits: HttpLimits,
    /// Requests served per keep-alive connection before it is closed
    /// (bounds how long one socket can monopolise a worker). Default:
    /// 128.
    pub max_requests_per_connection: usize,
    /// Per-client sustained admission rate, requests/second.
    /// `0` disables quotas. Default: 0.
    pub quota_rate: f64,
    /// Per-client burst size. Default: 8.
    pub quota_burst: f64,
    /// When set, requests carrying this header (lower-case name) are
    /// quota-keyed by its value instead of the peer address — for
    /// fleets behind one NAT, where per-address keying would lump every
    /// device into one bucket. Trust it only from trusted networks.
    pub quota_key_header: Option<String>,
    /// Where to write result-cache snapshots (shutdown and periodic
    /// ticks) and load them from at startup. `None` disables
    /// persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Period of background snapshot ticks (requires `snapshot_path`).
    /// `None` snapshots only on drain.
    pub snapshot_interval: Option<Duration>,
    /// How long a drain waits for in-flight connections. Default: 5 s.
    pub drain_deadline: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            limits: HttpLimits::default(),
            max_requests_per_connection: 128,
            quota_rate: 0.0,
            quota_burst: 8.0,
            quota_key_header: None,
            snapshot_path: None,
            snapshot_interval: None,
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// The network layer's own ledger, disjoint from [`ServiceStats`]
/// (which counts what the *service* did; this counts what the *front*
/// did before and after).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted into a worker.
    pub accepted: u64,
    /// Connections shed at the cap with an immediate `503`.
    pub connections_shed: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// `200` answers.
    pub ok: u64,
    /// `400`/`431`/`413`/`501` answers (client-side garbage).
    pub rejected_bad_request: u64,
    /// `429` answers (per-client quota).
    pub quota_refused: u64,
    /// `503` answers from [`ServiceError::Overloaded`].
    pub shed_overloaded: u64,
    /// `503` answers from [`ServiceError::CircuitOpen`].
    pub shed_circuit_open: u64,
    /// `504` answers from [`ServiceError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// `500` answers (backend solve failures).
    pub internal_errors: u64,
    /// `404`/`405` answers.
    pub not_found: u64,
    /// Connections dropped on a socket read timeout (slow-loris).
    pub timeouts: u64,
    /// `200` answers that carried a degraded envelope.
    pub degraded_answers: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    connections_shed: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    rejected_bad_request: AtomicU64,
    quota_refused: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_circuit_open: AtomicU64,
    deadline_exceeded: AtomicU64,
    internal_errors: AtomicU64,
    not_found: AtomicU64,
    timeouts: AtomicU64,
    degraded_answers: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            rejected_bad_request: self.rejected_bad_request.load(Ordering::Relaxed),
            quota_refused: self.quota_refused.load(Ordering::Relaxed),
            shed_overloaded: self.shed_overloaded.load(Ordering::Relaxed),
            shed_circuit_open: self.shed_circuit_open.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
        }
    }
}

/// What a graceful drain achieved.
#[derive(Debug)]
pub struct DrainReport {
    /// Connections still open when the drain deadline expired
    /// (0 = everything finished in time; nothing wedged).
    pub remaining_connections: usize,
    /// The shutdown snapshot's outcome (`None` when persistence is
    /// disabled).
    pub snapshot: Option<Result<kibamrm::SnapshotWriteReport, kibamrm::SnapshotError>>,
}

/// State shared between the acceptor, the workers and external
/// controllers.
struct Shared {
    service: Arc<LifetimeService>,
    config: NetConfig,
    counters: Counters,
    quota: Mutex<QuotaLedger>,
    live_connections: AtomicUsize,
    shutdown: AtomicBool,
}

/// An external handle onto a running server: trigger a drain, read the
/// ledger.
#[derive(Clone)]
pub struct ServerControl {
    shared: Arc<Shared>,
}

impl ServerControl {
    /// Asks the acceptor to stop and drain. Returns immediately; the
    /// blocked [`Server::run`] performs the drain and returns its
    /// report.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// The network ledger so far.
    pub fn net_stats(&self) -> NetStats {
        self.shared.counters.snapshot()
    }

    /// Connections currently inside a worker.
    pub fn live_connections(&self) -> usize {
        self.shared.live_connections.load(Ordering::SeqCst)
    }
}

/// The HTTP front over one resident service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (`"127.0.0.1:0"` for an ephemeral port) over
    /// `service`.
    ///
    /// # Errors
    ///
    /// Socket errors from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<LifetimeService>,
        config: NetConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let quota = QuotaLedger::new(config.quota_rate, config.quota_burst);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                service,
                config,
                counters: Counters::default(),
                quota: Mutex::new(quota),
                live_connections: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Socket errors from the OS.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A control handle (cloneable, usable from other threads).
    pub fn control(&self) -> ServerControl {
        ServerControl {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until [`ServerControl::shutdown`] (or an
    /// `/admin/drain` request), then drains: stop accepting, give
    /// in-flight connections [`NetConfig::drain_deadline`] to finish,
    /// snapshot the result cache. Blocks the calling thread for the
    /// server's whole life.
    pub fn run(self) -> DrainReport {
        let shared = &self.shared;
        let mut last_tick = Instant::now();
        while !shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let live = shared.live_connections.load(Ordering::SeqCst);
                    if live >= shared.config.max_connections {
                        shed_connection(shared, stream);
                        continue;
                    }
                    shared.live_connections.fetch_add(1, Ordering::SeqCst);
                    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(shared);
                    std::thread::spawn(move || {
                        let _guard = ConnectionGuard(&shared);
                        serve_connection(&shared, stream, peer);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
            if let (Some(interval), Some(_)) = (
                shared.config.snapshot_interval,
                shared.config.snapshot_path.as_ref(),
            ) {
                if last_tick.elapsed() >= interval {
                    last_tick = Instant::now();
                    self.tick_snapshot();
                }
            }
        }
        self.drain()
    }

    fn tick_snapshot(&self) {
        let Some(path) = self.shared.config.snapshot_path.as_ref() else {
            return;
        };
        if let Err(e) = self.shared.service.save_snapshot(path) {
            eprintln!("snapshot tick failed: {e}");
        }
    }

    fn drain(&self) -> DrainReport {
        let shared = &self.shared;
        // Stop accepting (the listener drops with the server), wait for
        // the in-flight connections under the drain deadline.
        let deadline = Instant::now() + shared.config.drain_deadline;
        while shared.live_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let remaining = shared.live_connections.load(Ordering::SeqCst);
        let snapshot = shared
            .config
            .snapshot_path
            .as_ref()
            .map(|path| shared.service.save_snapshot(path));
        DrainReport {
            remaining_connections: remaining,
            snapshot,
        }
    }
}

/// Decrements the live-connection count even if a worker panics.
struct ConnectionGuard<'a>(&'a Shared);
impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.live_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Over-cap accept: a typed, immediate refusal.
fn shed_connection(shared: &Shared, mut stream: TcpStream) {
    shared
        .counters
        .connections_shed
        .fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let body = error_body("overloaded", "connection cap reached; retry shortly");
    let _ = stream.write_all(&Response::json(503, body).retry_after(1).to_bytes(true));
}

/// One connection's keep-alive loop.
fn serve_connection(shared: &Shared, mut stream: TcpStream, peer: SocketAddr) {
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .is_err()
    {
        return;
    }
    for served in 0.. {
        let request = match read_request(&mut stream, &shared.config.limits) {
            Ok(r) => r,
            Err(e) => {
                respond_to_parse_error(shared, &mut stream, &e);
                return;
            }
        };
        let wants_close = request.wants_close();
        let at_cap = served + 1 >= shared.config.max_requests_per_connection;
        let response = route(shared, &peer, &request);
        let close = wants_close || at_cap;
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        if stream.write_all(&response.to_bytes(close)).is_err() || close {
            return;
        }
    }
}

/// Maps a request-parse failure onto a best-effort response (the
/// connection always closes: after garbage, resynchronisation is
/// hopeless).
fn respond_to_parse_error(shared: &Shared, stream: &mut TcpStream, e: &HttpError) {
    let response = match e {
        // A clean keep-alive end: no response, no counter.
        HttpError::Closed => return,
        HttpError::Timeout => {
            shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            Response::json(408, error_body("timeout", "request read timed out"))
        }
        HttpError::TooLarge { what, limit } => {
            shared
                .counters
                .rejected_bad_request
                .fetch_add(1, Ordering::Relaxed);
            let status = if *what == "body" { 413 } else { 431 };
            Response::json(
                status,
                error_body(
                    "too_large",
                    &format!("{what} exceeds the {limit}-byte limit"),
                ),
            )
        }
        HttpError::Malformed(msg) => {
            shared
                .counters
                .rejected_bad_request
                .fetch_add(1, Ordering::Relaxed);
            Response::json(400, error_body("malformed", msg))
        }
        HttpError::Unsupported(msg) => {
            shared
                .counters
                .rejected_bad_request
                .fetch_add(1, Ordering::Relaxed);
            Response::json(501, error_body("unsupported", msg))
        }
        HttpError::Io(_) => return,
    };
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let _ = stream.write_all(&response.to_bytes(true));
}

/// Routes one parsed request.
fn route(shared: &Shared, peer: &SocketAddr, request: &Request) -> Response {
    let response = match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}"),
        ("GET", "/stats") => stats_response(shared),
        ("POST", "/query") => query_response(shared, peer, request),
        ("POST", "/admin/snapshot") => snapshot_response(shared),
        ("POST", "/admin/drain") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"status\":\"draining\"}")
        }
        (_, "/healthz" | "/stats" | "/query" | "/admin/snapshot" | "/admin/drain") => {
            shared.counters.not_found.fetch_add(1, Ordering::Relaxed);
            return Response::json(405, error_body("method_not_allowed", "wrong method"));
        }
        _ => {
            shared.counters.not_found.fetch_add(1, Ordering::Relaxed);
            return Response::json(404, error_body("not_found", "unknown route"));
        }
    };
    match response.status {
        200 => shared.counters.ok.fetch_add(1, Ordering::Relaxed),
        400 => shared
            .counters
            .rejected_bad_request
            .fetch_add(1, Ordering::Relaxed),
        _ => 0,
    };
    response
}

/// The `/query` route: quota, envelope parsing, the service call, and
/// the typed-error → status mapping.
fn query_response(shared: &Shared, peer: &SocketAddr, request: &Request) -> Response {
    // Per-client fairness first: a noisy neighbour is shed by name
    // before it can reach (and saturate) the global admission bound.
    let client = quota_key(shared, peer, request);
    let decision = {
        let mut quota = shared.quota.lock().unwrap_or_else(|p| p.into_inner());
        quota.admit(&client, Instant::now())
    };
    if let QuotaDecision::Refused { retry_after } = decision {
        shared
            .counters
            .quota_refused
            .fetch_add(1, Ordering::Relaxed);
        // CAST-OK: `ceil().max(1.0)` of a bounded retry window is a
        // small positive integer-valued float, far inside u64 range.
        let secs = retry_after.as_secs_f64().ceil().max(1.0) as u64;
        return Response::json(
            429,
            error_body("quota_exceeded", "per-client request quota exhausted"),
        )
        .retry_after(secs);
    }

    let (scenario, options) = match parse_query_body(&request.body) {
        Ok(pair) => pair,
        Err(msg) => return Response::json(400, error_body("bad_scenario", &msg)),
    };

    match shared.service.query_with(&scenario, &options) {
        Ok(answer) => {
            if answer.is_degraded() {
                shared
                    .counters
                    .degraded_answers
                    .fetch_add(1, Ordering::Relaxed);
            }
            Response::json(200, answer_body(&answer))
        }
        Err(ServiceError::Overloaded { in_flight, limit }) => {
            shared
                .counters
                .shed_overloaded
                .fetch_add(1, Ordering::Relaxed);
            Response::json(
                503,
                error_body(
                    "overloaded",
                    &format!("{in_flight} solves in flight (limit {limit})"),
                ),
            )
            .retry_after(1)
        }
        Err(ServiceError::CircuitOpen { backend }) => {
            shared
                .counters
                .shed_circuit_open
                .fetch_add(1, Ordering::Relaxed);
            let cooldown = shared.service.config().breaker_cooldown.as_secs().max(1);
            Response::json(
                503,
                error_body("circuit_open", &format!("backend '{backend}' is shedding")),
            )
            .retry_after(cooldown)
        }
        Err(ServiceError::DeadlineExceeded { completed }) => {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            Response::json(
                504,
                error_body(
                    "deadline_exceeded",
                    &format!("deadline expired after {completed} units of work"),
                ),
            )
        }
        Err(ServiceError::Solve(e)) => {
            shared
                .counters
                .internal_errors
                .fetch_add(1, Ordering::Relaxed);
            Response::json(500, error_body("solve_failed", &e.to_string()))
        }
    }
}

/// The quota key for one request: the trusted client-id header when
/// configured and present, the peer IP otherwise (ports churn per
/// connection and must not split one client into many buckets).
fn quota_key(shared: &Shared, peer: &SocketAddr, request: &Request) -> String {
    if let Some(header) = &shared.config.quota_key_header {
        if let Some(value) = request.header(header) {
            let mut key = String::with_capacity(4 + value.len().min(64));
            key.push_str("id:");
            key.extend(value.chars().take(64));
            return key;
        }
    }
    format!("ip:{}", peer.ip())
}

/// Parses the `/query` body: either raw scenario config text, or a
/// JSON envelope `{"scenario": "<config>", "deadline_ms": …,
/// "degraded_ok": …, "retries": …}` mirroring [`QueryOptions`].
fn parse_query_body(body: &[u8]) -> Result<(Scenario, QueryOptions), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let trimmed = text.trim_start();
    if !trimmed.starts_with('{') {
        let scenario = Scenario::from_config_str(text).map_err(|e| e.to_string())?;
        return Ok((scenario, QueryOptions::default()));
    }
    let envelope = Json::parse(text).map_err(|e| e.to_string())?;
    let config = envelope
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or_else(|| "envelope needs a \"scenario\" string".to_string())?;
    let scenario = Scenario::from_config_str(config).map_err(|e| e.to_string())?;
    let mut options = QueryOptions::default();
    if let Some(ms) = envelope.get("deadline_ms") {
        let ms = ms
            .as_f64()
            .filter(|v| v.is_finite() && *v >= 0.0 && *v <= 86_400_000.0)
            .ok_or_else(|| "\"deadline_ms\" must be between 0 and 86400000".to_string())?;
        options = options.with_deadline(Duration::from_secs_f64(ms / 1000.0));
    }
    if let Some(flag) = envelope.get("degraded_ok") {
        if flag
            .as_bool()
            .ok_or_else(|| "\"degraded_ok\" must be a boolean".to_string())?
        {
            options = options.allow_degraded();
        }
    }
    if let Some(retries) = envelope.get("retries") {
        let n = retries
            .as_f64()
            .filter(|v| v.is_finite() && *v >= 0.0 && *v <= 16.0 && v.fract() == 0.0)
            .ok_or_else(|| "\"retries\" must be an integer between 0 and 16".to_string())?;
        // CAST-OK: the filter above pins `n` to an integer in 0..=16.
        options = options.with_retry(RetryPolicy::retries(n as u32));
    }
    Ok((scenario, options))
}

/// Renders an [`Answer`] as the response envelope. Point values go
/// through the shortest-round-trip `f64` formatting, so the curve a
/// client reads back carries exactly the service's bits.
fn answer_body(answer: &Answer) -> String {
    let mut out = String::new();
    out.push_str("{\"status\":");
    match answer {
        Answer::Exact(_) => out.push_str("\"exact\""),
        Answer::Degraded { bound, source, .. } => {
            out.push_str("\"degraded\",\"bound\":");
            json::write_f64(&mut out, *bound);
            out.push_str(",\"source\":");
            match source {
                DegradedSource::CachedFamily { delta } => {
                    out.push_str("{\"kind\":\"cached-family\"");
                    if let Some(d) = delta {
                        out.push_str(",\"delta_as\":");
                        json::write_f64(&mut out, d.as_amp_seconds());
                    }
                    out.push('}');
                }
                DegradedSource::FastSimulation { runs } => {
                    out.push_str(&format!("{{\"kind\":\"fast-simulation\",\"runs\":{runs}}}"));
                }
            }
        }
    }
    let dist = answer.distribution();
    out.push_str(",\"method\":");
    json::write_string(&mut out, dist.method());
    out.push_str(",\"points\":[");
    for (i, &(t, p)) in dist.points().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        json::write_f64(&mut out, t.as_seconds());
        out.push(',');
        json::write_f64(&mut out, p);
        out.push(']');
    }
    out.push_str("]}");
    out
}

/// The `/stats` body: the service's dependability ledger plus the
/// network front's own counters.
fn stats_response(shared: &Shared) -> Response {
    let service = shared.service.stats();
    let net = shared.counters.snapshot();
    let clients = shared
        .quota
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clients();
    Response::json(200, stats_body(&service, &net, clients))
}

fn stat_u64(v: usize) -> u64 {
    // CAST-OK: usize is at most 64 bits on every supported target, so
    // widening to u64 never truncates.
    v as u64
}

fn stats_body(s: &ServiceStats, n: &NetStats, quota_clients: usize) -> String {
    let mut out = String::from("{\"service\":{");
    let service_fields: &[(&str, u64)] = &[
        ("hits", s.hits),
        ("misses", s.misses),
        ("joined", s.joined),
        ("shed", s.shed),
        ("evictions", s.evictions),
        ("warm_hits", s.warm_hits),
        ("warm_misses", s.warm_misses),
        ("warm_evictions", s.warm_evictions),
        ("uncacheable", s.uncacheable),
        ("errors", s.errors),
        ("deadline_expired", s.deadline_expired),
        ("degraded_served", s.degraded_served),
        ("retries", s.retries),
        ("breaker_open", s.breaker_open),
        ("snapshot_loaded", s.snapshot_loaded),
        ("snapshot_rejected", s.snapshot_rejected),
        ("snapshot_written", s.snapshot_written),
        ("in_flight", stat_u64(s.in_flight)),
        ("cached_entries", stat_u64(s.cached_entries)),
        ("result_cache_bytes", stat_u64(s.result_cache_bytes)),
        ("warm_entries", stat_u64(s.warm_entries)),
    ];
    for (i, (name, value)) in service_fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str(",\"hit_rate\":");
    json::write_f64(&mut out, s.hit_rate());
    out.push_str("},\"net\":{");
    let net_fields: &[(&str, u64)] = &[
        ("accepted", n.accepted),
        ("connections_shed", n.connections_shed),
        ("requests", n.requests),
        ("ok", n.ok),
        ("rejected_bad_request", n.rejected_bad_request),
        ("quota_refused", n.quota_refused),
        ("shed_overloaded", n.shed_overloaded),
        ("shed_circuit_open", n.shed_circuit_open),
        ("deadline_exceeded", n.deadline_exceeded),
        ("internal_errors", n.internal_errors),
        ("not_found", n.not_found),
        ("timeouts", n.timeouts),
        ("degraded_answers", n.degraded_answers),
    ];
    for (i, (name, value)) in net_fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str(&format!(",\"quota_clients\":{quota_clients}}}}}"));
    out
}

/// The `/admin/snapshot` route: an on-demand crash-safe snapshot (what
/// the periodic tick does, but deterministic for tests and operators).
fn snapshot_response(shared: &Shared) -> Response {
    let Some(path) = shared.config.snapshot_path.as_ref() else {
        return Response::json(
            400,
            error_body("no_snapshot_path", "persistence is not configured"),
        );
    };
    match shared.service.save_snapshot(path) {
        Ok(report) => Response::json(
            200,
            format!(
                "{{\"status\":\"written\",\"entries\":{},\"bytes\":{}}}",
                report.entries, report.bytes
            ),
        ),
        Err(e) => Response::json(500, error_body("snapshot_failed", &e.to_string())),
    }
}

/// A small error envelope: `{"error": <kind>, "detail": <msg>}`.
fn error_body(kind: &str, detail: &str) -> String {
    let mut out = String::from("{\"error\":");
    json::write_string(&mut out, kind);
    out.push_str(",\"detail\":");
    json::write_string(&mut out, detail);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_valid_json() {
        let body = error_body("kind", "de\"tail\nwith\\nasties");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("kind"));
        assert!(v.get("detail").unwrap().as_str().unwrap().contains("tail"));
    }

    #[test]
    fn stats_body_is_valid_json_with_both_ledgers() {
        let body = stats_body(&ServiceStats::default(), &NetStats::default(), 3);
        let v = Json::parse(&body).unwrap();
        assert_eq!(
            v.get("service").unwrap().get("hits").unwrap().as_f64(),
            Some(0.0)
        );
        assert_eq!(
            v.get("net").unwrap().get("quota_refused").unwrap().as_f64(),
            Some(0.0)
        );
        assert_eq!(
            v.get("net").unwrap().get("quota_clients").unwrap().as_f64(),
            Some(3.0)
        );
        assert!(v.get("service").unwrap().get("snapshot_loaded").is_some());
    }

    #[test]
    fn query_body_forms_parse() {
        let config = kibamrm::Scenario::paper_cell_phone()
            .unwrap()
            .to_config_string()
            .unwrap();
        // Raw config text.
        let (s, o) = parse_query_body(config.as_bytes()).unwrap();
        assert!(!s.canonical_bytes().unwrap().is_empty());
        assert_eq!(o, QueryOptions::default());
        // JSON envelope with options.
        let mut envelope = String::from("{\"scenario\":");
        json::write_string(&mut envelope, &config);
        envelope.push_str(",\"deadline_ms\": 250, \"degraded_ok\": true, \"retries\": 2}");
        let (_, o) = parse_query_body(envelope.as_bytes()).unwrap();
        assert_eq!(o.deadline, Some(Duration::from_millis(250)));
        assert!(o.degraded_ok);
        assert_eq!(o.retry.max_retries, 2);
    }

    #[test]
    fn query_body_garbage_is_typed() {
        for bad in [
            &b"\xff\xfe"[..],
            b"not a scenario",
            b"{\"scenario\": 42}",
            b"{\"no_scenario\": true}",
            b"{\"scenario\": \"# kibamrm scenario v1\\n\", \"deadline_ms\": -1}",
            b"{broken json",
        ] {
            assert!(parse_query_body(bad).is_err(), "accepted {bad:?}");
        }
        let config = kibamrm::Scenario::paper_cell_phone()
            .unwrap()
            .to_config_string()
            .unwrap();
        let mut envelope = String::from("{\"scenario\":");
        json::write_string(&mut envelope, &config);
        envelope.push_str(",\"retries\": 2.5}");
        assert!(parse_query_body(envelope.as_bytes()).is_err());
        let mut envelope = String::from("{\"scenario\":");
        json::write_string(&mut envelope, &config);
        envelope.push_str(",\"deadline_ms\": 1e300}");
        assert!(parse_query_body(envelope.as_bytes()).is_err());
    }
}
