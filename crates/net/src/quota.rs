//! Per-client token-bucket quotas: fair shedding *before* the global
//! admission bound trips.
//!
//! The resident service already sheds globally ([`ServiceError::Overloaded`]
//! when `max_in_flight` solves run). That bound protects the machine,
//! but not the *other clients*: one noisy neighbour hammering `/query`
//! can keep the global budget saturated so everyone sheds. The quota
//! layer sits in front: each client key (peer address, or a trusted
//! client id header — see `NetConfig::quota_key_header`) owns a token
//! bucket refilled at `rate` tokens/second up to `burst`. A request
//! with no token is refused with `429 Too Many Requests` and a
//! `Retry-After` telling the client when the next token lands — so the
//! noisy neighbour is shed *by name* while polite clients keep their
//! full admission share.
//!
//! [`ServiceError::Overloaded`]: kibamrm::service::ServiceError::Overloaded

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One client's bucket: continuous refill, saturating at the burst cap.
struct Bucket {
    /// Tokens at `refreshed` (fractional: refill is continuous).
    tokens: f64,
    refreshed: Instant,
}

/// The quota ledger over all client keys.
pub struct QuotaLedger {
    /// Sustained admission rate per client, tokens per second.
    rate: f64,
    /// Bucket capacity (burst size).
    burst: f64,
    buckets: HashMap<String, Bucket>,
}

/// The verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuotaDecision {
    /// A token was taken; the request proceeds.
    Admitted,
    /// The client's bucket is empty; retry after the given delay.
    Refused {
        /// Time until the next token lands.
        retry_after: Duration,
    },
}

/// Bound on distinct client keys tracked at once; beyond it the
/// least-recently-refreshed bucket is dropped (a dropped bucket refills
/// to a full burst, which errs in the client's favour — the cap exists
/// to stop a key-churning client from growing the map unboundedly, not
/// to punish anyone).
const MAX_TRACKED_CLIENTS: usize = 4096;

impl QuotaLedger {
    /// A ledger admitting `rate` requests/second sustained with bursts
    /// up to `burst` per client. `rate <= 0` disables quotas (every
    /// request admitted).
    pub fn new(rate: f64, burst: f64) -> Self {
        QuotaLedger {
            rate,
            burst: burst.max(1.0),
            buckets: HashMap::new(),
        }
    }

    /// Whether quotas are enforced at all.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// Takes one token from `client`'s bucket (creating it full on
    /// first sight), or refuses with the time until the next token.
    pub fn admit(&mut self, client: &str, now: Instant) -> QuotaDecision {
        if !self.enabled() {
            return QuotaDecision::Admitted;
        }
        if !self.buckets.contains_key(client) {
            self.evict_if_full();
        }
        let rate = self.rate;
        let burst = self.burst;
        let bucket = self
            .buckets
            .entry(client.to_string())
            .or_insert_with(|| Bucket {
                tokens: burst,
                refreshed: now,
            });
        let elapsed = now
            .saturating_duration_since(bucket.refreshed)
            .as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
        bucket.refreshed = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            QuotaDecision::Admitted
        } else {
            let deficit = 1.0 - bucket.tokens;
            QuotaDecision::Refused {
                retry_after: Duration::from_secs_f64(deficit / rate),
            }
        }
    }

    /// Tracked client keys.
    pub fn clients(&self) -> usize {
        self.buckets.len()
    }

    fn evict_if_full(&mut self) {
        while self.buckets.len() >= MAX_TRACKED_CLIENTS {
            let Some(victim) = self
                .buckets
                .iter()
                .min_by_key(|(_, b)| b.refreshed)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.buckets.remove(&victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_refill() {
        let mut ledger = QuotaLedger::new(10.0, 3.0);
        let t0 = Instant::now();
        // The full burst is admitted back to back…
        for i in 0..3 {
            assert_eq!(ledger.admit("a", t0), QuotaDecision::Admitted, "req {i}");
        }
        // …then the bucket is dry: refusal names the refill time.
        match ledger.admit("a", t0) {
            QuotaDecision::Refused { retry_after } => {
                assert!(retry_after > Duration::ZERO);
                assert!(retry_after <= Duration::from_millis(100), "{retry_after:?}");
            }
            QuotaDecision::Admitted => panic!("fourth burst request must refuse"),
        }
        // 100 ms refills exactly one token at 10/s.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(ledger.admit("a", t1), QuotaDecision::Admitted);
        assert!(matches!(
            ledger.admit("a", t1),
            QuotaDecision::Refused { .. }
        ));
    }

    #[test]
    fn clients_are_independent() {
        let mut ledger = QuotaLedger::new(1.0, 1.0);
        let t0 = Instant::now();
        assert_eq!(ledger.admit("noisy", t0), QuotaDecision::Admitted);
        assert!(matches!(
            ledger.admit("noisy", t0),
            QuotaDecision::Refused { .. }
        ));
        // The noisy client's empty bucket does not touch anyone else.
        assert_eq!(ledger.admit("polite", t0), QuotaDecision::Admitted);
        assert_eq!(ledger.clients(), 2);
    }

    #[test]
    fn refill_saturates_at_burst() {
        let mut ledger = QuotaLedger::new(100.0, 2.0);
        let t0 = Instant::now();
        assert_eq!(ledger.admit("a", t0), QuotaDecision::Admitted);
        // An hour of refill still yields only `burst` tokens.
        let t1 = t0 + Duration::from_secs(3600);
        assert_eq!(ledger.admit("a", t1), QuotaDecision::Admitted);
        assert_eq!(ledger.admit("a", t1), QuotaDecision::Admitted);
        assert!(matches!(
            ledger.admit("a", t1),
            QuotaDecision::Refused { .. }
        ));
    }

    #[test]
    fn disabled_quota_admits_everything() {
        let mut ledger = QuotaLedger::new(0.0, 1.0);
        assert!(!ledger.enabled());
        let t0 = Instant::now();
        for _ in 0..100 {
            assert_eq!(ledger.admit("a", t0), QuotaDecision::Admitted);
        }
        assert_eq!(ledger.clients(), 0, "nothing tracked when disabled");
    }

    #[test]
    fn key_churn_cannot_grow_the_map_unboundedly() {
        let mut ledger = QuotaLedger::new(1.0, 1.0);
        let t0 = Instant::now();
        for i in 0..(MAX_TRACKED_CLIENTS + 100) {
            let _ = ledger.admit(&format!("client-{i}"), t0 + Duration::from_micros(i as u64));
        }
        assert!(ledger.clients() <= MAX_TRACKED_CLIENTS);
    }
}
