//! `kibamrm-serve`: the lifetime service on a socket.
//!
//! ```text
//! kibamrm-serve [--addr HOST:PORT] [--snapshot PATH]
//!               [--snapshot-interval-ms N] [--max-connections N]
//!               [--max-in-flight N] [--cache-bytes N]
//!               [--quota-rate R] [--quota-burst B]
//!               [--quota-key-header NAME]
//!               [--read-timeout-ms N] [--drain-deadline-ms N]
//! ```
//!
//! Prints `listening <addr>` on stdout once the socket is bound (so a
//! parent process can scrape the ephemeral port), then serves until
//! stdin reaches EOF or `POST /admin/drain` arrives — both trigger the
//! graceful drain: stop accepting, finish in-flight requests under the
//! drain deadline, snapshot the result cache. A SIGKILL instead of a
//! drain loses at most the queries since the last snapshot tick — never
//! the snapshot file itself (writes are atomic).

#![forbid(unsafe_code)]

use kibamrm::service::{LifetimeService, ServiceConfig};
use kibamrm::SolverRegistry;
use kibamrm_net::{NetConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    snapshot: Option<PathBuf>,
    snapshot_interval: Option<Duration>,
    net: NetConfig,
    max_in_flight: Option<usize>,
    cache_bytes: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        snapshot: None,
        snapshot_interval: None,
        net: NetConfig::default(),
        max_in_flight: None,
        cache_bytes: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--snapshot" => args.snapshot = Some(PathBuf::from(value("--snapshot")?)),
            "--snapshot-interval-ms" => {
                let ms: u64 = parse(&value("--snapshot-interval-ms")?)?;
                args.snapshot_interval = Some(Duration::from_millis(ms));
            }
            "--max-connections" => args.net.max_connections = parse(&value("--max-connections")?)?,
            "--max-in-flight" => args.max_in_flight = Some(parse(&value("--max-in-flight")?)?),
            "--cache-bytes" => args.cache_bytes = Some(parse(&value("--cache-bytes")?)?),
            "--quota-rate" => args.net.quota_rate = parse(&value("--quota-rate")?)?,
            "--quota-burst" => args.net.quota_burst = parse(&value("--quota-burst")?)?,
            "--quota-key-header" => {
                args.net.quota_key_header = Some(value("--quota-key-header")?.to_ascii_lowercase());
            }
            "--read-timeout-ms" => {
                let ms: u64 = parse(&value("--read-timeout-ms")?)?;
                args.net.read_timeout = Duration::from_millis(ms);
                args.net.write_timeout = Duration::from_millis(ms);
            }
            "--drain-deadline-ms" => {
                let ms: u64 = parse(&value("--drain-deadline-ms")?)?;
                args.net.drain_deadline = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("could not parse '{text}'"))
}

fn main() {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("kibamrm-serve: {e}");
            std::process::exit(2);
        }
    };
    let mut config = ServiceConfig::default();
    if let Some(n) = args.max_in_flight {
        config = config.with_max_in_flight(n);
    }
    if let Some(n) = args.cache_bytes {
        config = config.with_cache_capacity_bytes(n);
    }
    let service = Arc::new(LifetimeService::with_config(
        SolverRegistry::with_default_backends(),
        config,
    ));

    // Warm start: load the previous snapshot, tolerating any corruption.
    if let Some(path) = &args.snapshot {
        let report = service.load_snapshot(path);
        if let Some(error) = &report.error {
            eprintln!("snapshot load: cold start ({error})");
        } else {
            eprintln!(
                "snapshot load: {} revived, {} rejected",
                report.loaded, report.rejected
            );
        }
    }
    args.net.snapshot_path = args.snapshot.clone();
    args.net.snapshot_interval = args.snapshot_interval;

    let server = match Server::bind(args.addr.as_str(), service, args.net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("kibamrm-serve: bind {} failed: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("kibamrm-serve: local_addr failed: {e}");
            std::process::exit(1);
        }
    };
    // The parent scrapes this line for the ephemeral port.
    println!("listening {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Stdin EOF is the graceful-drain signal (works without signal
    // handling: the parent closes our stdin, or the operator hits ^D).
    let control = server.control();
    std::thread::spawn(move || {
        use std::io::Read as _;
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        control.shutdown();
    });

    let report = server.run();
    match &report.snapshot {
        Some(Ok(w)) => eprintln!(
            "drain: snapshot written ({} entries, {} bytes)",
            w.entries, w.bytes
        ),
        Some(Err(e)) => eprintln!("drain: snapshot failed: {e}"),
        None => {}
    }
    if report.remaining_connections > 0 {
        eprintln!(
            "drain: {} connections still open at the deadline",
            report.remaining_connections
        );
        std::process::exit(1);
    }
}
