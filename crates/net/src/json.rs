//! A minimal, hostile-input-safe JSON layer: a recursive-descent parser
//! with explicit depth and size bounds, and escape-correct writers.
//!
//! The service's wire envelope needs very little of JSON — small option
//! objects in, number-heavy response objects out — but what it needs
//! must hold against arbitrary bytes: no panic, no unbounded recursion
//! (a `[[[[…` bomb must not overflow the stack), no unbounded
//! allocation beyond the input's own size. Numbers are parsed and
//! written through Rust's shortest-round-trip `f64` formatting, so a
//! probability that leaves the server as text comes back with the same
//! bits — the transport preserves the service's bit-identity contract.

use std::collections::BTreeMap;
use std::fmt;

/// Nesting bound: deeper input is rejected, not recursed into.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) so output
/// is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

/// Why parsing failed. The offset points at the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document from `text`. Trailing non-whitespace is
    /// an error. Never panics, never recurses past the depth cap.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing bytes after the document"));
        }
        Ok(value)
    }

    /// Member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            at: self.at,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte {:#04x}", other))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        // PANIC-OK: `at` never exceeds `bytes.len()` (every advance is
        // guarded by `peek`), so the range slice cannot panic.
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        // PANIC-OK: `start ≤ at ≤ bytes.len()` by construction of the
        // scan loop above.
        let slice = &self.bytes[start..self.at];
        // The scanned bytes are ASCII digits/signs, but a typed error
        // keeps even an impossible non-UTF-8 slice panic-free.
        let Ok(text) = std::str::from_utf8(slice) else {
            return Err(self.err("number is not UTF-8"));
        };
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            Ok(_) => Err(self.err("non-finite number")),
            Err(_) => Err(self.err(format!("cannot parse number from {text:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.at += 4;
                            // Surrogates are rejected rather than paired:
                            // the envelope never carries astral text.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                0x00..=0x1f => return Err(self.err("unescaped control byte in string")),
                _ => {
                    // Re-validate multi-byte sequences through str: the
                    // input arrived as &str so this cannot fail, but the
                    // byte walk must stay in sync with char boundaries.
                    let len = utf8_len(b);
                    let start = self.at - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.at = end;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Length of the UTF-8 sequence starting with `b` (1 for ASCII and —
/// harmlessly, the slice check catches it — for continuation bytes).
fn utf8_len(b: u8) -> usize {
    match b {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 1,
    }
}

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. Rust's `f64` Display is the shortest
/// representation that round-trips to the same bits, so emitting and
/// re-parsing preserves bit-identity. Non-finite values (JSON cannot
/// carry them) are written as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `Display` omits the decimal point for integral values; keep
        // the token unambiguous as a number either way (it already is),
        // but normalise nothing else — the bits are the contract.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        out.push_str(&s);
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_round_trip() {
        let doc = r#" {"a": [1, 2.5, -3e-2], "b": {"c": true, "d": null}, "e": "x\ny"} "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-0.03)
        );
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).expect_err("must reject");
        assert!(err.reason.contains("nesting"));
        let ok = format!("{}1{}", "[".repeat(50), "]".repeat(50));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn malformed_inputs_give_typed_errors() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "\"",
            "\"\\q\"",
            "\"\\u12\"",
            "1 2",
            "{\"a\":1,}",
            "[,]",
            "NaN",
            "1e999",
            "\"\u{1}\"",
            "--1",
            "+1",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_round_trip_bit_exact() {
        for v in [
            0.0,
            1.0,
            -1.5,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            4.9e-324,
            0.9999999999999999,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s} -> {back}");
        }
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let nasty = "a\"b\\c\nd\te\r\u{1}f\u{1F600}";
        let mut s = String::new();
        write_string(&mut s, nasty);
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn accessors_are_type_safe() {
        let v = Json::parse("{\"n\": 1}").unwrap();
        assert!(v.as_f64().is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.as_array().is_none());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
        let err = Json::parse("[").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
