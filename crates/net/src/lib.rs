//! A hardened, std-only HTTP/JSON front over the resident lifetime
//! service.
//!
//! The core crate answers *"when does this battery die?"* in process
//! ([`kibamrm::LifetimeService`]); this crate puts that service on a
//! socket without weakening any of its dependability guarantees. The
//! design premise is that the network is the hostile part of the
//! deployment: every byte that arrives is attacker-controlled until the
//! bounded parsers say otherwise, every socket can stall forever unless
//! a timeout says otherwise, and the process can die at any instant —
//! so the result cache is persisted crash-safely (see
//! [`kibamrm::snapshot`]) and reloaded with full corruption tolerance.
//!
//! Layers, outermost first:
//!
//! - [`server`] — bounded acceptor (connection cap with typed
//!   shedding), per-connection socket timeouts, routing, the
//!   [`ServiceError`](kibamrm::service::ServiceError) → HTTP status
//!   mapping, graceful drain + shutdown snapshot.
//! - [`quota`] — per-client token buckets: a noisy neighbour is shed by
//!   name (`429` + `Retry-After`) *before* it can saturate the global
//!   admission bound that protects everyone else.
//! - [`http`] — strict bounded HTTP/1.1 request parsing: head/body
//!   caps, `Content-Length` enforcement, typed errors, never a panic
//!   and never an unbounded allocation on arbitrary bytes.
//! - [`json`] — a bounded JSON parser (depth-capped) for the request
//!   envelope, and shortest-round-trip `f64` writers so the curves a
//!   client reads back are bit-exact.
//! - [`client`] — a minimal blocking client for tests, the chaos
//!   harness and the examples.
//!
//! # Quick start
//!
//! ```no_run
//! use kibamrm::service::LifetimeService;
//! use kibamrm::SolverRegistry;
//! use kibamrm_net::{NetConfig, Server};
//! use std::sync::Arc;
//!
//! let service = Arc::new(LifetimeService::new(SolverRegistry::with_default_backends()));
//! let server = Server::bind("127.0.0.1:0", service, NetConfig::default())?;
//! println!("listening on {}", server.local_addr()?);
//! server.run(); // blocks until drained
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod json;
pub mod quota;
pub mod server;

pub use http::{HttpError, HttpLimits, Request, Response};
pub use json::{Json, JsonError};
pub use quota::{QuotaDecision, QuotaLedger};
pub use server::{DrainReport, NetConfig, NetStats, Server, ServerControl};
